"""E5 — §2.2/§6.3 rate-based congestion control.

Paper claims:

* "the rate-limiting information builds up back from the point of
  congestion to the sources, dynamically generating soft state on
  flows";
* "any non-empty output queue indicates a (possibly temporary) mismatch
  … The rate control mechanism prevents there being a sustained
  mismatch";
* the feedback loop "necessarily oscillates. The degree of oscillation
  … depends on the amount of output buffer space, the propagation delay
  to the feeding routers and the variation in traffic".

Setup: a 3-pair dumbbell (senders behind access routers) offering 1.6x
the bottleneck's capacity.  Sweep control on/off, buffer size, and
feedback propagation delay; report the congested queue's mean/max, the
drops it took, its utilization, and the signal traffic.
"""

from __future__ import annotations

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_dumbbell
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals

from benchmarks._common import format_table, publish

PACKET = 1000
N_PAIRS = 3
OVERLOAD = 1.6
SIM_SECONDS = 1.5


def run_point(congestion: bool, buffer_bytes: int, feedback_prop: float):
    config = RouterConfig(
        congestion_enabled=congestion, buffer_bytes=buffer_bytes,
    )
    scenario = build_sirpent_dumbbell(
        n_pairs=N_PAIRS, edge_rate_bps=10e6, bottleneck_rate_bps=10e6,
        router_config=config, access_routers=True,
        propagation_delay=feedback_prop,
    )
    rngs = RngStreams(31)
    per_sender_pps = OVERLOAD * 10e6 / (PACKET * 8 * N_PAIRS)
    for index in range(N_PAIRS):
        sender = scenario.hosts[f"sender{index + 1}"]
        route = scenario.routes(
            f"sender{index + 1}", f"receiver{index + 1}"
        )[0]
        PoissonArrivals(
            scenario.sim, per_sender_pps,
            emit=lambda size, s=sender, r=route: s.send(r, b"x", size - 50),
            rng=rngs.stream(f"sender{index}"),
            fixed_size=PACKET, stop_at=SIM_SECONDS,
        )
    scenario.sim.run(until=SIM_SECONDS + 0.1)
    left = scenario.routers["rL"]
    port_id = next(
        pid for pid, att in left.ports.items()
        if att.peer_name_for(None) == "rR"
    )
    outport = left.output_ports[port_id]
    delivered = sum(
        scenario.hosts[f"receiver{i + 1}"].received.count
        for i in range(N_PAIRS)
    )
    held = sum(
        scenario.routers[f"a{i + 1}"].congestion.total_held()
        for i in range(N_PAIRS)
    ) if congestion else 0
    return {
        "queue_mean": outport.queue_length.mean(scenario.sim.now),
        "queue_max": outport.queue_length.maximum,
        "drops": outport.drops.count,
        "utilization": scenario.topology.links["bottleneck"].a_to_b
        .utilization.utilization(scenario.sim.now),
        "signals": left.congestion.signals_sent.count if congestion else 0,
        "delivered": delivered,
        "held_upstream": held,
    }


def run_sweep():
    rows = []
    for congestion in (False, True):
        for buffer_kb in (16, 64):
            for prop_us in (10, 500):
                point = run_point(congestion, buffer_kb * 1024, prop_us * 1e-6)
                point.update(cc=congestion, buffer_kb=buffer_kb,
                             prop_us=prop_us)
                rows.append(point)
    return rows


def bench_e05_congestion_backpressure(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        "E5  Backpressure at a 1.6x-overloaded bottleneck "
        f"({N_PAIRS} senders, {SIM_SECONDS:.1f}s)",
        ["rate ctrl", "buffer KB", "fb prop us", "queue mean", "queue max",
         "drops", "bottleneck util", "signals", "delivered"],
        [
            ("on" if r["cc"] else "off", r["buffer_kb"], r["prop_us"],
             r["queue_mean"], r["queue_max"], r["drops"],
             r["utilization"], r["signals"], r["delivered"])
            for r in rows
        ],
    )
    note = (
        "\nPaper: backpressure converts queue growth + loss at the\n"
        "congestion point into upstream soft state; oscillation (queue\n"
        "max) grows with the feedback propagation delay; the link it\n"
        "protects stays busy."
    )
    publish("e05_congestion_backpressure", table + note)

    def pick(cc, buffer_kb, prop_us):
        return next(r for r in rows if r["cc"] is cc
                    and r["buffer_kb"] == buffer_kb
                    and r["prop_us"] == prop_us)

    for buffer_kb in (16, 64):
        off = pick(False, buffer_kb, 10)
        on = pick(True, buffer_kb, 10)
        # Control keeps the congested queue near-empty on average (the
        # uncontrolled queue saturates its buffer) and removes most of
        # the loss.
        assert on["queue_mean"] < off["queue_mean"] * 0.25
        assert on["drops"] < off["drops"] * 0.25 + 1
        # Without starving the bottleneck.
        assert on["utilization"] > 0.6
        # And the backlog genuinely moved upstream at some point.
        assert on["signals"] > 0
    # With ample buffer, control also bounds the worst-case excursion.
    assert pick(True, 64, 10)["queue_max"] < pick(False, 64, 10)["queue_max"]
    # Longer feedback delay = sloppier control (bigger queue excursions).
    assert pick(True, 64, 500)["queue_max"] >= pick(True, 64, 10)["queue_max"]
