"""Shared helpers for the experiment benchmarks.

Every experiment Exx regenerates one claim from the paper's evaluation
(§6) or design sections.  Benches print a table of *paper model* next
to *measured*, persist it under ``benchmarks/results/`` (so the tables
survive pytest's output capturing), and assert the claim's *shape* —
who wins, by roughly what factor — not absolute numbers.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table."""
    rendered_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def publish(name: str, text: str, data: Optional[dict] = None) -> None:
    """Print the table; persist text AND machine-readable JSON.

    Alongside the human table (``<name>.txt``) every bench now also
    writes ``BENCH_<name>.json`` — ``data`` verbatim when the bench
    supplies structured results, otherwise a generic parse of the
    :func:`format_table` text (title, headers, typed rows) — so CI and
    regression tooling diff results without scraping tables.
    """
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    payload = {"name": name}
    payload.update(data if data is not None else parse_table(text))
    with open(
        os.path.join(RESULTS_DIR, f"BENCH_{name}.json"), "w"
    ) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def parse_table(text: str) -> dict:
    """Recover ``{title, headers, rows}`` from a :func:`format_table`.

    Column boundaries come from the dashes separator line, so cells
    containing spaces survive; numeric-looking cells are typed.  Text
    that is not a table (no separator) degrades to ``{"text": ...}``.
    """
    lines = text.splitlines()
    dash_index = next(
        (i for i, line in enumerate(lines)
         if line.strip() and set(line.strip()) <= {"-", " "} and i >= 2),
        None,
    )
    if dash_index is None or dash_index < 1:
        return {"text": text}
    title = lines[0] if lines else ""
    header_line = lines[dash_index - 1]
    # Column spans: runs of dashes in the separator line.
    spans: List[tuple] = []
    start = None
    separator = lines[dash_index]
    for index, char in enumerate(separator + " "):
        if char == "-" and start is None:
            start = index
        elif char != "-" and start is not None:
            spans.append((start, index))
            start = None
    def cut(line: str):
        cells = []
        for n, (lo, hi) in enumerate(spans):
            # The final column may overflow its dash width.
            piece = line[lo:] if n == len(spans) - 1 else line[lo:hi]
            cells.append(piece.strip())
        return cells
    headers = cut(header_line)
    rows = []
    for line in lines[dash_index + 1:]:
        if not line.strip():
            break  # blank line ends the table; what follows is prose
        rows.append([_typed(cell) for cell in cut(line)])
    return {"title": title, "headers": headers, "rows": rows}


def _typed(cell: str) -> object:
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def assert_close(actual: float, expected: float, rel: float, what: str = "") -> None:
    """Assert agreement within a relative tolerance."""
    if expected == 0:
        assert abs(actual) < 1e-12, f"{what}: {actual} vs 0"
        return
    error = abs(actual - expected) / abs(expected)
    assert error <= rel, (
        f"{what}: measured {actual:.6g} vs expected {expected:.6g} "
        f"({error:.0%} off, tolerance {rel:.0%})"
    )


def us(seconds: float) -> float:
    return seconds * 1e6


def ms(seconds: float) -> float:
    return seconds * 1e3
