"""Shared helpers for the experiment benchmarks.

Every experiment Exx regenerates one claim from the paper's evaluation
(§6) or design sections.  Benches print a table of *paper model* next
to *measured*, persist it under ``benchmarks/results/`` (so the tables
survive pytest's output capturing), and assert the claim's *shape* —
who wins, by roughly what factor — not absolute numbers.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned text table."""
    rendered_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def publish(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def assert_close(actual: float, expected: float, rel: float, what: str = "") -> None:
    """Assert agreement within a relative tolerance."""
    if expected == 0:
        assert abs(actual) < 1e-12, f"{what}: {actual} vs 0"
        return
    error = abs(actual - expected) / abs(expected)
    assert error <= rel, (
        f"{what}: measured {actual:.6g} vs expected {expected:.6g} "
        f"({error:.0%} off, tolerance {rel:.0%})"
    )


def us(seconds: float) -> float:
    return seconds * 1e6


def ms(seconds: float) -> float:
    return seconds * 1e3
