"""E9 — §2.2 token authorization policies at the router.

Paper claims:

* tokens are "difficult to fully decrypt and check in real time", so
  the router caches the verified form;
* **optimistic** authorization lets the first packet through at full
  speed ("one or a small number of unauthorized packets can be allowed
  through without significant problems");
* **blocking** treats the first packet as blocked while the token is
  verified; **drop** discards it;
* "the optimistic token-based authorization using caching provides
  control of resource usage without performance penalty".

Setup: a 2-router line requiring tokens, verify cost 200 us per router.
For each policy: measure the first packet's one-way delay (cold cache)
and the steady-state delay (warm cache), plus delivery of packets
bearing forged tokens.
"""

from __future__ import annotations

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_line
from repro.tokens.cache import CachePolicy

from benchmarks._common import format_table, publish, us

HOPS = 2
VERIFY_COST = 200e-6
PAYLOAD = 512


def run_policy(policy: CachePolicy):
    config = RouterConfig(
        require_tokens=True, token_policy=policy,
        token_verify_cost=VERIFY_COST,
    )
    scenario = build_sirpent_line(n_routers=HOPS, router_config=config)
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    routes = scenario.directory.query("src", __import__(
        "repro.directory", fromlist=["RouteQuery"]
    ).RouteQuery("dst.lab.edu", with_tokens=True, account=1))
    route = routes[0]

    delays = []
    for index in range(6):
        scenario.sim.at(index * 20e-3,
                        lambda: scenario.hosts["src"].send(route, b"x", PAYLOAD))
    scenario.sim.run(until=0.5)
    delays = [d.one_way_delay for d in got]

    # A forger without the mint cannot pass: corrupt one token byte.
    bad_segments = [s.copy(token=_flip(s.token)) if s.token else s
                    for s in route.segments]

    class _Forged:
        segments = bad_segments
        first_hop_port = route.first_hop_port
        first_hop_mac = route.first_hop_mac

    before = len(got)
    for _ in range(4):
        scenario.hosts["src"].send(_Forged, b"evil", PAYLOAD)
    scenario.sim.run(until=1.0)
    forged_through = len(got) - before
    rejected = sum(
        r.stats.dropped_token.count for r in scenario.routers.values()
    )
    return {
        "first": delays[0] if delays else float("nan"),
        "steady": sum(delays[1:]) / max(1, len(delays) - 1),
        "delivered": before,
        "forged_through": forged_through,
        "forged_rejected": rejected,
        "hit_rate": scenario.routers["r1"].token_cache.hit_rate(),
    }


def _flip(token: bytes) -> bytes:
    flipped = bytearray(token)
    flipped[-1] ^= 0xFF
    return bytes(flipped)


def run_all():
    return {policy.value: run_policy(policy) for policy in CachePolicy}


def bench_e09_token_authorization(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        (name, r["delivered"], us(r["first"]), us(r["steady"]),
         us(r["first"] - r["steady"]), r["forged_through"],
         f"{r['hit_rate']:.2f}")
        for name, r in results.items()
    ]
    table = format_table(
        f"E9  Token policies ({HOPS} routers, verify cost "
        f"{us(VERIFY_COST):.0f} us each)",
        ["policy", "delivered", "first pkt (us)", "steady (us)",
         "cold penalty (us)", "forged delivered", "r1 cache hit rate"],
        rows,
    )
    note = (
        "\nPaper: optimistic = no performance penalty (cold == warm);\n"
        "blocking charges the verification to the first packet; drop\n"
        "loses it outright.  Forged tokens never pass more than the\n"
        "optimistic window."
    )
    publish("e09_token_authorization", table + note)

    optimistic = results["optimistic"]
    blocking = results["blocking"]
    drop = results["drop"]
    # Optimistic: zero cold-start penalty ("without performance penalty").
    assert abs(optimistic["first"] - optimistic["steady"]) < 5e-6
    # Blocking: first packet absorbs ~one verify cost per router.
    penalty = blocking["first"] - blocking["steady"]
    assert HOPS * VERIFY_COST * 0.8 < penalty < HOPS * VERIFY_COST * 1.5
    # Drop: the first packet (per router) is lost; later ones flow.
    assert drop["delivered"] < optimistic["delivered"]
    assert drop["steady"] > 0
    # Forged tokens: at most the optimistic first-packet window leaks.
    assert results["optimistic"]["forged_through"] <= 1
    assert results["blocking"]["forged_through"] == 0
    assert results["drop"]["forged_through"] == 0
    # Caches served the steady state.
    assert optimistic["hit_rate"] > 0.5
