"""O01 — observability must cost (almost) nothing when it is off.

The tracing hooks of :mod:`repro.obs` sit on the hottest paths in the
codebase — the sim router's forwarding loop and the live overlay's
frame handlers — guarded by ``if packet.trace_id and tracer.enabled``
against a :data:`~repro.obs.trace.NULL_TRACER` default.  This
experiment prices that design on the two benchmarks whose numbers the
rest of the suite leans on:

* **E01's workload** (Poisson senders through one cut-through port at
  rho=0.5) re-run with tracing off / 1-in-100 sampled / every packet;
* **L01-style live transactions** (client — r1 — r2 — server over real
  loopback UDP) under the same three configurations.

"Off" is the shipped default and therefore the baseline; its residual
cost relative to un-instrumented code is the guard expression itself,
which is micro-timed and expressed as a share of the measured
per-packet (per-transaction) budget — the <5% acceptance bar.  The
1-in-100 and 1-in-1 columns document what turning tracing on buys you
into.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

# `python -m benchmarks.bench_o01_obs_overhead` must work from a bare
# checkout: put the repo root and src/ on the path before repro imports.
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _entry in (_ROOT, os.path.join(_ROOT, "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay, LiveTransactor, WallClock
from repro.net.topology import Topology
from repro.obs.recorder import NULL_RECORDER
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.engine import Simulator
from repro.transport.rebind import RouteManager

from benchmarks._common import format_table, publish

from benchmarks.bench_e01_switching_delay import run_point

#: Wall-clock repetitions per configuration; best-of-N tames scheduler
#: noise without needing long runs.
REPEATS = 3

#: Sequential live transactions per timed run.
LIVE_TRANSACTIONS = 200

#: Guard evaluations a packet meets per hop is single-digit; price a
#: generous 10 per delivered packet when computing the disabled share.
GUARDS_PER_PACKET = 10


def _best_of(fn, repeats: int = REPEATS):
    """Return (best_elapsed_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Micro-time the disabled-tracing guard, net of loop overhead.

    This is the *entire* per-call cost tracing adds when off: one
    short-circuiting ``trace_id and tracer.enabled`` check against the
    no-op tracer.
    """
    class _Holder:
        """Stands in for a node (``self.tracer``) and packet pair."""

        def __init__(self):
            self.tracer = NULL_TRACER
            self.trace_id = 0

    node = packet = _Holder()
    sink = 0
    started = time.perf_counter()
    for _ in range(iterations):
        if packet.trace_id and node.tracer.enabled:
            sink += 1
    guarded = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - started
    del sink
    return max(0.0, (guarded - empty) / iterations * 1e9)


def _recorder_guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Micro-time the disabled flight-recorder guard.

    Every recorder hook in the routers, hosts, directory server and
    cluster replicas is one ``if self.recorder.enabled:`` check against
    :data:`~repro.obs.recorder.NULL_RECORDER`; this is its unit price.
    """
    class _Holder:
        def __init__(self):
            self.recorder = NULL_RECORDER

    node = _Holder()
    sink = 0
    started = time.perf_counter()
    for _ in range(iterations):
        if node.recorder.enabled:
            sink += 1
    guarded = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - started
    del sink
    return max(0.0, (guarded - empty) / iterations * 1e9)


def _trace_ctx_guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Micro-time the untraced v2 command-path guard.

    Cross-layer propagation gates on ``if tid and self.tracer.enabled``
    where ``tid`` comes from the (absent) request trace context — the
    cost a plain, untraced directory command pays for the feature.
    """
    class _Holder:
        def __init__(self):
            self.tracer = NULL_TRACER

    node = _Holder()
    tid = 0  # untraced request: no trace context on the wire
    sink = 0
    started = time.perf_counter()
    for _ in range(iterations):
        if tid and node.tracer.enabled:
            sink += 1
    guarded = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - started
    del sink
    return max(0.0, (guarded - empty) / iterations * 1e9)


# -- sim leg (E01's workload) -------------------------------------------------


def _sim_leg():
    """Best-of-N wall times for E01's rho=0.5 point, three tracer modes."""
    configs = [
        ("off", lambda: None),
        ("sampled 1/100", lambda: Tracer(sample_every=100)),
        ("full 1/1", lambda: Tracer(sample_every=1)),
    ]
    out = {}
    for label, make in configs:
        elapsed, point = _best_of(
            lambda make=make: run_point(0.5, tracer=make())
        )
        out[label] = {"elapsed": elapsed, "delivered": point["delivered"]}
    return out


# -- live leg (L01-style transactions) ---------------------------------------


def _line_topology() -> Topology:
    """client — r1 — r2 — server, point-to-point."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r2, server)
    return topo


async def _run_live(tracer) -> float:
    """Elapsed seconds for LIVE_TRANSACTIONS sequential transactions."""
    overlay = LiveOverlay(_line_topology(), tracer=tracer)
    await overlay.start()
    try:
        client_tx = LiveTransactor(overlay.hosts["client"])
        server_tx = LiveTransactor(overlay.hosts["server"])
        server_tx.serve(lambda payload: b"r" * 128)
        routes = overlay.routes(
            "client", "server", dest_socket=client_tx.config.socket,
        )
        manager = RouteManager(WallClock(), routes)
        request = b"q" * 256
        started = time.monotonic()
        for _ in range(LIVE_TRANSACTIONS):
            result = await client_tx.transact(manager, request)
            assert result.ok, "transaction failed during overhead run"
        return time.monotonic() - started
    finally:
        overlay.stop()


def _live_leg():
    """Best-of-N wall times for the live transaction loop, three modes."""
    configs = [
        ("off", lambda: None),
        ("sampled 1/100", lambda: Tracer(sample_every=100)),
        ("full 1/1", lambda: Tracer(sample_every=1)),
    ]
    out = {}
    for label, make in configs:
        elapsed, _ = _best_of(
            lambda make=make: asyncio.run(_run_live(make()))
        )
        out[label] = {"elapsed": elapsed, "transactions": LIVE_TRANSACTIONS}
    return out


def _overhead(config: dict, baseline: dict) -> float:
    """Percent slowdown of ``config`` relative to ``baseline``."""
    return (config["elapsed"] / baseline["elapsed"] - 1.0) * 100.0


def bench_o01_obs_overhead(benchmark):
    guard_ns = benchmark.pedantic(_guard_cost_ns, rounds=1, iterations=1)
    recorder_ns = _recorder_guard_cost_ns()
    trace_ctx_ns = _trace_ctx_guard_cost_ns()
    sim = _sim_leg()
    live = _live_leg()

    sim_base = sim["off"]
    per_packet_ns = sim_base["elapsed"] / sim_base["delivered"] * 1e9
    sim_disabled_share = GUARDS_PER_PACKET * guard_ns / per_packet_ns * 100
    # The full observability surface a packet meets with everything off:
    # tracing guards + flight-recorder guards + the v2 trace-context
    # propagation guard, each priced at GUARDS_PER_PACKET evaluations.
    obs_total_ns = GUARDS_PER_PACKET * (guard_ns + recorder_ns + trace_ctx_ns)
    obs_share = obs_total_ns / per_packet_ns * 100

    live_base = live["off"]
    per_tx_ns = live_base["elapsed"] / live_base["transactions"] * 1e9
    # A transaction crosses two routers out and back plus both hosts:
    # budget several packets' worth of guards.
    live_disabled_share = 6 * GUARDS_PER_PACKET * guard_ns / per_tx_ns * 100

    rows = [
        ("e01 sim", "off (baseline)", round(sim_base["elapsed"], 3),
         f"{sim_disabled_share:.3f}% guard share of "
         f"{per_packet_ns / 1e3:.0f}us/pkt"),
        ("e01 sim", "sampled 1/100",
         round(sim["sampled 1/100"]["elapsed"], 3),
         f"{_overhead(sim['sampled 1/100'], sim_base):+.1f}% vs off"),
        ("e01 sim", "full 1/1", round(sim["full 1/1"]["elapsed"], 3),
         f"{_overhead(sim['full 1/1'], sim_base):+.1f}% vs off"),
        ("l01 live", "off (baseline)", round(live_base["elapsed"], 3),
         f"{live_disabled_share:.3f}% guard share of "
         f"{per_tx_ns / 1e6:.2f}ms/tx"),
        ("l01 live", "sampled 1/100",
         round(live["sampled 1/100"]["elapsed"], 3),
         f"{_overhead(live['sampled 1/100'], live_base):+.1f}% vs off"),
        ("l01 live", "full 1/1", round(live["full 1/1"]["elapsed"], 3),
         f"{_overhead(live['full 1/1'], live_base):+.1f}% vs off"),
        ("guards", "tracer / recorder / trace-ctx",
         f"{guard_ns:.0f} / {recorder_ns:.0f} / {trace_ctx_ns:.0f} ns",
         f"{obs_share:.3f}% of {per_packet_ns / 1e3:.0f}us/pkt"),
    ]
    table = format_table(
        "O01  Observability overhead (tracing off / sampled / full)",
        ["workload", "tracing", "best wall (s)", "overhead"],
        rows,
    )
    note = (
        f"\nDisabled tracing is the shipped default: every hook is one "
        f"guard ({guard_ns:.0f}ns\nmeasured) against the no-op tracer, "
        f"i.e. {sim_disabled_share:.3f}% of the sim's per-packet "
        f"budget\nand {live_disabled_share:.4f}% of a live "
        f"transaction — far under the 5% acceptance bar.\n"
        f"The whole disabled observability surface (tracer + flight "
        f"recorder +\nv2 trace-context guards) totals "
        f"{obs_share:.3f}% of the per-packet budget, against\n"
        f"the 1% CI gate.  1-in-100 sampling is the recommended "
        f"always-on setting;\nfull tracing is for debugging single "
        f"flows."
    )
    publish(
        "o01_obs_overhead", table + note,
        data={
            "guard_ns": {
                "tracer": round(guard_ns, 2),
                "recorder": round(recorder_ns, 2),
                "trace_ctx": round(trace_ctx_ns, 2),
            },
            "per_packet_ns": round(per_packet_ns, 1),
            "per_transaction_ns": round(per_tx_ns, 1),
            "sim_disabled_share_pct": round(sim_disabled_share, 4),
            "live_disabled_share_pct": round(live_disabled_share, 4),
            "obs_total_share_pct": round(obs_share, 4),
            "sampled_sim_overhead_pct": round(
                _overhead(sim["sampled 1/100"], sim_base), 2),
            "sampled_live_overhead_pct": round(
                _overhead(live["sampled 1/100"], live_base), 2),
        },
    )

    # Acceptance: tracing off costs <5% of the per-packet budget on both
    # the e01 sim workload and l01-style live transactions.
    assert sim_disabled_share < 5.0, (
        f"disabled-tracing guard share {sim_disabled_share:.2f}% on e01"
    )
    assert live_disabled_share < 5.0, (
        f"disabled-tracing guard share {live_disabled_share:.2f}% on l01"
    )
    # CI perf gate: the combined disabled observability surface —
    # tracing, flight recorder, and trace-context propagation guards —
    # must stay under 1% of the per-packet budget.
    assert obs_share < 1.0, (
        f"observability guard share {obs_share:.3f}% exceeds the 1% "
        f"per-packet gate (tracer {guard_ns:.0f}ns, recorder "
        f"{recorder_ns:.0f}ns, trace-ctx {trace_ctx_ns:.0f}ns)"
    )
    # Pathology net (loose: wall-clock noise, not a precision claim) —
    # 1-in-100 sampling must not meaningfully bend either workload.
    assert _overhead(sim["sampled 1/100"], sim_base) < 50.0
    assert _overhead(live["sampled 1/100"], live_base) < 50.0


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_o01_obs_overhead(_InlineBenchmark())
