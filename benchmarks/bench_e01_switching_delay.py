"""E1 — §6.1 switching delay and M/D/1 queueing.

Paper claims:

* cut-through reduces router delay to "the switch decision and setup
  time … significantly less than a microsecond" plus queueing;
* "with reasonable load (up to about 70 percent utilization), M/D/1
  modeling of the queue suggests an average queue length of
  approximately one packet or less, including the packet currently
  being transmitted";
* "the average blocking delay is then approximately the transmission
  time for half of an average packet" (exact at rho = 0.5).

Setup: four Poisson senders share one output port of a Sirpent router
(superposed arrivals ≈ Poisson, deterministic 1000-byte packets).  We
sweep the port's utilization and compare the measured waiting time and
queue occupancy against the M/D/1 formulas.
"""

from __future__ import annotations

from repro.analysis.queueing import md1_mean_queue, md1_mean_wait
from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter, RouterConfig
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.viper.wire import HeaderSegment
from repro.workloads.arrivals import PoissonArrivals

from benchmarks._common import format_table, publish, us

PACKET_BYTES = 1000
RATE_BPS = 10e6
N_SENDERS = 4
SIM_SECONDS = 3.0


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_point(utilization: float, seed: int = 1, tracer=None):
    """One utilization point; ``tracer`` (repro.obs) is installed on
    every node when given — the observability overhead benchmark
    (``bench_o01``) re-runs this exact workload with tracing on."""
    sim = Simulator()
    topo = Topology(sim)
    rngs = RngStreams(seed)
    router = topo.add_node(SirpentRouter(
        sim, "r1", config=RouterConfig(decision_delay=0.5e-6),
    ))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, out_port, _ = topo.connect(router, dst, rate_bps=RATE_BPS)
    senders = []
    for index in range(N_SENDERS):
        host = topo.add_node(SirpentHost(sim, f"s{index}"))
        _, host_port, _ = topo.connect(host, router, rate_bps=RATE_BPS)
        senders.append((host, host_port))
    dst.bind(0, lambda d: None)

    # The senders' own links each run at utilization/N: no inbound queueing.
    wire_size = PACKET_BYTES
    per_sender_pps = utilization * RATE_BPS / (wire_size * 8) / N_SENDERS
    for index, (host, host_port) in enumerate(senders):
        route = _Route(
            [HeaderSegment(port=out_port), HeaderSegment(port=0)], host_port
        )
        overhead = 4 * 2  # two minimal segments
        PoissonArrivals(
            sim, per_sender_pps,
            emit=lambda size, h=host, r=route: h.send(r, b"x", size - overhead),
            rng=rngs.stream(f"sender{index}"),
            fixed_size=wire_size, stop_at=SIM_SECONDS,
        )
    if tracer is not None:
        tracer.install(router, dst, *[host for host, _ in senders])
    sim.run(until=SIM_SECONDS)
    outport = router.output_ports[out_port]
    service_time = wire_size * 8 / RATE_BPS
    return {
        "measured_wait": outport.wait_time.mean,
        "measured_queue": outport.queue_length.mean(sim.now)
        + topo.links["r1--dst"].a_to_b.utilization.utilization(sim.now),
        "decision_delay": router.stats.router_delay.mean,
        "service_time": service_time,
        "delivered": dst.received.count,
    }


def run_sweep():
    rows = []
    for utilization in (0.1, 0.3, 0.5, 0.7, 0.9):
        point = run_point(utilization)
        service = point["service_time"]
        rows.append({
            "rho": utilization,
            "wait_meas": point["measured_wait"],
            "wait_md1": md1_mean_wait(utilization, service),
            "queue_meas": point["measured_queue"],
            "queue_md1": md1_mean_queue(utilization),
            "decision_us": us(point["decision_delay"]),
            "service": service,
        })
    return rows


def bench_e01_switching_delay(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        "E1  Switching delay vs utilization (Sirpent cut-through port, M/D/1)",
        ["rho", "wait measured (us)", "wait M/D/1 (us)",
         "L measured (pkts)", "L M/D/1 (pkts)", "decision (us)"],
        [
            (r["rho"], us(r["wait_meas"]), us(r["wait_md1"]),
             r["queue_meas"], r["queue_md1"], r["decision_us"])
            for r in rows
        ],
    )
    note = (
        "\nPaper: decision+setup < 1 us; ~1 packet in system at <=70% load;\n"
        "blocking delay ~ half a packet's transmission time at rho=0.5."
    )
    publish("e01_switching_delay", table + note)

    from benchmarks._common import assert_close

    by_rho = {r["rho"]: r for r in rows}
    # Decision delay is sub-microsecond, always.
    assert all(r["decision_us"] < 1.0 for r in rows)
    # M/D/1 match where queueing is non-trivial.
    for rho in (0.5, 0.7):
        r = by_rho[rho]
        assert_close(r["wait_meas"], r["wait_md1"], rel=0.35,
                     what=f"M/D/1 wait at rho={rho}")
    # Half-a-packet blocking delay at rho = 0.5.
    assert_close(by_rho[0.5]["wait_meas"], by_rho[0.5]["service"] / 2,
                 rel=0.35, what="half-packet wait at rho=0.5")
    # "One packet or less" holds through moderate load.
    assert by_rho[0.5]["queue_meas"] < 1.3
    assert by_rho[0.7]["queue_meas"] < 2.2
