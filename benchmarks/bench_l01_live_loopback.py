"""L01 — the live overlay on real loopback sockets.

The simulator's numbers are model numbers; this experiment runs the
same Sirpent machinery as *processes on a real network stack*: a
client, a server and four routers, each on its own loopback UDP socket
(:mod:`repro.live`), routes fetched from the directory, every
transaction crossing three cut-through routers as byte-exact VIPER
frames.  Midway through the run the mid-path router on the active
route is killed outright — its socket closes — and the client must
*survive*: per-hop ack timeouts surface the death, the transaction
layer reports the failure, and the route manager rebinds to the
disjoint alternate route (§3's directory-supplied alternates put to
work against a real failure, not a simulated one).

Measured: end-to-end transactions completed, throughput, p50/p99 RTT,
and the retry/rebind accounting around the kill.

Two throughput phases:

* **sequential** — one transaction at a time: a latency measurement
  (every transaction pays the full six-hop round trip before the next
  starts), and the phase the kill/rebind assertions live in;
* **pipelined** — a window of concurrent transactions keeps every
  router busy: this is where the PR 8 zero-allocation fastpath
  (ring-slot receive batches, in-place hop moves, memoized return
  tails) shows up as datagrams/sec/core, since the overlay runs on a
  single asyncio loop = one core.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

# `python -m benchmarks.bench_l01_live_loopback` must work from a bare
# checkout: put the repo root and src/ on the path before repro imports.
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _entry in (_ROOT, os.path.join(_ROOT, "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay, LiveTransactor, WallClock
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.transport.rebind import RouteManager

from benchmarks._common import format_table, ms, publish

#: Transactions attempted (acceptance floor is 1,000 completed).
TRANSACTIONS = 1200

#: Transaction index at which the active mid-path router is killed.
KILL_AT = 400

#: Pipelined phase: transactions in flight at once, and how many total.
PIPELINE_WINDOW = 32
PIPELINED = 4000

REQUEST = 256
REPLY = 128


def _build_topology() -> Topology:
    """client — r1 — {r2 | r4} — r3 — server: two disjoint mid paths."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    r3 = SirpentRouter(sim, "r3")
    r4 = SirpentRouter(sim, "r4")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r1, r4)
    topo.connect(r2, r3)
    topo.connect(r4, r3)
    topo.connect(r3, server)
    return topo


def _endpoints(overlay: LiveOverlay):
    return [
        node.endpoint
        for node in (*overlay.routers.values(), *overlay.hosts.values())
    ]


def _datagrams_out(overlay: LiveOverlay) -> int:
    """Every frame any endpoint put on the wire (data frames, not acks)."""
    return sum(node.metrics.frames_out for node in
               (*overlay.routers.values(), *overlay.hosts.values()))


def _rx_batching(overlay: LiveOverlay):
    endpoints = _endpoints(overlay)
    return (
        sum(e.rx_datagrams for e in endpoints),
        sum(e.rx_batches for e in endpoints),
    )


def _mid_router_of(overlay: LiveOverlay, route) -> str:
    """Which of r2/r4 the route's first (r1) segment forwards into."""
    for edge in overlay.topology.all_edges():
        if edge.src == "r1" and edge.port_id == route.segments[0].port:
            return edge.dst
    raise AssertionError("route does not traverse r1")


async def _run_overlay() -> dict:
    overlay = LiveOverlay(_build_topology())
    await overlay.start()
    try:
        client_tx = LiveTransactor(overlay.hosts["client"])
        server_tx = LiveTransactor(overlay.hosts["server"])
        server_tx.serve(lambda payload: b"r" * REPLY)
        routes = overlay.routes(
            "client", "server", k=2,
            dest_socket=client_tx.config.socket, with_tokens=True,
        )
        assert len(routes) == 2, "expected two disjoint routes"
        manager = RouteManager(WallClock(), routes)

        request = b"q" * REQUEST
        rtts = []
        failures = 0
        retries_total = 0
        killed = ""
        kill_recovery_rtt = 0.0
        started = time.monotonic()
        for index in range(TRANSACTIONS):
            if index == KILL_AT:
                killed = _mid_router_of(overlay, manager.current())
                overlay.kill(killed)
            result = await client_tx.transact(manager, request)
            if result.ok:
                rtts.append(result.rtt)
                if index == KILL_AT:
                    kill_recovery_rtt = result.rtt
            else:
                failures += 1
            retries_total += result.retries
        elapsed = time.monotonic() - started

        assert killed, "kill point never reached"
        alive_mid = "r4" if killed == "r2" else "r2"
        assert _mid_router_of(overlay, manager.current()) == alive_mid, (
            "client did not rebind off the killed router"
        )

        # Phase 2 — pipelined: a window of concurrent transactions keeps
        # the surviving route's routers busy, so per-hop cost (not RTT)
        # bounds throughput.  The phase gets its own manager pinned to
        # the surviving route: queueing inside the window inflates RTTs
        # past the degradation threshold, and this phase measures the
        # forwarding fastpath, not rebind policy (phase 1 covered that).
        pinned = RouteManager(WallClock(), [manager.current()])
        frames_before = _datagrams_out(overlay)
        rx_dgrams_before, rx_batches_before = _rx_batching(overlay)
        window = asyncio.Semaphore(PIPELINE_WINDOW)
        p_rtts = []
        p_failures = 0

        async def one_transaction() -> None:
            nonlocal p_failures
            async with window:
                result = await client_tx.transact(pinned, request)
            if result.ok:
                p_rtts.append(result.rtt)
            else:
                p_failures += 1

        p_started = time.monotonic()
        await asyncio.gather(
            *(one_transaction() for _ in range(PIPELINED))
        )
        p_elapsed = time.monotonic() - p_started
        rx_dgrams_after, rx_batches_after = _rx_batching(overlay)
        return {
            "rtts": rtts,
            "failures": failures,
            "retries": retries_total,
            "elapsed": elapsed,
            "killed": killed,
            "kill_recovery_rtt": kill_recovery_rtt,
            "switches": manager.switches.count,
            "pipelined_rtts": p_rtts,
            "pipelined_failures": p_failures,
            "pipelined_elapsed": p_elapsed,
            "pipelined_frames": _datagrams_out(overlay) - frames_before,
            "pipelined_rx_datagrams": rx_dgrams_after - rx_dgrams_before,
            "pipelined_rx_batches": rx_batches_after - rx_batches_before,
            "metrics_table": overlay.render_metrics(),
        }
    finally:
        overlay.stop()


def _quantile(samples, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_l01_live_loopback(benchmark):
    results = benchmark.pedantic(
        lambda: asyncio.run(_run_overlay()), rounds=1, iterations=1
    )
    rtts = results["rtts"]
    completed = len(rtts)
    throughput = completed / results["elapsed"]
    p50 = _quantile(rtts, 0.50)
    p99 = _quantile(rtts, 0.99)
    p_completed = len(results["pipelined_rtts"])
    p_throughput = p_completed / results["pipelined_elapsed"]
    datagrams_per_s = results["pipelined_frames"] / results["pipelined_elapsed"]
    rx_batch_avg = results["pipelined_rx_datagrams"] / max(
        1, results["pipelined_rx_batches"]
    )
    p_p50 = _quantile(results["pipelined_rtts"], 0.50)
    table = format_table(
        f"L01  Live loopback overlay ({REQUEST}B/{REPLY}B, 3 routers per "
        f"path, {results['killed']} killed mid-run)",
        ["measure", "value", "notes"],
        [
            ("transactions completed", completed,
             f"of {TRANSACTIONS} attempted, {results['failures']} failed"),
            ("throughput (tx/s)", round(throughput, 1),
             "sequential transactions over real UDP"),
            ("RTT p50 (ms)", round(ms(p50), 3), "3 live router hops each way"),
            ("RTT p99 (ms)", round(ms(p99), 3),
             "tail includes the kill-recovery transaction"),
            ("route switches", results["switches"],
             f"rebind away from {results['killed']} "
             f"(recovery took {ms(results['kill_recovery_rtt']):.1f}ms)"),
            ("transaction retries", results["retries"],
             "timeouts during the dead-router window"),
            ("pipelined throughput (tx/s)", round(p_throughput, 1),
             f"{p_completed} tx, window of {PIPELINE_WINDOW} in flight"),
            ("pipelined datagrams/s/core", round(datagrams_per_s, 1),
             "data frames on the wire across all 6 nodes, one asyncio "
             "loop = one core"),
            ("pipelined RTT p50 (ms)", round(ms(p_p50), 3),
             "includes queueing inside the window"),
            ("rx batch fill (datagrams/wakeup)", round(rx_batch_avg, 2),
             "ring-slot recvmsg_into drain per reader wakeup"),
        ],
    )
    note = (
        "\nPer-endpoint counters:\n" + results["metrics_table"] +
        "\nThe same switching/token/trailer code as the simulator, on "
        "real sockets;\na killed router becomes ack silence, and the "
        "directory's alternate route\nabsorbs the failure inside one "
        "transaction.  Sequential tx/s is a latency\nnumber (each "
        "transaction waits out its own six-hop round trip); the\n"
        "pipelined phase is the throughput number the zero-allocation "
        "fastpath\nis accountable for."
    )
    publish("l01_live_loopback", table + note, data={
        "title": "L01 live loopback overlay",
        "metrics": {
            "sequential_tx_s": round(throughput, 1),
            "pipelined_tx_s": round(p_throughput, 1),
            "datagrams_per_s_core": round(datagrams_per_s, 1),
            "rx_batch_fill": round(rx_batch_avg, 2),
            "rtt_p50_ms": round(ms(p50), 3),
            "rtt_p99_ms": round(ms(p99), 3),
        },
        "higher_is_better": [
            "sequential_tx_s", "pipelined_tx_s",
            "datagrams_per_s_core", "rx_batch_fill",
        ],
        "lower_is_better": ["rtt_p50_ms", "rtt_p99_ms"],
    })

    # Acceptance: at least 1,000 transactions complete over real UDP.
    assert completed >= 1000, f"only {completed} transactions completed"
    # The kill was survived: every transaction still completed...
    assert results["failures"] == 0, f"{results['failures']} transactions lost"
    # ...because the client rebound to the alternate route.
    assert results["switches"] >= 1, "no rebind happened"
    # Loopback RTT through three live routers stays in the ms regime.
    assert p50 < 0.05, f"p50 {p50:.4f}s is implausibly slow for loopback"
    assert p99 < 1.0, f"p99 {p99:.4f}s: recovery should be sub-second"
    # Pipelining over the fastpath must beat sequential decisively: the
    # window hides RTT, so throughput is bounded by per-hop CPU cost,
    # not the six-hop round trip.  (The absolute number is tracked by
    # tools/perfgate.py against benchmarks/baselines/.)
    assert results["pipelined_failures"] == 0, (
        f"{results['pipelined_failures']} pipelined transactions lost"
    )
    assert p_throughput >= 1.5 * throughput, (
        f"pipelined {p_throughput:.0f} tx/s is under 1.5x sequential "
        f"{throughput:.0f} tx/s — the window is not hiding latency"
    )
    # The receive path must actually batch: ring-slot drains amortize
    # one wakeup over many datagrams once the window applies pressure.
    assert rx_batch_avg >= 4.0, (
        f"rx batch fill {rx_batch_avg:.2f} datagrams/wakeup — the "
        "recvmsg_into drain loop is not amortizing wakeups"
    )


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_l01_live_loopback(_InlineBenchmark())
