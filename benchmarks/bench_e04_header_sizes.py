"""E4 — VIPER vs IP header size as a function of route length.

§6.2's structural point: VIPER's header cost is *per hop* where IP's is
fixed.  With the paper's 18 bytes/hop the crossover sits at 20/18 ≈ 1.1
hops: shorter (local) routes make VIPER strictly cheaper, long transit
routes cost more unless collapsed into logical hops (§2.2).  This bench
sizes real encoded routes — with and without 28-byte port tokens — and
locates the crossover.
"""

from __future__ import annotations

from repro.analysis.overhead import crossover_hops
from repro.net.addresses import MacAddress
from repro.viper.portinfo import EthernetInfo
from repro.viper.wire import HeaderSegment, encode_route

from benchmarks._common import format_table, publish

IP_HEADER = 20
TOKEN_BYTES = 28


def _route(hops: int, ethernet: bool, tokens: bool):
    mac = MacAddress(0x02_00_00_00_00_01)
    info = EthernetInfo(dst=mac, src=mac).to_bytes() if ethernet else b""
    segments = []
    for _ in range(hops):
        segments.append(HeaderSegment(
            port=1,
            vnt=not ethernet,
            portinfo=info,
            token=bytes(TOKEN_BYTES) if tokens else b"",
        ))
    segments.append(HeaderSegment(port=0))  # final intra-host segment
    return segments


def run_sweep():
    rows = []
    # Up to 47 routers: the destination's final segment makes 48, the
    # VIPER maximum (§2.3).
    for hops in (0, 1, 2, 3, 5, 8, 16, 47):
        p2p = len(encode_route(_route(hops, ethernet=False, tokens=False)))
        ether = len(encode_route(_route(hops, ethernet=True, tokens=False)))
        tokened = len(encode_route(_route(hops, ethernet=True, tokens=True)))
        rows.append({
            "hops": hops, "p2p": p2p, "ether": ether,
            "tokened": tokened, "ip": IP_HEADER,
        })
    return rows


def bench_e04_header_sizes(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        "E4  Encoded header bytes vs route length (VIPER codec, Figure 1)",
        ["hops", "VIPER p2p/VNT", "VIPER Ethernet", "VIPER Ethernet+token",
         "IP fixed"],
        [(r["hops"], r["p2p"], r["ether"], r["tokened"], r["ip"])
         for r in rows],
    )
    note = (
        f"\nPaper crossover model: IP 20B / 18B-per-hop = "
        f"{crossover_hops():.2f} hops; 48-segment routes stay 'under 500\n"
        "bytes' for p2p/VNT segments (tokens, which IP cannot express at\n"
        "all, add 28B per hop)."
    )
    publish("e04_header_sizes", table + note)

    by_hops = {r["hops"]: r for r in rows}
    # Local and 1-hop traffic: VIPER headers at or below IP's 20 bytes.
    assert by_hops[0]["ether"] <= IP_HEADER
    assert by_hops[1]["p2p"] <= IP_HEADER
    # Beyond the crossover, Ethernet-hop routes exceed IP's fixed header.
    assert by_hops[2]["ether"] > IP_HEADER
    # The §2.3 sizing claim: a maximal 48-segment route < 500 bytes.
    assert by_hops[47]["p2p"] < 500
    # Per-hop growth is exactly the segment size: 4 (VNT) / 18 (Ether).
    assert by_hops[3]["p2p"] - by_hops[2]["p2p"] == 4
    assert by_hops[2]["ether"] - by_hops[1]["ether"] == 18
