"""R01 — seeded chaos soak: one fault plan, two substrates, five invariants.

Robustness evidence for the whole stack: a single seeded
:class:`~repro.chaos.plan.FaultPlan` — drops, duplicates, reordering,
corruption, delay spikes, a link partition, a mid-path router
crash/restart and a directory outage over the 4-router diamond — is
replayed against **both** the simulator and the live UDP overlay
through the shared interposition seam.  The same compiled schedule must
apply byte-identically on both substrates
(:meth:`~repro.chaos.seam.FaultInjector.applied_ndjson`), and the
wreckage of each run must satisfy every
:class:`~repro.chaos.invariants.InvariantChecker` invariant: exactly-
once application delivery, clean outcomes, bounded retries, post-fault
recovery inside the SLO, and no synchronized retry bursts (the jittered
backoff doing its job under a real partition).

Measured: transaction outcomes, retry/rebind totals, injected fault
counts, and the invariant verdict per substrate.  The applied fault
logs land in ``benchmarks/results/`` as NDJSON artifacts.
"""

from __future__ import annotations

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _entry in (_ROOT, os.path.join(_ROOT, "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.chaos import (
    InvariantChecker,
    SoakReport,
    chaos_plan,
    run_live_soak,
    run_sim_soak,
)

from benchmarks._common import RESULTS_DIR, format_table, publish

#: Plan seed — the whole soak is a pure function of this number.
SEED = 20260806

#: Fault window length (the acceptance floor is a >=30s mixed soak).
DURATION_S = 30.0


def _row(report: SoakReport, violations) -> tuple:
    retries = sum(tx.retries for tx in report.transactions)
    switches = sum(tx.route_switches for tx in report.transactions)
    injected = sum(
        1 for entry in report.fault_log if "action" in entry
    )
    return (
        report.substrate,
        len(report.transactions),
        report.ok_count,
        report.failed_count,
        retries,
        switches,
        injected,
        len(violations),
    )


def _write_artifact(report: SoakReport) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(
        RESULTS_DIR, f"r01_fault_log_{report.substrate}.ndjson"
    )
    with open(path, "w") as handle:
        for entry in report.fault_log:
            handle.write(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
    return path


def _run() -> dict:
    plan = chaos_plan(SEED, duration_s=DURATION_S)
    sim_report = run_sim_soak(plan)
    live_report = run_live_soak(plan)
    checker = InvariantChecker(plan)
    return {
        "plan": plan,
        "sim": sim_report,
        "live": live_report,
        "sim_violations": checker.check(sim_report),
        "live_violations": checker.check(live_report),
    }


def bench_r01_chaos_soak(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    plan = results["plan"]
    sim, live = results["sim"], results["live"]
    sim_v, live_v = results["sim_violations"], results["live_violations"]
    for report in (sim, live):
        _write_artifact(report)

    identical = sim.applied_ndjson == live.applied_ndjson
    table = format_table(
        f"R01  Chaos soak (plan {plan.name}, {len(plan.specs)} fault "
        f"specs over {DURATION_S:.0f}s, seed {SEED})",
        ["substrate", "tx", "ok", "failed", "retries", "switches",
         "faults applied", "violations"],
        [_row(sim, sim_v), _row(live, live_v)],
    )
    note = (
        f"\nplan fingerprint: {plan.fingerprint()[:16]}…\n"
        f"applied schedules byte-identical across substrates: "
        f"{identical}\n"
        "Invariants: exactly-once delivery, clean outcomes, retry "
        "budget, recovery SLO,\nno synchronized retry bursts.  Fault "
        "logs: benchmarks/results/r01_fault_log_*.ndjson"
    )
    publish("r01_chaos_soak", table + note)

    # Acceptance: the same plan replayed byte-identically on both
    # substrates through the one shared seam.
    assert identical, "applied fault schedules diverged across substrates"
    # Both soaks ran the full >=30s fault window.
    for report in (sim, live):
        assert report.duration_s >= DURATION_S, (
            f"{report.substrate} soak ran only {report.duration_s:.1f}s"
        )
        assert report.transactions, f"{report.substrate} issued nothing"
    # Every invariant holds on every substrate.
    for name, violations in (("sim", sim_v), ("live", live_v)):
        assert not violations, (
            f"{name} soak broke invariants: "
            + "; ".join(str(v) for v in violations)
        )


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_r01_chaos_soak(_InlineBenchmark())
