"""E15 — §4.2 maximum packet lifetime: timestamps vs TTL.

Paper claims:

* "unlike the TTL field in the IP packets, the creation timestamp
  requires no update in intermediate routers, thereby eliminating the
  associated processing load";
* receivers "discard packets that are older than an acceptable period",
  with recently booted machines being stricter;
* a Sirpent packet "cannot loop infinitely at the Sirpent level because
  the header is finite and is reduced by each router".

Setup: (a) count per-router lifetime work for the same packet stream
under IP (TTL decrement + incremental checksum each hop) and Sirpent
(none); (b) hold VMTP packets in a delay buffer and measure acceptance
vs age, including after a receiver reboot; (c) demonstrate the
structural loop bound: a looping source route dies when its segments
run out.
"""

from __future__ import annotations

from repro.scenarios import build_ip_line, build_sirpent_line
from repro.transport import TransportConfig
from repro.transport.timestamps import TimestampPolicy
from repro.transport.vmtp import PduKind, VmtpPdu
from repro.viper.wire import HeaderSegment

from benchmarks._common import format_table, publish

N_PACKETS = 50
HOPS = 4


def run_router_work():
    # IP: every forwarded packet costs a TTL decrement + checksum update.
    ip = build_ip_line(n_routers=HOPS)
    ip.converge()
    ip.hosts["dst"].bind_protocol(42, lambda p: None)
    for _ in range(N_PACKETS):
        ip.hosts["src"].send("dst", b"x", 200, protocol=42)
    ip.sim.run(until=ip.sim.now + 2.0)
    ip_updates = sum(r.stats.forwarded.count for r in ip.routers.values())

    # Sirpent: zero lifetime-related fields exist in the header at all.
    sirpent = build_sirpent_line(n_routers=HOPS)
    sirpent.hosts["dst"].bind(0, lambda d: None)
    route = sirpent.routes("src", "dst")[0]
    for _ in range(N_PACKETS):
        sirpent.hosts["src"].send(route, b"x", 200)
    sirpent.sim.run(until=2.0)
    forwarded = sum(
        r.stats.forwarded.count for r in sirpent.routers.values()
    )
    return {
        "ip_lifetime_updates": ip_updates,
        "sirpent_lifetime_updates": 0,
        "sirpent_forwarded": forwarded,
    }


def run_stale_acceptance():
    """Deliver PDUs of increasing age; count MPL rejections."""
    config = TransportConfig(mpl=TimestampPolicy(max_age_ms=100))
    scenario = build_sirpent_line(n_routers=1)
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    entity = server.create_entity(lambda m: (b"ok", 8), hint="server")
    route = scenario.vmtp_routes("src", "dst")[0]
    client_entity = client.create_entity(None, hint="client")

    ages_ms = (0, 50, 99, 150, 400)
    for index, age in enumerate(ages_ms):
        pdu = VmtpPdu(
            kind=PduKind.REQUEST, transaction_id=1000 + index,
            src_entity=client_entity, dst_entity=entity,
            member_index=0, group_count=1,
            timestamp=client.clock.stamp(),
            reply_socket=1, user_size=16, user_data=b"aged",
        )
        # Hold the packet 'in the network' for `age` milliseconds.
        scenario.sim.after(
            age / 1000.0,
            lambda p=pdu: scenario.hosts["src"].send(route, p, 88),
        )
    scenario.sim.run(until=1.0)
    accepted_before = server.stats.received_pdus.count \
        - server.stats.lifetime_rejects.count
    rejected_before = server.stats.lifetime_rejects.count

    # Reboot the receiver: even young packets predating boot die.
    server.clock.reboot()
    fresh_but_preboot = VmtpPdu(
        kind=PduKind.REQUEST, transaction_id=2000,
        src_entity=client_entity, dst_entity=entity,
        member_index=0, group_count=1,
        timestamp=server.clock.now_ms() - 50,  # 50ms before boot
        reply_socket=1, user_size=16, user_data=b"preboot",
    )
    scenario.hosts["src"].send(route, fresh_but_preboot, 88)
    scenario.sim.run(until=scenario.sim.now + 0.5)
    return {
        "sent": len(ages_ms) + 1,
        "accepted": accepted_before,
        "rejected_old": rejected_before,
        "rejected_preboot": server.stats.lifetime_rejects.count - rejected_before,
    }


def run_loop_bound():
    """A deliberately circular source route dies by header exhaustion."""
    scenario = build_sirpent_line(n_routers=2)
    # r1 port toward r2 and r2 port back toward r1: ping-pong 6 times.
    r1_to_r2 = next(
        pid for pid, att in scenario.routers["r1"].ports.items()
        if att.peer_name_for(None) == "r2"
    )
    r2_to_r1 = next(
        pid for pid, att in scenario.routers["r2"].ports.items()
        if att.peer_name_for(None) == "r1"
    )
    segments = []
    for _ in range(3):
        segments.append(HeaderSegment(port=r1_to_r2))
        segments.append(HeaderSegment(port=r2_to_r1))

    class _Loop:
        first_hop_port = next(iter(scenario.hosts["src"].ports))
        first_hop_mac = None

    _Loop.segments = segments
    scenario.hosts["src"].send(_Loop, b"loop", 64)
    scenario.sim.run(until=1.0)
    exhausted = sum(
        r.stats.route_exhausted.count for r in scenario.routers.values()
    )
    hops = sum(r.stats.forwarded.count for r in scenario.routers.values())
    return {"hops_before_death": hops, "exhausted": exhausted}


def run_all():
    return run_router_work(), run_stale_acceptance(), run_loop_bound()


def bench_e15_packet_lifetime(benchmark):
    work, stale, loop = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E15  Packet lifetime enforcement: router work and receiver checks",
        ["quantity", "IP (TTL)", "Sirpent (timestamp)"],
        [
            (f"per-hop lifetime updates ({N_PACKETS} pkts x {HOPS} routers)",
             work["ip_lifetime_updates"], work["sirpent_lifetime_updates"]),
            ("packets forwarded", work["ip_lifetime_updates"],
             work["sirpent_forwarded"]),
        ],
    )
    table2 = format_table(
        "E15b  Receiver MPL checks (acceptance window 100 ms)",
        ["delivered with age", "outcome"],
        [
            ("0 / 50 / 99 ms", f"{stale['accepted']} accepted"),
            ("150 / 400 ms", f"{stale['rejected_old']} rejected (too old)"),
            ("young but pre-boot", f"{stale['rejected_preboot']} rejected "
             "(receiver just booted)"),
        ],
    )
    table3 = format_table(
        "E15c  Loop bound without TTL",
        ["circular 6-segment route", "value"],
        [
            ("hops taken before header exhausted", loop["hops_before_death"]),
            ("route-exhausted drops", loop["exhausted"]),
        ],
    )
    note = (
        "\nPaper: the timestamp 'requires no update in intermediate\n"
        "routers'; stale and pre-boot packets die at the receiver; a\n"
        "Sirpent packet 'cannot loop infinitely … because the header is\n"
        "finite and is reduced by each router'."
    )
    publish("e15_packet_lifetime", "\n\n".join([table, table2, table3]) + note)

    assert work["ip_lifetime_updates"] == N_PACKETS * HOPS
    assert work["sirpent_lifetime_updates"] == 0
    assert stale["accepted"] == 3
    assert stale["rejected_old"] == 2
    assert stale["rejected_preboot"] == 1
    # Exactly one forward per segment, then the empty-header packet dies
    # at the next router: the structural loop bound, no TTL involved.
    assert loop["hops_before_death"] == 6
    assert loop["exhausted"] == 1
