#!/usr/bin/env python3
"""Run every experiment and print all the tables, no pytest needed.

Usage:  python benchmarks/run_all.py [experiment-id ...]

With no arguments every Exx/Axx/Fxx/Lxx experiment runs in order; with
arguments (e.g. ``e05 a03``) only those run.  Tables also land in
``benchmarks/results/``.
"""

from __future__ import annotations

import importlib
import inspect
import json
import os
import sys
import time

# Allow `python benchmarks/run_all.py` from anywhere: the benchmarks
# package lives next to this file.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


EXPERIMENTS = [
    ("f01", "bench_f01_viper_codec"),
    ("f02", "bench_f02_dataplane"),
    ("e01", "bench_e01_switching_delay"),
    ("e02", "bench_e02_delay_vs_size"),
    ("e03", "bench_e03_header_overhead"),
    ("e04", "bench_e04_header_sizes"),
    ("e05", "bench_e05_congestion_backpressure"),
    ("e06", "bench_e06_failure_recovery"),
    ("e07", "bench_e07_logical_links"),
    ("e08", "bench_e08_bursty_cvc"),
    ("e09", "bench_e09_token_authorization"),
    ("e10", "bench_e10_transaction_rtt"),
    ("e11", "bench_e11_scalability"),
    ("e12", "bench_e12_multicast"),
    ("e13", "bench_e13_truncation_vs_fragmentation"),
    ("e14", "bench_e14_priority_preemption"),
    ("e15", "bench_e15_packet_lifetime"),
    ("a01", "bench_a01_decision_delay"),
    ("a02", "bench_a02_size_mixture_queueing"),
    ("a03", "bench_a03_playout_jitter"),
    ("a04", "bench_a04_ip_tunnel"),
    ("a05", "bench_a05_nab_host_overhead"),
    ("a06", "bench_a06_hierarchical_fanout"),
    ("a07", "bench_a07_blocked_policies"),
    ("d01", "bench_d01_directory_scale"),
    ("l01", "bench_l01_live_loopback"),
    ("o01", "bench_o01_obs_overhead"),
    ("s01", "bench_s01_sirlint_speed"),
    ("r01", "bench_r01_chaos_soak"),
    ("r02", "bench_r02_slick_failover"),
]


class _InlineBenchmark:
    """Minimal stand-in for pytest-benchmark's fixture."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, rounds=1, iterations=1, args=(), kwargs=None):
        return fn(*args, **(kwargs or {}))


def main(argv) -> int:
    wanted = {a.lower() for a in argv[1:]}
    failures = []
    runs = []
    for exp_id, module_name in EXPERIMENTS:
        if wanted and exp_id not in wanted:
            continue
        module = importlib.import_module(f"benchmarks.{module_name}")
        bench_fn = next(
            getattr(module, name) for name in dir(module)
            if name.startswith("bench_")
        )
        started = time.time()
        try:
            # Most benches take pytest-benchmark's fixture; the
            # subprocess-timing ones (s01, r01) take no arguments.
            if inspect.signature(bench_fn).parameters:
                bench_fn(_InlineBenchmark())
            else:
                bench_fn()
            status = "ok"
        except AssertionError as error:
            failures.append((exp_id, error))
            status = f"SHAPE-CHECK FAILED: {error}"
        elapsed = time.time() - started
        runs.append({
            "id": exp_id,
            "module": module_name,
            "status": "ok" if status == "ok" else "shape_check_failed",
            "seconds": round(elapsed, 3),
        })
        print(f"[{exp_id}] {status} ({elapsed:.1f}s)\n")
    # Machine-readable summary next to the per-bench BENCH_<id>.json
    # files (written by _common.publish for every table published).
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_run_all.json"), "w") as fh:
        json.dump(
            {"experiments": runs, "failures": len(failures)},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    if failures:
        print(f"{len(failures)} experiment(s) failed their shape checks.")
        return 1
    print("All experiments reproduced their paper claims.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
