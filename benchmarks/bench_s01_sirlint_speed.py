"""S01 — the sirlint gate must never become CI's critical path.

The domain linter (SIR001–SIR011, ``tools/sirlint``) runs as its own CI
job on every push.  This bench times a full ``python -m sirlint src``
invocation — subprocess, cold interpreter, exactly as CI runs it — and
asserts it finishes well inside a 10-second budget, so adding rules or
files can never quietly turn the lint job into the slowest leg of the
pipeline.  The dataflow rules (SIR009–SIR011) build a CFG and run a
fixpoint per function, so this guard is what keeps that machinery
honest as the tree grows.

It also times the ``--changed`` fast path — the pre-push loop — which
must stay under one second: a developer who waits ten seconds per
commit stops running the linter.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from benchmarks._common import format_table, publish

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Wall-clock budget (seconds) for one cold `python -m sirlint src`.
BUDGET_SECONDS = 10.0

#: Wall-clock budget (seconds) for the `--changed` pre-push fast path.
CHANGED_BUDGET_SECONDS = 1.0


def run_sirlint(*extra: str) -> "tuple[float, dict]":
    """One cold CLI run; returns (wall seconds, parsed JSON report)."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "tools"))
    started = time.monotonic()
    proc = subprocess.run(
        [sys.executable, "-m", "sirlint", "src", "--format", "json", *extra],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    elapsed = time.monotonic() - started
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return elapsed, json.loads(proc.stdout)


def bench_s01_sirlint_speed() -> None:
    """Full run < 10 s and `--changed` < 1 s, cold, including startup."""
    wall, payload = run_sirlint()
    analysis = payload["elapsed_seconds"]
    changed_wall, changed_payload = run_sirlint("--changed", "HEAD")
    rows = [
        ("wall clock (cold subprocess)", f"{wall:.2f}", BUDGET_SECONDS),
        ("analysis only (CLI-reported)", f"{analysis:.2f}", BUDGET_SECONDS),
        ("files checked", payload["checked_files"], "-"),
        ("findings", len(payload["findings"]), 0),
        (
            "--changed HEAD (cold subprocess)",
            f"{changed_wall:.2f}",
            CHANGED_BUDGET_SECONDS,
        ),
        ("--changed files checked", changed_payload["checked_files"], "-"),
    ]
    publish("bench_s01_sirlint_speed", format_table(
        "S01 sirlint speed guard (budget: never the CI critical path)",
        ("quantity", "measured", "budget"),
        rows,
    ))
    assert wall < BUDGET_SECONDS, (
        f"sirlint src took {wall:.1f}s cold — over the {BUDGET_SECONDS}s "
        "budget; profile the rules before adding more"
    )
    assert analysis < BUDGET_SECONDS / 2, (
        f"analysis alone took {analysis:.1f}s — the AST pass is drifting"
    )
    assert changed_wall < CHANGED_BUDGET_SECONDS, (
        f"sirlint --changed took {changed_wall:.2f}s — the pre-push path "
        f"must stay under {CHANGED_BUDGET_SECONDS:.0f}s or nobody runs it"
    )


if __name__ == "__main__":
    bench_s01_sirlint_speed()
