"""E14 — §2.1/§5 type-of-service: priorities and mid-transmission
preemption.

Paper claims:

* "the type of service field allows the network to support a variety of
  types of traffic ranging from real-time video to file transfer while
  still only imposing the overhead of examining and acting on the type
  of service field when the packet is blocked";
* "Priorities 6 and 7 preempt the transmission of lower priority
  packets in mid-transmission if necessary" — so high-priority traffic
  sees "contention only … between comparable priority traffic".

Setup: a CBR 'video' stream crosses a router saturated by bulk
transfers.  Sweep the stream's priority: background (0xF), normal (0),
high non-preemptive (5) and preemptive (7); measure its delivery delay
distribution and the bulk traffic's throughput.
"""

from __future__ import annotations

from repro.scenarios import build_sirpent_line
from repro.transport import RouteManager
from repro.viper.flags import (
    PRIORITY_LOWEST,
    PRIORITY_NORMAL,
    PRIORITY_PREEMPT_HIGH,
)
from repro.workloads.apps import FileTransferApp, JitterMeter, VideoStreamApp

from benchmarks._common import format_table, ms, publish

FRAME_INTERVAL = 2e-3
FRAME_BYTES = 500
DURATION = 1.0


def run_priority(priority: int):
    # Two routers: the video (src->dst) and the bulk (src2->dst2) share
    # the r1->r2 trunk, which is where contention and preemption happen.
    # Rate-based congestion control is off so the experiment isolates
    # the *queueing/preemption* machinery — E5 covers backpressure.
    from repro.core.router import RouterConfig

    scenario = build_sirpent_line(
        n_routers=2, extra_host_pairs=1,
        router_config=RouterConfig(congestion_enabled=False),
    )
    video_route = scenario.routes("src", "dst", dest_socket=0)[0]
    meter = JitterMeter(expected_interval=FRAME_INTERVAL)
    delays = []

    def on_frame(delivered):
        meter.on_delivery(delivered)
        delays.append(delivered.one_way_delay)

    scenario.hosts["dst"].bind(0, on_frame)
    # dib=False: blocked frames queue at their priority instead of being
    # discarded, so the priority ladder shows up as delay rather than
    # loss.  (With DIB the non-preemptive variants would simply lose
    # almost every frame on a saturated trunk — tested separately.)
    VideoStreamApp(
        scenario.sim, scenario.hosts["src"], video_route,
        frame_bytes=FRAME_BYTES, frame_interval=FRAME_INTERVAL,
        priority=priority, duration=DURATION, dib=False,
    )
    # Saturating bulk competition on the shared router.
    bulk_client = scenario.transport("src2")
    bulk_server = scenario.transport("dst2")
    entity = bulk_server.create_entity(lambda m: (b"", 1), hint="sink")
    bulk_manager = RouteManager(
        scenario.sim, scenario.vmtp_routes("src2", "dst2")
    )
    bulk = FileTransferApp(
        scenario.sim, bulk_client, bulk_manager, entity,
        total_bytes=4_000_000, priority=PRIORITY_NORMAL,
    )
    scenario.sim.run(until=DURATION + 0.3)
    router = scenario.routers["r1"]
    preemptions = sum(p.preemptions.count for p in router.output_ports.values())
    import statistics

    return {
        "received": meter.received.count,
        "p50": statistics.median(delays) if delays else float("nan"),
        "p95": sorted(delays)[int(len(delays) * 0.95)] if delays else float("nan"),
        "jitter_p95": meter.jitter.quantile(0.95),
        "bulk_throughput": bulk.throughput_bps(),
        "preemptions": preemptions,
    }


def run_all():
    return {
        "background (0xF)": run_priority(PRIORITY_LOWEST),
        "normal (0)": run_priority(PRIORITY_NORMAL),
        "high, no preempt (5)": run_priority(5),
        "preemptive (7)": run_priority(PRIORITY_PREEMPT_HIGH),
    }


def bench_e14_priority_preemption(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E14  CBR stream through a bulk-saturated router, by priority",
        ["stream priority", "frames delivered", "delay p50 (ms)",
         "delay p95 (ms)", "jitter p95 (ms)", "bulk Mb/s", "preemptions"],
        [
            (name, r["received"], ms(r["p50"]), ms(r["p95"]),
             ms(r["jitter_p95"]), r["bulk_throughput"] / 1e6,
             r["preemptions"])
            for name, r in results.items()
        ],
    )
    note = (
        "\nPaper: priority is only examined when a packet blocks; 6-7\n"
        "preempt mid-transmission, so real-time traffic contends only\n"
        "with its own class while bulk transfer still progresses."
    )
    publish("e14_priority_preemption", table + note)

    background = results["background (0xF)"]
    normal = results["normal (0)"]
    high = results["high, no preempt (5)"]
    preemptive = results["preemptive (7)"]
    # Higher priority -> lower tail delay, monotonically.
    assert preemptive["p95"] < high["p95"] <= normal["p95"] <= background["p95"] * 1.05
    # Preemption actually happened, and bounds the tail near the
    # unloaded delivery time (well under one bulk-packet serialization
    # behind schedule).
    assert preemptive["preemptions"] > 0
    assert preemptive["p95"] < 1.5e-3
    assert preemptive["jitter_p95"] < 1e-3
    # Bulk still made real progress under the preemptive stream.
    assert preemptive["bulk_throughput"] > 1e6
