"""A6 — §5's hierarchical fan-out claim.

"We require that larger fan-out switches be structured hierarchically
as a series of switches, each with a fan-out of at most 255.  The
hierarchical structuring … imposes no significant additional delay
given the use of cut-through routing at each stage."

Setup: hosts on opposite leaves of a two-stage fabric (leaf → root →
leaf, i.e. three cut-through stages) versus a single flat switch, at
100 Mb/s.  The extra stages should cost only decision delays and header
pipeline — microseconds against an ~80 µs packet.
"""

from __future__ import annotations

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.net.fabric import build_fabric
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment

from benchmarks._common import format_table, publish, us

PAYLOAD = 1000
RATE = 100e6


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_flat() -> float:
    sim = Simulator()
    topo = Topology(sim)
    switch = topo.add_node(SirpentRouter(sim, "flat"))
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, src_port, _ = topo.connect(src, switch, rate_bps=RATE,
                                  propagation_delay=1e-6)
    _, out_port, _ = topo.connect(switch, dst, rate_bps=RATE,
                                  propagation_delay=1e-6)
    got = []
    dst.bind(0, got.append)
    src.send(_Route(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], src_port
    ), b"x", PAYLOAD)
    sim.run(until=1.0)
    return got[0].one_way_delay


def run_fabric(n_leaves: int) -> float:
    sim = Simulator()
    topo = Topology(sim)
    fabric = build_fabric(sim, topo, n_leaves=n_leaves, rate_bps=RATE)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, src_port, _ = topo.connect(src, fabric.leaf_for(0), rate_bps=RATE,
                                  propagation_delay=1e-6)
    _, _, dst_leaf_port = topo.connect(
        fabric.leaf_for(n_leaves - 1), dst, rate_bps=RATE,
        propagation_delay=1e-6,
    )
    # connect() assigned the leaf's port; find it from the edge list.
    dst_leaf_port = next(
        e.port_id for e in topo.edges_from(fabric.leaf_for(n_leaves - 1).name)
        if e.dst == "dst"
    )
    got = []
    dst.bind(0, got.append)
    segments = fabric.internal_segments(0, dst_leaf_port, n_leaves - 1) + [
        HeaderSegment(port=0)
    ]
    src.send(_Route(segments, src_port), b"x", PAYLOAD)
    sim.run(until=1.0)
    return got[0].one_way_delay


def run_all():
    return {
        "flat switch (1 stage)": run_flat(),
        "fabric 4 leaves (3 stages)": run_fabric(4),
        "fabric 16 leaves (3 stages)": run_fabric(16),
    }


def bench_a06_hierarchical_fanout(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    serialization = PAYLOAD * 8 / RATE
    table = format_table(
        f"A6  Crossing a hierarchical switch fabric "
        f"({PAYLOAD}B at {RATE / 1e6:.0f} Mb/s, serialization "
        f"{us(serialization):.0f} us)",
        ["structure", "end-to-end (us)", "extra vs flat (us)"],
        [
            (name, us(delay), us(delay - results["flat switch (1 stage)"]))
            for name, delay in results.items()
        ],
    )
    note = (
        "\nPaper §5: hierarchy 'imposes no significant additional delay\n"
        "given the use of cut-through routing at each stage' — two extra\n"
        "stages cost ~2 decision delays + header pipeline, a few percent\n"
        "of one packet time."
    )
    publish("a06_hierarchical_fanout", table + note)

    flat = results["flat switch (1 stage)"]
    deep = results["fabric 16 leaves (3 stages)"]
    assert deep > flat  # the stages are not free...
    assert deep - flat < 0.15 * serialization  # ...but insignificant
    # Fan-out width does not change the crossing cost (same depth).
    assert abs(results["fabric 4 leaves (3 stages)"] - deep) < 1e-9
