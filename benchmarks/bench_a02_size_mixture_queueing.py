"""A2 — ablation: M/D/1 vs the real [4] packet-size mixture.

§6.1 uses M/D/1 (deterministic service).  Real traffic has the [4]
mixture's variability (cv² ≈ 1.1), which the Pollaczek–Khinchine M/G/1
formula predicts roughly doubles the queueing delay.  This ablation
drives the E1 setup with mixture-sized packets and checks that the
M/G/1 correction — not the paper's M/D/1 simplification — matches, so
the paper's "one packet or less" framing is mildly optimistic for
bursty size distributions.
"""

from __future__ import annotations

from repro.analysis.queueing import md1_mean_wait, mg1_mean_wait
from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.viper.wire import HeaderSegment
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.sizes import PacketSizeMixture

from benchmarks._common import assert_close, format_table, publish, us

RATE = 10e6
N_SENDERS = 4
SIM_SECONDS = 4.0
MIXTURE = PacketSizeMixture(min_size=64, max_size=1500)


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_point(utilization: float):
    sim = Simulator()
    topo = Topology(sim)
    rngs = RngStreams(53)
    router = topo.add_node(SirpentRouter(
        sim, "r1", config=RouterConfig(congestion_enabled=False),
    ))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, out_port, _ = topo.connect(router, dst, rate_bps=RATE)
    dst.bind(0, lambda d: None)
    mean_size = MIXTURE.mean()
    per_sender_pps = utilization * RATE / (mean_size * 8) / N_SENDERS
    for index in range(N_SENDERS):
        host = topo.add_node(SirpentHost(sim, f"s{index}"))
        _, host_port, _ = topo.connect(host, router, rate_bps=RATE)
        route = _Route(
            [HeaderSegment(port=out_port), HeaderSegment(port=0)], host_port
        )
        PoissonArrivals(
            sim, per_sender_pps,
            emit=lambda size, h=host, r=route: h.send(r, b"x", max(1, size - 8)),
            rng=rngs.stream(f"s{index}"),
            sizes=MIXTURE, stop_at=SIM_SECONDS,
        )
    sim.run(until=SIM_SECONDS)
    outport = router.output_ports[out_port]
    service = mean_size * 8 / RATE
    return {
        "measured": outport.wait_time.mean,
        "md1": md1_mean_wait(utilization, service),
        "mg1": mg1_mean_wait(utilization, service, MIXTURE.squared_cv()),
    }


def run_sweep():
    return {rho: run_point(rho) for rho in (0.3, 0.5, 0.7)}


def bench_a02_size_mixture_queueing(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        f"A2  Queueing with the [4] size mixture (cv^2="
        f"{MIXTURE.squared_cv():.2f}) vs the paper's M/D/1",
        ["rho", "wait measured (us)", "M/D/1 (us)", "M/G/1 mixture (us)"],
        [
            (rho, us(r["measured"]), us(r["md1"]), us(r["mg1"]))
            for rho, r in results.items()
        ],
    )
    note = (
        "\nThe paper's M/D/1 understates waits for realistic size mixes\n"
        "by ~2x; P-K with the mixture's cv^2 restores the fit.  The §6.1\n"
        "qualitative story (sub-packet waits at moderate load) survives."
    )
    publish("a02_size_mixture_queueing", table + note)

    for rho, r in results.items():
        # M/G/1 fits...
        assert_close(r["measured"], r["mg1"], rel=0.35,
                     what=f"M/G/1 at rho={rho}")
    # ...and M/D/1 systematically undershoots at higher load.
    assert results[0.7]["measured"] > results[0.7]["md1"] * 1.3
