"""E13 — §2/§4.3 truncation + selective retransmission vs IP
fragmentation's all-or-nothing reassembly.

Paper claims:

* Sirpent provides no fragmentation: an oversized packet is truncated
  and marked, and "the transport protocol can provide selective
  transmission and flow control on the logical packet fragments,
  avoiding the all-or-nothing behavior of IP in the reassembly of
  packets";
* the routing service returns the route's MTU, "so there is no need to
  do MTU discovery" — a correctly sized sender never truncates.

Setup: move 8 KB logical packets across a path whose middle link loses
packets at rate p.  (a) VMTP sized to the advertised MTU, selective
retransmission per member; (b) UDP-like over IP, 8 KB datagrams
fragmented at the router, whole-datagram retransmit on loss.  Sweep p
and compare delivery efficiency (useful bytes / transmitted bytes).
"""

from __future__ import annotations

from repro.baselines.ip.tcplike import UdpLikeTransport
from repro.scenarios import build_ip_line, build_sirpent_line
from repro.transport import RouteManager, TransportConfig

from benchmarks._common import format_table, publish

LOGICAL_BYTES = 8 * 1024
N_MESSAGES = 12
LOSS_SWEEP = (0.0, 0.05, 0.15)


def _lossy(channel, loss_rate, rng):
    """Make a channel drop whole packets at the given rate.

    Implemented as corruption with certain discard downstream would
    change semantics; instead we wrap transmit to swallow the packet.
    """
    original = channel.transmit

    def transmit(packet, size, header_bytes, **kwargs):
        if rng.random() < loss_rate:
            # The sender still occupies the wire; the bits just die.
            kwargs = dict(kwargs)
            on_done = kwargs.get("on_done")
            tx = original(packet, size, header_bytes, **kwargs)
            for event in (tx.header_event, tx.complete_event):
                if event is not None:
                    event.cancel()
            return tx
        return original(packet, size, header_bytes, **kwargs)

    channel.transmit = transmit


def run_sirpent(loss_rate):
    from repro.sim.rng import RngStreams

    scenario = build_sirpent_line(n_routers=2, mtu=1500)
    rng = RngStreams(41).stream(f"loss{loss_rate}")
    _lossy(scenario.topology.links["r1--r2"].a_to_b, loss_rate, rng)
    config = TransportConfig(base_timeout=8e-3, max_total_retries=30)
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    entity = server.create_entity(lambda m: (b"ack", 16), hint="server")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst"))

    completed = 0
    for _ in range(N_MESSAGES):
        results = []
        client.transact(manager, entity, b"bulk", LOGICAL_BYTES, results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        if results and results[0].ok:
            completed += 1
    sent_bytes = scenario.topology.links["src--r1"].a_to_b.bytes_sent.count
    useful = completed * LOGICAL_BYTES
    return {
        "completed": completed,
        "efficiency": useful / max(1, sent_bytes),
        "retx": client.stats.retransmissions.count,
        "truncated": server.stats.truncated_rejects.count,
    }


def run_ip(loss_rate):
    from repro.sim.rng import RngStreams

    scenario = build_ip_line(n_routers=2, mtu=1500)
    # The source link takes 8KB datagrams; the middle fragments them.
    for name in ("src--r1",):
        link = scenario.topology.links[name]
        link.a_to_b.mtu = LOGICAL_BYTES + 100
        link.b_to_a.mtu = LOGICAL_BYTES + 100
    scenario.converge()
    rng = RngStreams(43).stream(f"iploss{loss_rate}")
    _lossy(scenario.topology.links["r1--r2"].a_to_b, loss_rate, rng)
    client = UdpLikeTransport(
        scenario.sim, scenario.hosts["src"], base_timeout=30e-3,
        max_retries=20,
    )
    server = UdpLikeTransport(scenario.sim, scenario.hosts["dst"])
    server.serve(lambda p, s: (b"ack", 16))

    completed = 0
    for _ in range(N_MESSAGES):
        results = []
        client.transact("dst", b"bulk", LOGICAL_BYTES, results.append)
        scenario.sim.run(until=scenario.sim.now + 3.0)
        if results and results[0].ok:
            completed += 1
    sent_bytes = scenario.topology.links["src--r1"].a_to_b.bytes_sent.count
    useful = completed * LOGICAL_BYTES
    return {
        "completed": completed,
        "efficiency": useful / max(1, sent_bytes),
        "retx": client.retransmissions.count,
        "timeouts": scenario.hosts["dst"].reassembler.timed_out.count,
    }


def run_all():
    rows = []
    for loss in LOSS_SWEEP:
        rows.append((loss, run_sirpent(loss), run_ip(loss)))
    return rows


def bench_e13_truncation_vs_fragmentation(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        f"E13  {LOGICAL_BYTES // 1024}KB logical packets across a lossy "
        f"1500B-MTU hop ({N_MESSAGES} messages)",
        ["loss rate", "VMTP done", "VMTP efficiency", "VMTP member retx",
         "IP done", "IP efficiency", "IP whole-datagram retx",
         "IP reassembly timeouts"],
        [
            (loss, s["completed"], s["efficiency"], s["retx"],
             ip["completed"], ip["efficiency"], ip["retx"], ip["timeouts"])
            for loss, s, ip in rows
        ],
    )
    note = (
        "\nPaper: losing one fragment of an IP datagram wastes the whole\n"
        "datagram (reassembly is all-or-nothing); VMTP retransmits only\n"
        "the missing group members.  Both senders sized packets from the\n"
        "route's advertised MTU — zero truncations occurred."
    )
    publish("e13_truncation_vs_fragmentation", table + note)

    by_loss = {loss: (s, ip) for loss, s, ip in rows}
    # Clean path: both complete everything at near-unit efficiency.
    s0, ip0 = by_loss[0.0]
    assert s0["completed"] == ip0["completed"] == N_MESSAGES
    assert s0["truncated"] == 0  # MTU from the directory: no truncation
    # Under loss, selective retransmission wastes far less.
    for loss in (0.05, 0.15):
        s, ip = by_loss[loss]
        assert s["completed"] == N_MESSAGES
        assert s["efficiency"] > ip["efficiency"]
    # The all-or-nothing failure mode actually occurred for IP.
    assert by_loss[0.15][1]["timeouts"] > 0
