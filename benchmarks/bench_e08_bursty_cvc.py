"""E8 — §1 bursty/transactional traffic: Sirpent vs CVC vs IP.

Paper claims:

* "The CVC approach requires a circuit setup between endpoints before
  communication can take place, introducing a full roundtrip delay";
* "Either the circuit setup cost is incurred frequently or else
  circuits are held and not well utilized over long periods of time",
  with the held circuits costing switch state;
* "increases in transactional traffic … make the logical connections
  even shorter", so datagram/source-routing approaches win.

Setup: a client issues short transactions (512B request / 256B reply)
across 2 intermediate nodes.  Variants: VMTP over Sirpent cut-through,
CVC with a fresh circuit per transaction, CVC holding circuits, UDP-like
and TCP-like over the IP baseline.  Identical link parameters.
"""

from __future__ import annotations

from repro.baselines.cvc import CvcServer, CvcTransactionClient
from repro.baselines.ip.tcplike import TcpLikeTransport, UdpLikeTransport
from repro.scenarios import build_cvc_line, build_ip_line, build_sirpent_line
from repro.transport import RouteManager

from benchmarks._common import format_table, ms, publish

REQUEST = 512
REPLY = 256
N_TRANSACTIONS = 30
HOPS = 2


def _run_series(issue_next, sim, results):
    """Issue transactions back to back until N complete."""

    def step(result=None):
        if result is not None:
            results.append(result)
        if len(results) < N_TRANSACTIONS:
            issue_next(step)

    issue_next(step)
    sim.run(until=sim.now + 60.0)


def run_sirpent():
    scenario = build_sirpent_line(n_routers=HOPS)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"r", REPLY), hint="server")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst"))
    results = []
    _run_series(
        lambda cb: client.transact(manager, entity, b"q", REQUEST, cb),
        scenario.sim, results,
    )
    latencies = [r.rtt for r in results if r.ok]
    return {"latencies": latencies, "held_state": 0}


def run_cvc(hold: bool):
    scenario = build_cvc_line(n_switches=HOPS)
    CvcServer(scenario.hosts["dst"], lambda p, s: (b"r", REPLY))
    client = CvcTransactionClient(
        scenario.sim, scenario.hosts["src"], hold_circuits=hold,
    )
    results = []
    _run_series(
        lambda cb: client.transact("dst", b"q", REQUEST, cb),
        scenario.sim, results,
    )
    latencies = [r.total_time for r in results if r.ok]
    held = sum(s.held_circuits for s in scenario.switches.values())
    return {"latencies": latencies, "held_state": held}


def run_ip(transport_cls):
    scenario = build_ip_line(n_routers=HOPS)
    scenario.converge()
    client = transport_cls(scenario.sim, scenario.hosts["src"])
    server = transport_cls(scenario.sim, scenario.hosts["dst"])
    server.serve(lambda p, s: (b"r", REPLY))
    results = []
    _run_series(
        lambda cb: client.transact("dst", b"q", REQUEST, cb),
        scenario.sim, results,
    )
    latencies = [r.rtt for r in results if r.ok]
    return {"latencies": latencies, "held_state": 0}


def run_all():
    return {
        "VMTP / Sirpent": run_sirpent(),
        "CVC fresh circuit": run_cvc(hold=False),
        "CVC held circuit": run_cvc(hold=True),
        "UDP-like / IP": run_ip(UdpLikeTransport),
        "TCP-like / IP": run_ip(TcpLikeTransport),
    }


def bench_e08_bursty_cvc(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, data in results.items():
        latencies = data["latencies"]
        mean = sum(latencies) / len(latencies)
        first = latencies[0]
        steady = sum(latencies[5:]) / len(latencies[5:])
        rows.append((name, len(latencies), ms(first), ms(steady), ms(mean),
                     data["held_state"]))
    table = format_table(
        f"E8  Short transactions ({REQUEST}B/{REPLY}B, {HOPS} hops, "
        f"{N_TRANSACTIONS} back to back)",
        ["scheme", "completed", "first (ms)", "steady (ms)", "mean (ms)",
         "held switch circuits"],
        rows,
    )
    note = (
        "\nPaper: CVC pays a setup round trip per transaction or holds\n"
        "state; IP pays store-and-forward and (TCP) a handshake; VMTP\n"
        "over Sirpent pays neither."
    )
    publish("e08_bursty_cvc", table + note)

    def mean_of(name):
        latencies = results[name]["latencies"]
        return sum(latencies) / len(latencies)

    sirpent = mean_of("VMTP / Sirpent")
    # Sirpent beats every alternative on mean transaction latency.
    for name in results:
        if name != "VMTP / Sirpent":
            assert sirpent < mean_of(name), f"{name} beat Sirpent"
    # Fresh-circuit CVC is the worst of all (full setup RTT each time).
    cvc_fresh = mean_of("CVC fresh circuit")
    assert cvc_fresh >= max(
        mean_of(n) for n in results if n != "CVC fresh circuit"
    ) * 0.99
    # Holding circuits helps latency but leaves state in every switch.
    assert mean_of("CVC held circuit") < cvc_fresh
    assert results["CVC held circuit"]["held_state"] == HOPS
    assert results["CVC fresh circuit"]["held_state"] == 0
    # All schemes completed the workload.
    assert all(len(d["latencies"]) == N_TRANSACTIONS for d in results.values())
