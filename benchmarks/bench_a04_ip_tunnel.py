"""A4 — §2.3 compatibility: Sirpent over IP as one logical hop.

"A Sirpent packet can view the Internet as providing one logical hop
across its internetwork … all existing networks (and internetworks) can
be incorporated into the Sirpent approach."

Setup: two Sirpent edge networks joined by a genuine IP internetwork
(link-state routed, store-and-forward, 2 routers).  The source route
names *three* segments regardless of the IP cloud's depth; compare the
header cost and delay against hop-by-hop Sirpent over the same physical
path, sweeping the cloud's size.
"""

from __future__ import annotations

from repro.baselines.ip import IpAddressAllocator, IpHost, IpRouter
from repro.core.congestion import ControlPlane
from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.core.tunnel import attach_tunnel
from repro.net.topology import Topology
from repro.scenarios import build_sirpent_line
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment

from benchmarks._common import format_table, ms, publish

PAYLOAD = 800


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_tunnel(cloud_routers: int):
    sim = Simulator()
    topo = Topology(sim)
    plane = ControlPlane(sim, topo)
    allocator = IpAddressAllocator()
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    gw_a = topo.add_node(SirpentRouter(sim, "gwA", control_plane=plane))
    gw_b = topo.add_node(SirpentRouter(sim, "gwB", control_plane=plane))
    ip_a = topo.add_node(IpHost(sim, "ipA", allocator))
    ip_b = topo.add_node(IpHost(sim, "ipB", allocator))
    routers = [
        topo.add_node(IpRouter(sim, f"ipr{i + 1}", plane, allocator))
        for i in range(cloud_routers)
    ]
    _, src_port, _ = topo.connect(src, gw_a)
    _, gwb_out, _ = topo.connect(gw_b, dst)
    _, ipa_port, _ = topo.connect(ip_a, routers[0])
    for a, b in zip(routers, routers[1:]):
        topo.connect(a, b)
    _, _, ipb_port = topo.connect(routers[-1], ip_b)
    ip_a.set_gateway(ipa_port)
    ip_b.set_gateway(ipb_port)
    names = {r.name for r in routers}
    for router in routers:
        router.routing.discover_neighbors(topo, names)
        router.routing.start()
    sim.run(until=0.3)
    tunnel_a = attach_tunnel(gw_a, ip_a, peer_gateway="ipB")
    attach_tunnel(gw_b, ip_b, peer_gateway="ipA")

    got = []
    dst.bind(0, got.append)
    route = _Route([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)
    start = sim.now
    src.send(route, b"x", PAYLOAD)
    sim.run(until=start + 2.0)
    header = sum(s.wire_size() for s in route.segments)
    return {
        "delay": got[0].arrived_at - start,
        "segments": len(route.segments),
        "header_bytes": header,
        "sirpent_hops_seen": got[0].packet.hops_taken,
    }


def run_native(total_routers: int):
    scenario = build_sirpent_line(n_routers=total_routers)
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    route = scenario.routes("src", "dst")[0]
    start = scenario.sim.now
    scenario.hosts["src"].send(route, b"x", PAYLOAD)
    scenario.sim.run(until=start + 2.0)
    return {
        "delay": got[0].arrived_at - start,
        "segments": len(route.segments),
        "header_bytes": sum(s.wire_size() for s in route.segments),
        "sirpent_hops_seen": got[0].packet.hops_taken,
    }


def run_all():
    rows = []
    for cloud in (2, 4):
        tunneled = run_tunnel(cloud)
        native = run_native(cloud + 2)  # same physical router count
        rows.append((cloud, tunneled, native))
    return rows


def bench_a04_ip_tunnel(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A4  Sirpent across an IP cloud as ONE logical hop vs native "
        "hop-by-hop Sirpent",
        ["IP cloud routers", "scheme", "route segments", "header bytes",
         "delay (ms)", "Sirpent hops visible"],
        [
            row
            for cloud, tunneled, native in rows
            for row in (
                (cloud, "tunneled (logical hop)", tunneled["segments"],
                 tunneled["header_bytes"], ms(tunneled["delay"]),
                 tunneled["sirpent_hops_seen"]),
                (cloud, "native Sirpent", native["segments"],
                 native["header_bytes"], ms(native["delay"]),
                 native["sirpent_hops_seen"]),
            )
        ],
    )
    note = (
        "\nPaper §2.3: the source names one logical hop however deep the\n"
        "IP transit is — constant header, later route binding — at the\n"
        "price of the transit's store-and-forward delays.  'The IP\n"
        "approach can be viewed as an extreme in false optimization of\n"
        "the Sirpent approach.'"
    )
    publish("a04_ip_tunnel", table + note)

    for cloud, tunneled, native in rows:
        # The tunneled route's header does not grow with the cloud.
        assert tunneled["segments"] == 3
        assert tunneled["sirpent_hops_seen"] == 2
        # The native route names every router.
        assert native["segments"] == cloud + 2 + 1
        # Cut-through end to end beats store-and-forward transit.
        assert native["delay"] < tunneled["delay"]
    # Constant tunneled header vs growing native header.
    assert rows[0][1]["header_bytes"] == rows[1][1]["header_bytes"]
    assert rows[1][2]["header_bytes"] > rows[0][2]["header_bytes"]
