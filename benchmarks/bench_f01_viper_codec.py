"""F1 — Figure 1: the VIPER header segment, byte for byte.

The paper's only figure.  This bench (a) verifies the exact field
layout of Figure 1 against the codec, (b) renders the reference
segment the way the figure draws it, and (c) measures raw codec
throughput — relevant because §5 argues the format was designed for
cut-through hardware (fixed part first, variable lengths early).
"""

from __future__ import annotations

from repro.viper.wire import (
    FIXED_SEGMENT_BYTES,
    HeaderSegment,
    decode_segment,
    encode_segment,
)

from benchmarks._common import format_table, publish

REFERENCE = HeaderSegment(
    port=0x11, priority=0x6, vnt=False, dib=True, rpf=False,
    token=bytes(range(8)), portinfo=bytes(range(14)),
)


def codec_roundtrips(n: int = 2000) -> int:
    count = 0
    for _ in range(n):
        encoded = encode_segment(REFERENCE)
        decoded, _ = decode_segment(encoded)
        count += decoded.port
    return count


def bench_f01_viper_codec(benchmark):
    benchmark(codec_roundtrips)

    encoded = encode_segment(REFERENCE)
    rows = [
        ("PortInfoLength", "octet 0", encoded[0], len(REFERENCE.portinfo)),
        ("PortTokenLength", "octet 1", encoded[1], len(REFERENCE.token)),
        ("Port", "octet 2", encoded[2], REFERENCE.port),
        ("Flags|Priority", "octet 3", encoded[3], (0x4 << 4) | 0x6),
        ("PortToken", "octets 4..11",
         encoded[4:12].hex(), REFERENCE.token.hex()),
        ("PortInfo", "octets 12..25",
         encoded[12:26].hex(), REFERENCE.portinfo.hex()),
    ]
    table = format_table(
        "F1  VIPER header segment layout (Figure 1) — encoded vs specified",
        ["field", "position", "encoded", "expected"],
        rows,
    )
    note = (
        f"\nFixed part = {FIXED_SEGMENT_BYTES} bytes, leading — 'the\n"
        "fixed-length portion is first and provides the length\n"
        "information on the variable-length portion as far in advance as\n"
        "possible' (§5).  Minimum segment = 32 bits."
    )
    publish("f01_viper_codec", table + note)

    assert encoded[0] == 14
    assert encoded[1] == 8
    assert encoded[2] == 0x11
    assert encoded[3] == 0x46  # DIB flag (0x4) in high nibble, priority 6
    assert encoded[4:12] == REFERENCE.token
    assert encoded[12:26] == REFERENCE.portinfo
    assert HeaderSegment(port=1).wire_size() == 4  # 32-bit minimum
    decoded, consumed = decode_segment(encoded)
    assert decoded == REFERENCE and consumed == len(encoded)
