"""D01 — directory cluster scale: QPS by shard count, cache, failover.

ROADMAP item 1 asks whether the §3 directory can be made *horizontal*
without giving up its semantics.  This experiment loads the sharded,
replicated cluster with **100 000 names** and measures three things:

1. **Lookup QPS versus shard count (1 / 2 / 4, rf=2).**  Shards are
   independent serial servers, so aggregate capacity is the total
   lookups divided by the *slowest shard's* batch time — the honest
   model for horizontal scaling (a perfectly balanced ring approaches
   ``n``-fold; hash skew shows up directly as lost speed-up).
2. **Cold vs warm route-cache hit rate** at the shard-aware client
   (footnote 10: a cached name costs no directory round trip at all).
3. **Failover rebind-storm timing**: mid-storm the target shard's
   leader is killed; the membership monitor promotes the most-caught-up
   follower and the storm retries through it.  The run then *proves*
   zero acknowledged writes were lost by replaying the survivor's log
   into a fresh replica and comparing state — and proves exactly-once
   by checking no request id holds more than one log entry.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _entry in (_ROOT, os.path.join(_ROOT, "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.directory.cluster.client import ClusterClient
from repro.directory.cluster.cluster import DirectoryCluster
from repro.directory.cluster.protocol import CommandRequest
from repro.directory.cluster.replica import ShardReplica

from benchmarks._common import format_table, publish

#: The namespace every configuration serves (the acceptance floor).
TOTAL_NAMES = 100_000

#: Distinct region prefixes — the sharding keys the ring spreads.
REGIONS = 997

#: Lookups timed per configuration.
LOOKUPS = 40_000

#: Names the cache experiment touches (twice: cold pass, warm pass).
CACHED_NAMES = 2_000

#: Rebinds in the failover storm, and where mid-storm the leader dies.
STORM_WRITES = 2_000
KILL_AT = 1_000


def _name(n: int) -> str:
    return f"h{n}.region{n % REGIONS}.net"


def _load_cluster(shard_count: int) -> DirectoryCluster:
    cluster = DirectoryCluster(shard_count=shard_count, replication_factor=2)
    for n in range(TOTAL_NAMES):
        cluster.execute_raw(CommandRequest.make(
            "register_host", {"name": _name(n), "node": f"node-{n}"},
            f"seed-{n}",
        ))
    return cluster


def _lookup_scaling(cluster: DirectoryCluster) -> Dict[str, float]:
    """Aggregate QPS = total ops / slowest shard's serial batch time."""
    by_shard: Dict[str, List[CommandRequest]] = {}
    for n in range(LOOKUPS):
        name = _name(n % TOTAL_NAMES)
        request = CommandRequest.make(
            "lookup", {"name": name}, f"lk-{n}"
        )
        by_shard.setdefault(cluster.shard_for(name), []).append(request)
    batch_times = []
    for shard_id, requests in sorted(by_shard.items()):
        shard = cluster.shards[shard_id]
        started = time.perf_counter()
        for request in requests:
            shard.execute(request)
        batch_times.append(time.perf_counter() - started)
    slowest = max(batch_times)
    total = sum(batch_times)
    return {
        "qps": LOOKUPS / slowest,
        "mean_latency_us": total / LOOKUPS * 1e6,
        "slowest_batch_s": slowest,
    }


def _cache_rates(cluster: DirectoryCluster):
    client = ClusterClient(
        cluster.execute_raw, name="cachebench", cache_ttl_s=1e9,
        clock=time.perf_counter,
    )
    for n in range(CACHED_NAMES):
        client.lookup(_name(n))
    cold = client.cache_hit_rate
    client.cache_hits = client.cache_misses = 0
    started = time.perf_counter()
    for n in range(CACHED_NAMES):
        client.lookup(_name(n))
    warm_time = time.perf_counter() - started
    return cold, client.cache_hit_rate, warm_time / CACHED_NAMES * 1e6


def _failover_storm(cluster: DirectoryCluster):
    """Rebind storm with a mid-storm leader kill; returns the verdict."""
    target_region = 7  # every stormed name shares one shard
    storm_names = [
        f"s{n}.stormregion{target_region}.net" for n in range(STORM_WRITES)
    ]
    shard_id = cluster.shard_for(storm_names[0])
    for n, name in enumerate(storm_names):
        cluster.execute_raw(CommandRequest.make(
            "register_host", {"name": name, "node": f"node-s{n}"},
            f"storm-seed-{n}",
        ))

    failover_s = [0.0]

    def monitor(request_id: str, attempt: int) -> None:
        # The membership monitor: detect the dead leader, promote.
        started = time.perf_counter()
        if cluster.shards[shard_id].leader is None:
            cluster.fail_over(shard_id)
            failover_s[0] = time.perf_counter() - started

    client = ClusterClient(
        cluster.execute_raw, name="stormbench", on_retry=monitor,
    )
    acked: Dict[str, str] = {}
    started = time.perf_counter()
    for n, name in enumerate(storm_names):
        if n == KILL_AT:
            cluster.kill_shard_leader(shard_id)
        result = client.rebind(name, f"node-m{n}")
        acked[str(result["name"])] = f"node-m{n}"
    storm_s = time.perf_counter() - started

    # Zero acked-write loss, proved by log replay: a fresh replica
    # rebuilt from the authoritative log must hold every acked rebind.
    shard = cluster.shards[shard_id]
    replayer = ShardReplica(shard_id, f"{shard_id}/replay")
    replayer.rebuild_from(shard.authoritative_log().entries_from(1))
    lost = [
        name for name, node in acked.items()
        if replayer.store.names.get(name) != node
    ]
    doubled = {
        rid: n for rid, n in shard.request_id_counts().items() if n > 1
    }
    assert replayer.store.names == shard.leader.store.names
    return {
        "storm_s": storm_s,
        "failover_s": failover_s[0],
        "retries": client.retries,
        "acked": len(acked),
        "lost": len(lost),
        "doubled": len(doubled),
    }


def bench_d01_directory_scale(benchmark) -> None:
    scale_rows = []
    results = {}
    for shard_count in (1, 2, 4):
        cluster = _load_cluster(shard_count)
        stats = benchmark(_lookup_scaling, cluster)
        results[shard_count] = stats
        scale_rows.append((
            shard_count,
            cluster.total_names(),
            LOOKUPS,
            stats["qps"],
            stats["mean_latency_us"],
            stats["qps"] / results[1]["qps"],
        ))
        if shard_count == 4:
            flagship = cluster

    cold_rate, warm_rate, warm_us = _cache_rates(flagship)
    storm = _failover_storm(flagship)

    publish("d01_directory_scale", "\n\n".join([
        format_table(
            "D01a  lookup QPS vs shard count (rf=2, 100k names)",
            ["shards", "names", "lookups", "agg QPS",
             "mean us/op", "speed-up"],
            scale_rows,
        ),
        format_table(
            "D01b  route-cache hit rate (shard-aware client)",
            ["pass", "hit rate", "mean us/lookup"],
            [
                ("cold", cold_rate, "-"),
                ("warm", warm_rate, f"{warm_us:.2f}"),
            ],
        ),
        format_table(
            "D01c  failover rebind storm (leader killed mid-storm)",
            ["rebinds", "storm s", "failover s", "retries",
             "acked", "lost", "dup execs"],
            [(
                STORM_WRITES, storm["storm_s"], storm["failover_s"],
                storm["retries"], storm["acked"], storm["lost"],
                storm["doubled"],
            )],
        ),
    ]))

    # The shapes the experiment exists to pin down:
    assert flagship.total_names() >= TOTAL_NAMES  # 4x2 sustains 100k
    assert results[4]["qps"] > 2.0 * results[1]["qps"], (
        "4 shards must out-serve 1 shard by well over 2x"
    )
    assert results[2]["qps"] > 1.3 * results[1]["qps"]
    assert cold_rate == 0.0 and warm_rate > 0.95
    assert storm["acked"] == STORM_WRITES
    assert storm["lost"] == 0, "an acknowledged rebind vanished"
    assert storm["doubled"] == 0, "a request id executed twice"
    assert storm["retries"] >= 1  # the kill really interrupted the storm


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_d01_directory_scale(_InlineBenchmark())
