"""A7 — §2.1's blocked-packet handling alternatives.

"Deferral may be accomplished by storing the packet, looping it back to
a previous node (as done in Blazenet) or entering it into a local delay
line to store the packet for some period of time."

Setup: the E1 contention point (4 senders, one output port) at 60% and
90% utilization under the three policies: electronic output QUEUE,
Blazenet-style DELAY_LINE (photonic loop, fixed latency per revolution,
bounded revolutions), and bufferless DROP.  Measured: delivery ratio
and delay distribution — the trade the paper attributes to each
technology.
"""

from __future__ import annotations

from repro.core.blocked import BlockedPolicy
from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.viper.wire import HeaderSegment
from repro.workloads.arrivals import PoissonArrivals

from benchmarks._common import format_table, publish, us

PACKET = 1000
RATE = 10e6
N_SENDERS = 4
SIM_SECONDS = 2.0


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_point(policy: BlockedPolicy, utilization: float):
    sim = Simulator()
    topo = Topology(sim)
    rngs = RngStreams(61)
    config = RouterConfig(
        blocked_policy=policy,
        delay_line_s=PACKET * 8 / RATE / 2,  # half a packet per revolution
        max_delay_loops=8,
        congestion_enabled=False,
    )
    router = topo.add_node(SirpentRouter(sim, "r1", config=config))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, out_port, _ = topo.connect(router, dst, rate_bps=RATE)
    dst.bind(0, lambda d: None)
    sent = {"n": 0}
    per_sender = utilization * RATE / (PACKET * 8) / N_SENDERS
    for index in range(N_SENDERS):
        host = topo.add_node(SirpentHost(sim, f"s{index}"))
        _, host_port, _ = topo.connect(host, router, rate_bps=RATE)
        route = _Route(
            [HeaderSegment(port=out_port), HeaderSegment(port=0)], host_port
        )

        def emit(size, h=host, r=route):
            sent["n"] += 1
            h.send(r, b"x", size - 8)

        PoissonArrivals(sim, per_sender, emit, rngs.stream(f"s{index}"),
                        fixed_size=PACKET, stop_at=SIM_SECONDS)
    sim.run(until=SIM_SECONDS + 0.2)
    return {
        "delivered": dst.received.count / max(1, sent["n"]),
        "p95_delay": dst.delivery_delay.quantile(0.95),
        "drops": router.output_ports[out_port].drops.count,
    }


def run_all():
    rows = []
    for utilization in (0.6, 0.9):
        for policy in BlockedPolicy:
            point = run_point(policy, utilization)
            point.update(policy=policy.value, rho=utilization)
            rows.append(point)
    return rows


def bench_a07_blocked_policies(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "A7  Blocked-packet policies at a contended port (§2.1)",
        ["rho", "policy", "delivery ratio", "p95 delay (us)", "drops"],
        [
            (r["rho"], r["policy"], f"{r['delivered']:.3f}",
             us(r["p95_delay"]), r["drops"])
            for r in rows
        ],
    )
    note = (
        "\nElectronic queueing delivers everything at the cost of delay;\n"
        "the Blazenet delay line bounds storage (half-packet revolutions,\n"
        "8 max) trading loss under sustained contention; a bufferless\n"
        "fabric drops on any collision — the §2.1 technology menu."
    )
    publish("a07_blocked_policies", table + note)

    def pick(rho, policy):
        return next(r for r in rows if r["rho"] == rho
                    and r["policy"] == policy)

    for rho in (0.6, 0.9):
        queue = pick(rho, "queue")
        delay_line = pick(rho, "delay_line")
        drop = pick(rho, "drop")
        assert queue["delivered"] > 0.999
        assert queue["p95_delay"] >= delay_line["p95_delay"] * 0.5
        assert delay_line["delivered"] >= drop["delivered"]
        assert drop["drops"] > 0
    # Sustained contention is where the delay line starts losing.
    assert pick(0.9, "delay_line")["delivered"] < 1.0
    assert pick(0.6, "delay_line")["delivered"] > pick(0.9, "delay_line")["delivered"]
