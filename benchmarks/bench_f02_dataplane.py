"""F2 — the dataplane fast paths: flow cache and zero-copy hop move.

Three claims about the refactored per-hop machinery:

* **Flow cache (§2.2)** — "routers cache tokens and flow information as
  soft state": a warm flow-cache decision must be at least 2x faster
  than the cold first-packet decision (HMAC token verification +
  resolution + install).
* **Zero-copy hop move** — the live router's strip/reverse/append on
  raw bytes (arithmetic strip boundary + one memoryview copy of the
  untouched middle) must beat the structural decode -> advance ->
  re-encode path it is tested byte-exact against.
* **Allocation discipline (PR 8)** — the in-place hop move on a
  buffer-ring slot (:func:`repro.live.frames.hop_move_into`) must
  allocate an order of magnitude fewer bytes per packet than the
  structural path: tracemalloc's peak-growth around a single op is the
  counter, because transient per-packet garbage is exactly what peaks.

Speedups are shape checks on ratios, not absolute numbers: wall-clock
noise moves the microseconds, not who wins.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.dataplane import (
    Action,
    FlowCache,
    ForwardingPipeline,
    HopInput,
    MappingPortMap,
    PortProfile,
)
from repro.live.frames import (
    decode_preamble,
    encode_live_frame,
    hop_move_into,
    return_tail_of,
    strip_and_append,
    strip_and_append_slow,
)
from repro.tokens.cache import TokenCache
from repro.tokens.capability import TokenMint
from repro.viper.packet import SirpentPacket
from repro.viper.ring import BufferRing
from repro.viper.wire import HeaderSegment, PacketView, segment_span

from benchmarks._common import format_table, publish

DECISIONS = 4000
STRIPS = 4000


def _per_op_us(fn, n: int) -> float:
    fn()  # warm the code path (bytecode caches, dict sizing)
    started = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - started) / n * 1e6


def _alloc_per_op(fn, repeats: int = 9) -> int:
    """Median tracemalloc peak growth (bytes) across single invocations.

    Peak-minus-before catches transient garbage that a before/after
    snapshot diff would miss (per-packet objects are freed before the
    op returns — that churn is precisely what the zero-allocation
    fastpath removes).
    """
    samples = []
    tracemalloc.start()
    try:
        fn()  # warm caches so one-time allocations don't pollute sample 1
        for _ in range(repeats):
            before, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            fn()
            _, peak = tracemalloc.get_traced_memory()
            samples.append(max(0, peak - before))
    finally:
        tracemalloc.stop()
    samples.sort()
    return samples[len(samples) // 2]


def _build_pipeline():
    mint = TokenMint(b"bench:f02", issuer="r1")
    token_cache = TokenCache(mint)
    pipeline = ForwardingPipeline(
        "r1",
        token_cache=token_cache,
        ports=MappingPortMap({
            1: PortProfile(mtu=1500), 2: PortProfile(mtu=1500),
        }),
        flow_cache=FlowCache(capacity=1024, ttl_ms=1 << 40),
    )
    token = mint.mint(port=1, account=9, reverse_ok=True)
    hop = HopInput(
        segment=HeaderSegment(port=1, token=token),
        seg_count=3, wire_size=600, in_port=7,
    )
    return pipeline, token_cache, hop


def _build_datagram() -> bytes:
    packet = SirpentPacket(
        segments=[
            HeaderSegment(port=p, token=b"T" * 32) for p in (1, 2, 3)
        ] + [HeaderSegment(port=0)],
        payload_size=512,
        payload=b"x" * 512,
    )
    return encode_live_frame(packet, b"x" * 512)


def bench_f02_dataplane(benchmark):
    pipeline, token_cache, hop = _build_pipeline()

    # Sanity: the flow actually forwards, cold and warm.
    assert pipeline.decide(hop).action is Action.FORWARD
    warm_check = pipeline.decide(hop)
    assert warm_check.action is Action.FORWARD and warm_check.flow_cache_hit

    def cold_decision():
        # A flush drops both caches (soft state dies together), so every
        # decision pays the first-packet cost: HMAC verify + resolution
        # + flow install.
        token_cache.flush()
        pipeline.decide(hop)

    def warm_decision():
        pipeline.decide(hop)

    cold_us = _per_op_us(cold_decision, DECISIONS)
    warm_us = benchmark(_per_op_us, warm_decision, DECISIONS)
    decision_speedup = cold_us / warm_us

    datagram = _build_datagram()
    return_segment = HeaderSegment(port=7, token=b"R" * 32)
    slow_us = _per_op_us(
        lambda: strip_and_append_slow(datagram, return_segment), STRIPS
    )
    fast_us = _per_op_us(
        lambda: strip_and_append(datagram, return_segment), STRIPS
    )
    strip_speedup = slow_us / fast_us
    assert strip_and_append(datagram, return_segment) == \
        strip_and_append_slow(datagram, return_segment)

    # In-place hop move on a buffer-ring slot (the PR 8 fastpath).  The
    # move consumes the slot, so each op first restores the overwritten
    # head region (a ~50-byte copy — charged against the fast path).
    header_len = decode_preamble(datagram).header_len
    first_end = segment_span(datagram, header_len)
    tail = return_tail_of(return_segment)
    preamble = decode_preamble(datagram)
    ring = BufferRing(slots=1)
    slot = ring.acquire()
    slot.buffer[: len(datagram)] = datagram
    view = PacketView.of_slot(slot, len(datagram))

    def inplace_move():
        view.start = 0
        view.end = len(datagram)
        slot.buffer[:first_end] = datagram[:first_end]
        hop_move_into(view, tail, preamble, next_rel=first_end)

    inplace_us = _per_op_us(inplace_move, STRIPS)
    inplace_speedup = slow_us / inplace_us
    inplace_move()
    assert view.tobytes() == strip_and_append(datagram, return_segment)

    # Allocation churn per hop move (tracemalloc peak growth).
    slow_alloc = _alloc_per_op(
        lambda: strip_and_append_slow(datagram, return_segment)
    )
    fast_alloc = _alloc_per_op(
        lambda: strip_and_append(datagram, return_segment)
    )
    inplace_alloc = _alloc_per_op(inplace_move)

    hit_rate = pipeline.flow_cache.stats.hit_rate()
    rows = [
        ("per-hop decision, cold (flush each)", f"{cold_us:.2f}", "1.0x", ""),
        ("per-hop decision, warm flow cache", f"{warm_us:.2f}",
         f"{decision_speedup:.1f}x", ""),
        ("live hop move, structural codec", f"{slow_us:.2f}", "1.0x",
         slow_alloc),
        ("live hop move, zero-copy bytes", f"{fast_us:.2f}",
         f"{strip_speedup:.1f}x", fast_alloc),
        ("live hop move, in-place ring slot", f"{inplace_us:.2f}",
         f"{inplace_speedup:.1f}x", inplace_alloc),
    ]
    table = format_table(
        "F2  dataplane fast paths — flow cache and zero-copy hop move",
        ["path", "us/op", "speedup", "alloc B/op"],
        rows,
    )
    note = (
        f"\nFlow-cache hit rate over the run: {hit_rate:.3f}.  Warm\n"
        "decisions skip HMAC verification, logical resolution and\n"
        "portInfo decoding (§2.2 'cached version of the token ... in\n"
        "real time'); the zero-copy move finds the strip boundary\n"
        "arithmetically and copies the untouched middle bytes exactly\n"
        "once; the in-place move rewrites the packet inside its ring\n"
        "slot and appends the memoized return tail — no output frame\n"
        "is ever constructed (alloc B/op = tracemalloc peak growth)."
    )
    publish("f02_dataplane", table + note, data={
        "title": "F2 dataplane fast paths",
        "metrics": {
            "warm_decision_us": round(warm_us, 3),
            "decision_speedup": round(decision_speedup, 2),
            "strip_fast_us": round(fast_us, 3),
            "strip_inplace_us": round(inplace_us, 3),
            "strip_speedup": round(strip_speedup, 2),
            "alloc_bytes_structural": slow_alloc,
            "alloc_bytes_zero_copy": fast_alloc,
            "alloc_bytes_inplace": inplace_alloc,
        },
        "higher_is_better": ["decision_speedup", "strip_speedup"],
        "lower_is_better": [
            "warm_decision_us", "strip_fast_us", "strip_inplace_us",
            "alloc_bytes_structural", "alloc_bytes_zero_copy",
            "alloc_bytes_inplace",
        ],
    })

    assert decision_speedup >= 2.0, (
        f"warm flow-cache decision only {decision_speedup:.2f}x cold"
    )
    assert strip_speedup >= 2.0, (
        f"zero-copy hop move only {strip_speedup:.2f}x structural"
    )
    assert inplace_speedup >= 2.0, (
        f"in-place hop move only {inplace_speedup:.2f}x structural"
    )
    # The point of PR 8: per-packet allocation collapses on the
    # in-place path (the structural path builds a whole object layer).
    assert inplace_alloc * 4 <= slow_alloc, (
        f"in-place move allocates {inplace_alloc}B/op vs structural "
        f"{slow_alloc}B/op — expected at least a 4x reduction"
    )


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_f02_dataplane(_InlineBenchmark())
