"""F2 — the dataplane fast paths: flow cache and zero-copy hop move.

Two wall-clock claims about the refactored per-hop machinery:

* **Flow cache (§2.2)** — "routers cache tokens and flow information as
  soft state": a warm flow-cache decision must be at least 2x faster
  than the cold first-packet decision (HMAC token verification +
  resolution + install).
* **Zero-copy hop move** — the live router's strip/reverse/append on
  raw bytes (arithmetic strip boundary + one memoryview copy of the
  untouched middle) must beat the structural decode -> advance ->
  re-encode path it is tested byte-exact against.

Both are shape checks on ratios, not absolute numbers: wall-clock
noise moves the microseconds, not who wins.
"""

from __future__ import annotations

import time

from repro.dataplane import (
    Action,
    FlowCache,
    ForwardingPipeline,
    HopInput,
    MappingPortMap,
    PortProfile,
)
from repro.live.frames import (
    encode_live_frame,
    strip_and_append,
    strip_and_append_slow,
)
from repro.tokens.cache import TokenCache
from repro.tokens.capability import TokenMint
from repro.viper.packet import SirpentPacket
from repro.viper.wire import HeaderSegment

from benchmarks._common import format_table, publish

DECISIONS = 4000
STRIPS = 4000


def _per_op_us(fn, n: int) -> float:
    fn()  # warm the code path (bytecode caches, dict sizing)
    started = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - started) / n * 1e6


def _build_pipeline():
    mint = TokenMint(b"bench:f02", issuer="r1")
    token_cache = TokenCache(mint)
    pipeline = ForwardingPipeline(
        "r1",
        token_cache=token_cache,
        ports=MappingPortMap({
            1: PortProfile(mtu=1500), 2: PortProfile(mtu=1500),
        }),
        flow_cache=FlowCache(capacity=1024, ttl_ms=1 << 40),
    )
    token = mint.mint(port=1, account=9, reverse_ok=True)
    hop = HopInput(
        segment=HeaderSegment(port=1, token=token),
        seg_count=3, wire_size=600, in_port=7,
    )
    return pipeline, token_cache, hop


def _build_datagram() -> bytes:
    packet = SirpentPacket(
        segments=[
            HeaderSegment(port=p, token=b"T" * 32) for p in (1, 2, 3)
        ] + [HeaderSegment(port=0)],
        payload_size=512,
        payload=b"x" * 512,
    )
    return encode_live_frame(packet, b"x" * 512)


def bench_f02_dataplane(benchmark):
    pipeline, token_cache, hop = _build_pipeline()

    # Sanity: the flow actually forwards, cold and warm.
    assert pipeline.decide(hop).action is Action.FORWARD
    warm_check = pipeline.decide(hop)
    assert warm_check.action is Action.FORWARD and warm_check.flow_cache_hit

    def cold_decision():
        # A flush drops both caches (soft state dies together), so every
        # decision pays the first-packet cost: HMAC verify + resolution
        # + flow install.
        token_cache.flush()
        pipeline.decide(hop)

    def warm_decision():
        pipeline.decide(hop)

    cold_us = _per_op_us(cold_decision, DECISIONS)
    warm_us = benchmark(_per_op_us, warm_decision, DECISIONS)
    decision_speedup = cold_us / warm_us

    datagram = _build_datagram()
    return_segment = HeaderSegment(port=7, token=b"R" * 32)
    slow_us = _per_op_us(
        lambda: strip_and_append_slow(datagram, return_segment), STRIPS
    )
    fast_us = _per_op_us(
        lambda: strip_and_append(datagram, return_segment), STRIPS
    )
    strip_speedup = slow_us / fast_us
    assert strip_and_append(datagram, return_segment) == \
        strip_and_append_slow(datagram, return_segment)

    hit_rate = pipeline.flow_cache.stats.hit_rate()
    rows = [
        ("per-hop decision, cold (flush each)", f"{cold_us:.2f}", "1.0x"),
        ("per-hop decision, warm flow cache", f"{warm_us:.2f}",
         f"{decision_speedup:.1f}x"),
        ("live hop move, structural codec", f"{slow_us:.2f}", "1.0x"),
        ("live hop move, zero-copy bytes", f"{fast_us:.2f}",
         f"{strip_speedup:.1f}x"),
    ]
    table = format_table(
        "F2  dataplane fast paths — flow cache and zero-copy hop move",
        ["path", "us/op", "speedup"],
        rows,
    )
    note = (
        f"\nFlow-cache hit rate over the run: {hit_rate:.3f}.  Warm\n"
        "decisions skip HMAC verification, logical resolution and\n"
        "portInfo decoding (§2.2 'cached version of the token ... in\n"
        "real time'); the zero-copy move finds the strip boundary\n"
        "arithmetically and copies the untouched middle bytes exactly\n"
        "once, byte-exact against the structural path."
    )
    publish("f02_dataplane", table + note)

    assert decision_speedup >= 2.0, (
        f"warm flow-cache decision only {decision_speedup:.2f}x cold"
    )
    assert strip_speedup >= 2.0, (
        f"zero-copy hop move only {strip_speedup:.2f}x structural"
    )


if __name__ == "__main__":
    from benchmarks.run_all import _InlineBenchmark

    bench_f02_dataplane(_InlineBenchmark())
