"""A3 — the paper's §8 future-work experiment: timestamp playout.

"We are interested in experimenting with real-time traffic on Sirpent
internetworks in which 'jitter' is handled by selectively delaying data
delivery to recreate the original packet transmission spacing, possibly
using the VMTP timestamp for this purpose."

Setup: a CBR stream (2 ms spacing) crosses a trunk shared with bulk
traffic at normal priority — so it *accumulates* jitter (E14's middle
rows).  The receiver runs a :class:`PlayoutBuffer` keyed on the VMTP
creation timestamps.  Measured: network jitter in, residual jitter out,
as a function of the playout delay budget.
"""

from __future__ import annotations

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_line
from repro.transport import RouteManager
from repro.transport.playout import PlayoutBuffer
from repro.transport.timestamps import HostClock, encode_timestamp_ms
from repro.workloads.apps import FileTransferApp, JitterMeter

from benchmarks._common import format_table, ms, publish

FRAME_INTERVAL = 2e-3
FRAME_BYTES = 500
DURATION = 1.0


def run_point(playout_delay: float):
    scenario = build_sirpent_line(
        n_routers=2, extra_host_pairs=1,
        router_config=RouterConfig(congestion_enabled=False),
    )
    sim = scenario.sim
    clock = HostClock(sim)
    route = scenario.routes("src", "dst", dest_socket=0)[0]

    network_jitter = JitterMeter(expected_interval=FRAME_INTERVAL)
    playout = PlayoutBuffer(sim, lambda item: None,
                            playout_delay=playout_delay, drop_late=True)

    def on_frame(delivered) -> None:
        network_jitter.on_delivery(delivered)
        _tag, stamp = delivered.payload
        playout.submit(delivered, stamp)

    scenario.hosts["dst"].bind(0, on_frame)

    frames = {"sent": 0}

    def send_frame() -> None:
        if sim.now >= DURATION:
            return
        frames["sent"] += 1
        payload = ("frame", encode_timestamp_ms(clock.now_ms()))
        scenario.hosts["src"].send(route, payload, FRAME_BYTES, priority=0)
        sim.after(FRAME_INTERVAL, send_frame)

    sim.after(0.0, send_frame)

    # Competing bulk at the same (normal) priority: real jitter source.
    bulk_client = scenario.transport("src2")
    bulk_server = scenario.transport("dst2")
    entity = bulk_server.create_entity(lambda m: (b"", 1), hint="sink")
    manager = RouteManager(sim, scenario.vmtp_routes("src2", "dst2"))
    FileTransferApp(sim, bulk_client, manager, entity,
                    total_bytes=2_000_000, priority=0)

    sim.run(until=DURATION + 0.5)
    return {
        "sent": frames["sent"],
        "received": network_jitter.received.count,
        "network_jitter_p95": network_jitter.jitter.quantile(0.95),
        "residual_p95": playout.stats.residual_jitter.quantile(0.95),
        "played": playout.stats.delivered.count,
        "dropped_late": playout.stats.dropped_late.count,
        "mean_buffering": playout.stats.buffering_delay.mean,
    }


def run_sweep():
    return {budget: run_point(budget) for budget in (1e-3, 5e-3, 20e-3)}


def bench_a03_playout_jitter(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        "A3  VMTP-timestamp playout of a 2ms CBR stream under cross "
        "traffic (§8)",
        ["playout budget (ms)", "frames", "net jitter p95 (ms)",
         "residual jitter p95 (ms)", "late-dropped", "mean buffering (ms)"],
        [
            (ms(budget), r["played"], ms(r["network_jitter_p95"]),
             ms(r["residual_p95"]), r["dropped_late"],
             ms(r["mean_buffering"]))
            for budget, r in results.items()
        ],
    )
    note = (
        "\nWith a budget exceeding the network's delay variation, the\n"
        "original transmission spacing is recreated exactly (residual\n"
        "jitter ~0); an undersized budget trades late drops instead —\n"
        "the delay/loss dial the paper's future-work note anticipates."
    )
    publish("a03_playout_jitter", table + note)

    generous = results[20e-3]
    tight = results[1e-3]
    # Jitter genuinely existed on the wire...
    assert generous["network_jitter_p95"] > 0.5e-3
    # ...and a sufficient budget removes essentially all of it.
    assert generous["residual_p95"] < 0.05e-3
    assert generous["dropped_late"] == 0
    # A too-small budget must pay in late drops instead.
    assert tight["dropped_late"] > 0
    # Buffering cost is bounded by the budget.
    assert generous["mean_buffering"] <= 20e-3 + 1e-9
