"""E7 — §2.2 logical links over a replicated trunk.

Paper claim: "a very high speed physical link, such as a 10 gigabit
line, might be statically divided into 10 1-gigabit channels with all
10 links being treated as one logical link.  A packet arriving for this
logical link would be routed to whichever of the channels was free" —
late binding that static source routes cannot match.

Setup (scaled to the simulator's sweet spot): 4 x 10 Mb/s channels
between two routers carrying a Poisson aggregate at 0.8 x the trunk's
total capacity.  Compare: (a) static assignment — each flow pinned to
one channel, the unlucky ones overloaded; (b) least-loaded logical-port
selection; (c) flow-hash selection (ordered per flow).
"""

from __future__ import annotations

from repro.core.host import SirpentHost
from repro.core.logical import SelectionPolicy
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.viper.portinfo import LogicalInfo
from repro.viper.wire import HeaderSegment
from repro.workloads.arrivals import PoissonArrivals

from benchmarks._common import format_table, publish

N_CHANNELS = 4
CHANNEL_BPS = 10e6
PACKET = 1000
SIM_SECONDS = 1.5
#: Offered load as a fraction of total trunk capacity; flows are
#: *unequal* (heavy-tailed) so static pinning overloads some channels.
TOTAL_LOAD = 0.8
FLOW_WEIGHTS = [8, 4, 2, 1, 1, 1, 1, 1]
LOGICAL_PORT = 100


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def run_policy(mode: str, seed: int = 7):
    sim = Simulator()
    topo = Topology(sim)
    rngs = RngStreams(seed)
    ra = topo.add_node(SirpentRouter(sim, "rA"))
    rb = topo.add_node(SirpentRouter(sim, "rB"))
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    _, src_port, _ = topo.connect(src, ra, rate_bps=100e6)
    member_ports, links = [], []
    for index in range(N_CHANNELS):
        link, pa, _ = topo.connect(ra, rb, rate_bps=CHANNEL_BPS,
                                   name=f"trunk{index}")
        member_ports.append(pa)
        links.append(link)
    _, rb_out, _ = topo.connect(rb, dst, rate_bps=100e6)
    dst.bind(0, lambda d: None)

    policy = (SelectionPolicy.FLOW_HASH if mode in ("static", "flow_hash")
              else SelectionPolicy.LEAST_LOADED)
    ra.logical.add_trunk(LOGICAL_PORT, member_ports, policy=policy)

    total_pps = TOTAL_LOAD * N_CHANNELS * CHANNEL_BPS / (PACKET * 8)
    weight_sum = sum(FLOW_WEIGHTS)
    for flow, weight in enumerate(FLOW_WEIGHTS):
        if mode == "static":
            hint = 0 if flow < 3 else flow  # heavy flows collide on ch 0
        else:
            hint = flow
        info = LogicalInfo(label=1, flow_hint=hint).to_bytes()
        route = _Route([
            HeaderSegment(port=LOGICAL_PORT, portinfo=info),
            HeaderSegment(port=rb_out),
            HeaderSegment(port=0),
        ], src_port)
        PoissonArrivals(
            sim, total_pps * weight / weight_sum,
            emit=lambda size, r=route: src.send(r, b"x", size - 30),
            rng=rngs.stream(f"flow{flow}"),
            fixed_size=PACKET, stop_at=SIM_SECONDS,
        )
    sim.run(until=SIM_SECONDS + 0.2)
    per_channel = [l.a_to_b.utilization.utilization(sim.now) for l in links]
    drops = sum(ra.output_ports[p].drops.count for p in member_ports)
    waits = [ra.output_ports[p].wait_time for p in member_ports]
    mean_wait = (
        sum(w.mean * w.count for w in waits) / max(1, sum(w.count for w in waits))
    )
    return {
        "mode": mode,
        "delivered": dst.received.count,
        "drops": drops,
        "mean_wait_ms": mean_wait * 1e3,
        "util_spread": max(per_channel) - min(per_channel),
        "per_channel": per_channel,
    }


def run_all():
    return [run_policy(mode) for mode in ("static", "flow_hash", "least_loaded")]


def bench_e07_logical_links(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        f"E7  Replicated trunk ({N_CHANNELS} x {CHANNEL_BPS / 1e6:.0f} Mb/s) "
        f"at {TOTAL_LOAD:.0%} aggregate load, skewed flows",
        ["assignment", "delivered", "drops", "mean queue wait (ms)",
         "util spread", "per-channel util"],
        [
            (r["mode"], r["delivered"], r["drops"],
             r["mean_wait_ms"], r["util_spread"],
             "/".join(f"{u:.2f}" for u in r["per_channel"]))
            for r in rows
        ],
    )
    note = (
        "\nPaper: late binding at the router routes each packet 'to\n"
        "whichever of the channels was free', balancing load that static\n"
        "per-flow assignment cannot."
    )
    publish("e07_logical_links", table + note)

    by_mode = {r["mode"]: r for r in rows}
    static, balanced = by_mode["static"], by_mode["least_loaded"]
    # Late binding drains queues the static assignment builds.
    assert balanced["mean_wait_ms"] < static["mean_wait_ms"] * 0.5
    assert balanced["util_spread"] < static["util_spread"]
    assert balanced["drops"] <= static["drops"]
    assert balanced["delivered"] >= static["delivered"]
    # Flow-hash sits between: order-preserving, partially balanced.
    assert by_mode["flow_hash"]["mean_wait_ms"] <= static["mean_wait_ms"]
