"""A5 — ablation: host overhead with packet groups and the NAB (§4.3).

"it appears that Sirpent may impose significant host overhead in
sending smaller packets than would be feasible with IP.  However, the
transport layer can provide a unit of transmission that decouples the
host unit of transmission from that of the network packet size …
[with] a network adaptor like the NAB, the host can initiate the
transfer of a packet group and let the NAB handle the per-packet
transmission."

This ablation evaluates the cost model across message sizes: the host
CPU per message and the resulting CPU-bound message rate, with and
without an intelligent adaptor, plus the trailer-stripping effect on
the receive side.
"""

from __future__ import annotations

from repro.analysis.hostcost import HostCostModel

from benchmarks._common import format_table, publish, us

MODEL = HostCostModel(per_packet=100e-6, per_group=150e-6,
                      copy_per_byte=10e-9)
PACKET_PAYLOAD = 1024
TRAILER = 40  # ~2 reversed Ethernet-hop segments + framing


def run_sweep():
    rows = []
    for message in (512, 1024, 4 * 1024, 16 * 1024, 32 * 1024):
        rows.append({
            "message": message,
            "packets": MODEL.packets_for(message, PACKET_PAYLOAD),
            "send_host": MODEL.send_cost(message, PACKET_PAYLOAD, nab=False),
            "send_nab": MODEL.send_cost(message, PACKET_PAYLOAD, nab=True),
            "recv_host": MODEL.receive_cost(message, PACKET_PAYLOAD, TRAILER,
                                            nab=False),
            "recv_nab": MODEL.receive_cost(message, PACKET_PAYLOAD, TRAILER,
                                           nab=True),
            "speedup": MODEL.nab_speedup(message, PACKET_PAYLOAD),
        })
    return rows


def bench_a05_nab_host_overhead(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = format_table(
        "A5  Host CPU per logical message: per-packet software vs "
        "NAB packet groups (§4.3)",
        ["message B", "packets", "send host (us)", "send NAB (us)",
         "recv host (us)", "recv NAB (us)", "NAB send speedup"],
        [
            (r["message"], r["packets"], us(r["send_host"]),
             us(r["send_nab"]), us(r["recv_host"]), us(r["recv_nab"]),
             f"{r['speedup']:.1f}x")
            for r in rows
        ],
    )
    note = (
        "\nPaper: the packet group decouples host work from network\n"
        "packet size; for single packets the NAB's setup is not worth it\n"
        "('this optimization seems unwarranted in general'), for groups\n"
        "it is an order of magnitude.  The NAB also strips the trailer\n"
        "on the board, keeping it out of the user data area."
    )
    publish("a05_nab_host_overhead", table + note)

    by_size = {r["message"]: r for r in rows}
    # Small messages: NAB not worth it; big groups: large win.
    assert by_size[512]["send_nab"] > by_size[512]["send_host"]
    assert by_size[16 * 1024]["speedup"] > 5.0
    # Receive side: NAB always at least as cheap for multi-packet
    # groups, and the trailer copy is part of the non-NAB cost.
    big = by_size[16 * 1024]
    assert big["recv_nab"] < big["recv_host"]
