"""E10 — transaction round trips across the campus internetwork.

Pulls together §3, §4 and §5: a client resolves a hierarchical name,
receives a route *with attributes*, predicts its RTT before sending
("a client can determine (up to variations in queuing delay) the
roundtrip time"), then measures it with VMTP over VIPER — against the
TCP-like and UDP-like IP twins on an equivalent path.
"""

from __future__ import annotations

from repro.baselines.ip.tcplike import TcpLikeTransport, UdpLikeTransport
from repro.directory import RouteQuery
from repro.scenarios import build_ip_line, build_sirpent_campus
from repro.transport import RouteManager, TransportConfig

from benchmarks._common import assert_close, format_table, ms, publish

REQUEST = 1024
REPLY = 512
WAN_PROP = 5e-3


def run_sirpent():
    scenario = build_sirpent_campus(wan_propagation=WAN_PROP)
    client = scenario.transport("venus")
    server = scenario.transport("milo")
    entity = server.create_entity(lambda m: (b"r", REPLY), hint="server")
    routes = scenario.directory.query("venus", RouteQuery(
        "milo.lcs.mit.edu", dest_socket=TransportConfig().socket,
    ))
    route = routes[0]
    lookup = scenario.directory.query_latency("venus", "milo.lcs.mit.edu")
    predicted = route.expected_one_way(REQUEST + 72) + \
        route.expected_one_way(REPLY + 72)
    manager = RouteManager(scenario.sim, routes)
    results = []
    for _ in range(5):
        client.transact(manager, entity, b"q", REQUEST, results.append)
        scenario.sim.run(until=scenario.sim.now + 0.5)
    rtts = [r.rtt for r in results if r.ok]
    return {
        "rtts": rtts,
        "predicted": predicted,
        "lookup": lookup,
        "cached_lookup": scenario.directory.query_latency(
            "venus", "milo.lcs.mit.edu"
        ),
    }


def run_ip(transport_cls):
    # Equivalent path: 2 routers, WAN propagation on the middle link.
    scenario = build_ip_line(n_routers=2, propagation_delay=5e-6)
    link = scenario.topology.links["r1--r2"]
    link.a_to_b.propagation_delay = WAN_PROP
    link.b_to_a.propagation_delay = WAN_PROP
    scenario.converge()
    client = transport_cls(scenario.sim, scenario.hosts["src"])
    server = transport_cls(scenario.sim, scenario.hosts["dst"])
    server.serve(lambda p, s: (b"r", REPLY))
    results = []
    for _ in range(5):
        client.transact("dst", b"q", REQUEST, results.append)
        scenario.sim.run(until=scenario.sim.now + 0.5)
    return [r.rtt for r in results if r.ok]


def run_all():
    return {
        "sirpent": run_sirpent(),
        "udp": run_ip(UdpLikeTransport),
        "tcp": run_ip(TcpLikeTransport),
    }


def bench_e10_transaction_rtt(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sirpent = results["sirpent"]
    mean_sirpent = sum(sirpent["rtts"]) / len(sirpent["rtts"])
    mean_udp = sum(results["udp"]) / len(results["udp"])
    mean_tcp = sum(results["tcp"]) / len(results["tcp"])
    table = format_table(
        f"E10  Campus transaction RTT ({REQUEST}B/{REPLY}B over a "
        f"{ms(WAN_PROP):.0f}ms WAN hop)",
        ["scheme", "mean RTT (ms)", "notes"],
        [
            ("VMTP / VIPER (cut-through)", ms(mean_sirpent),
             f"client predicted {ms(sirpent['predicted']):.2f}ms from the "
             "route attributes"),
            ("UDP-like / IP (store&fwd)", ms(mean_udp), "no setup"),
            ("TCP-like / IP (store&fwd)", ms(mean_tcp),
             "3-way handshake first"),
            ("directory lookup (cold)", ms(sirpent["lookup"]),
             "region walk + server RTT (§3)"),
            ("directory lookup (cached)", ms(sirpent["cached_lookup"]),
             "answer from region cache"),
        ],
    )
    note = (
        "\nPaper: the route's advertised attributes predict the RTT up to\n"
        "queueing; cut-through + no handshake beats both IP transports."
    )
    publish("e10_transaction_rtt", table + note)

    # Prediction matches measurement on an idle network.
    assert_close(mean_sirpent, sirpent["predicted"], rel=0.15,
                 what="predicted vs measured RTT")
    # Ordering: Sirpent < UDP/IP < TCP/IP.
    assert mean_sirpent < mean_udp < mean_tcp
    # TCP pays roughly one extra WAN round trip over UDP.
    assert mean_tcp - mean_udp > 1.5 * WAN_PROP
    # Name caching removes the region-walk cost.
    assert sirpent["cached_lookup"] < sirpent["lookup"]
