"""E11 — §2.3 scalability of router state and addressing.

Paper claims:

* "the size of state required by each Sirpent router is proportional to
  the properties of its direct connections and not the entire
  internetwork, unlike standard IP routing algorithms such as link
  state routing which store the entire internetwork topology";
* "with variable-length source routes, there is no limit to the number
  of nodes that can be addressed … using VIPER and a maximum of 48
  header segments … one can address up to 2^88 endpoints" (the paper's
  arithmetic is conservative: 254 usable ports per hop over 48 hops is
  far beyond 2^88);
* "there is no need to coordinate the assignment of addresses".

Setup: grow a line internetwork and record what each kind of router must
store; compute the addressing capacity from the wire format itself.
"""

from __future__ import annotations

import math

from repro.scenarios import build_ip_line, build_sirpent_line
from repro.transport import RouteManager
from repro.viper.wire import MAX_SEGMENTS

from benchmarks._common import format_table, publish


def run_point(n_routers: int):
    # --- IP: converge, then read the first router's databases. ---
    ip = build_ip_line(n_routers=n_routers, extra_host_pairs=2)
    ip.converge()
    ip_state = ip.routers["r1"].routing.state_size()

    # --- Sirpent: run the same traffic matrix, read r1's state. ---
    sirpent = build_sirpent_line(n_routers=n_routers, extra_host_pairs=2)
    pairs = [("src", "dst"), ("src2", "dst2"), ("src3", "dst3")]
    for src, dst in pairs:
        client = sirpent.transport(src)
        server = sirpent.transport(dst)
        entity = server.create_entity(lambda m: (b"r", 64), hint=dst)
        manager = RouteManager(
            sirpent.sim, sirpent.vmtp_routes(src, dst, with_tokens=True)
        )
        client.transact(manager, entity, b"q", 128, lambda r: None)
    sirpent.sim.run(until=2.0)
    r1 = sirpent.routers["r1"]
    sirpent_state = {
        "ports": len(r1.ports),
        "token_cache": len(r1.token_cache),
        "flow_limits": len(r1.congestion.limits) if r1.congestion else 0,
    }
    return {
        "n_routers": n_routers,
        "n_nodes": n_routers + 6,
        "ip_lsdb": ip_state["lsdb_entries"],
        "ip_links": ip_state["lsdb_links"],
        "ip_forwarding": ip_state["forwarding_entries"],
        "sirpent_ports": sirpent_state["ports"],
        "sirpent_tokens": sirpent_state["token_cache"],
        "sirpent_flows": sirpent_state["flow_limits"],
    }


def run_all():
    return [run_point(n) for n in (2, 4, 8, 16)]


def bench_e11_scalability(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        "E11  Router state vs internetwork size (first router on a line, "
        "3 active host pairs)",
        ["routers", "nodes", "IP LSDB entries", "IP LSDB links",
         "IP fwd entries", "Sirpent ports", "Sirpent cached tokens",
         "Sirpent flow soft-state"],
        [
            (r["n_routers"], r["n_nodes"], r["ip_lsdb"], r["ip_links"],
             r["ip_forwarding"], r["sirpent_ports"], r["sirpent_tokens"],
             r["sirpent_flows"])
            for r in rows
        ],
    )
    address_bits = MAX_SEGMENTS * math.log2(254)
    note = (
        f"\nAddressing capacity from the wire format: 254 usable ports x\n"
        f"{MAX_SEGMENTS} segments = 2^{address_bits:.0f} endpoints "
        "(paper quotes 2^88 as a floor);\n"
        "addresses are 'purely a result of the internetwork topology' —\n"
        "no assignment authority exists anywhere in this codebase."
    )
    publish("e11_scalability", table + note)

    first, last = rows[0], rows[-1]
    # IP per-router state grows with the whole topology.
    assert last["ip_lsdb"] > first["ip_lsdb"]
    assert last["ip_forwarding"] > first["ip_forwarding"]
    assert last["ip_forwarding"] >= last["n_nodes"] - 1
    # Sirpent per-router state tracks local connectivity + active flows,
    # independent of topology size.
    assert last["sirpent_ports"] == first["sirpent_ports"]
    assert last["sirpent_tokens"] <= 8  # one per traversing active pair
    # Addressing capacity exceeds the paper's 2^88 claim.
    assert address_bits > 88
