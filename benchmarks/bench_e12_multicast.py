"""E12 — §2 the three multicast mechanisms.

Paper: multicast can be supported by (1) reserved port values naming
port groups (with broadcast as the simple case), (2) tree-structured
routes carrying one header segment per branch (after Blazenet), and
(3) multicast agents that "explode" a packet along per-member routes —
the agents receiving the full header, unlike the tree scheme.

Setup: one sender, a hub router with N leaf hosts.  Deliver one 512B
payload to every leaf with each mechanism; compare bytes transmitted on
the source's access link (the header-size trade §2 describes), total
bytes on all wires, and the delivery delay spread.
"""

from __future__ import annotations

from repro.core.host import SirpentHost
from repro.core.multicast import (
    BROADCAST_PORT,
    MulticastAgent,
    TreeBranch,
    TREE_PORT,
    encode_tree_info,
)
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment

from benchmarks._common import format_table, publish, us

PAYLOAD = 512


class _Route:
    def __init__(self, segments, first_hop_port):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = None


def build_star(n_leaves):
    sim = Simulator()
    topo = Topology(sim)
    hub = topo.add_node(SirpentRouter(sim, "hub"))
    src = topo.add_node(SirpentHost(sim, "src"))
    _, src_port, _ = topo.connect(src, hub, rate_bps=10e6)
    leaves, leaf_ports, inboxes = [], [], []
    for index in range(n_leaves):
        leaf = topo.add_node(SirpentHost(sim, f"leaf{index}"))
        _, hub_port, _ = topo.connect(hub, leaf, rate_bps=10e6)
        box = []
        leaf.bind(0, box.append)
        leaves.append(leaf)
        leaf_ports.append(hub_port)
        inboxes.append(box)
    return sim, topo, hub, src, src_port, leaf_ports, inboxes


def _measure(sim, topo, inboxes, n_leaves):
    sim.run(until=2.0)
    delivered = sum(len(box) for box in inboxes)
    arrivals = [box[0].arrived_at for box in inboxes if box]
    spread = (max(arrivals) - min(arrivals)) if arrivals else float("nan")
    total_bytes = sum(
        c.bytes_sent.count
        for link in topo.links.values()
        for c in (link.a_to_b, link.b_to_a)
    )
    access = topo.links["src--hub"].a_to_b.bytes_sent.count
    return {
        "delivered": delivered, "spread": spread,
        "total_bytes": total_bytes, "access_bytes": access,
    }


def run_group_port(n_leaves):
    sim, topo, hub, src, src_port, leaf_ports, inboxes = build_star(n_leaves)
    hub.groups.add_group(240, leaf_ports)
    route = _Route([HeaderSegment(port=240), HeaderSegment(port=0)], src_port)
    src.send(route, b"mc", PAYLOAD)
    return _measure(sim, topo, inboxes, n_leaves)


def run_broadcast(n_leaves):
    sim, topo, hub, src, src_port, _lp, inboxes = build_star(n_leaves)
    route = _Route(
        [HeaderSegment(port=BROADCAST_PORT), HeaderSegment(port=0)], src_port
    )
    src.send(route, b"bc", PAYLOAD)
    return _measure(sim, topo, inboxes, n_leaves)


def run_tree(n_leaves):
    sim, topo, hub, src, src_port, leaf_ports, inboxes = build_star(n_leaves)
    branches = [
        TreeBranch([HeaderSegment(port=p), HeaderSegment(port=0)])
        for p in leaf_ports
    ]
    route = _Route(
        [HeaderSegment(port=TREE_PORT, portinfo=encode_tree_info(branches))],
        src_port,
    )
    src.send(route, b"tree", PAYLOAD)
    return _measure(sim, topo, inboxes, n_leaves)


def run_agent(n_leaves):
    sim, topo, hub, src, src_port, leaf_ports, inboxes = build_star(n_leaves)
    # The agent lives on leaf0's host and re-sends to every leaf via the
    # hub (member routes go back up through the agent's access link).
    agent_host = topo.nodes["leaf0"]
    agent_inport = 1  # its single attachment
    agent = MulticastAgent(
        lambda route, payload, size: agent_host.send(route, payload, size),
        name="exploder",
    )
    for index, port in enumerate(leaf_ports):
        agent.add_member(_Route(
            [HeaderSegment(port=port), HeaderSegment(port=0)], agent_inport
        ))
    agent_socket = 9
    agent_host.bind(
        agent_socket,
        lambda delivered: agent.on_payload(delivered.payload,
                                           delivered.payload_size),
    )
    route = _Route(
        [HeaderSegment(port=leaf_ports[0]), HeaderSegment(port=agent_socket)],
        src_port,
    )
    src.send(route, b"agent", PAYLOAD)
    return _measure(sim, topo, inboxes, n_leaves)


def run_all(n_leaves=6):
    return {
        "group port (mech 1)": run_group_port(n_leaves),
        "broadcast port (mech 1)": run_broadcast(n_leaves),
        "tree segments (mech 2)": run_tree(n_leaves),
        "multicast agent (mech 3)": run_agent(n_leaves),
    }


def bench_e12_multicast(benchmark):
    n_leaves = 6
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        f"E12  One 512B payload to {n_leaves} leaves, three mechanisms",
        ["mechanism", "delivered", "src-link bytes", "total wire bytes",
         "arrival spread (us)"],
        [
            (name, r["delivered"], r["access_bytes"], r["total_bytes"],
             us(r["spread"]))
            for name, r in results.items()
        ],
    )
    note = (
        "\nPaper: group/broadcast ports need one minimal segment; the\n"
        "tree carries per-branch segments up front; the agent delivers\n"
        "the full header to an exploder at the cost of extra traversals."
    )
    publish("e12_multicast", table + note)

    for name, r in results.items():
        assert r["delivered"] == n_leaves, f"{name} missed leaves"
    group = results["group port (mech 1)"]
    tree = results["tree segments (mech 2)"]
    agent = results["multicast agent (mech 3)"]
    # The tree header is bigger on the access link than a group port.
    assert tree["access_bytes"] > group["access_bytes"]
    # The agent costs the most total wire bytes (up and back down).
    assert agent["total_bytes"] > tree["total_bytes"]
    assert agent["total_bytes"] > group["total_bytes"]
    # Router-level replication delivers nearly simultaneously; the agent
    # serializes its explosion.
    assert group["spread"] < agent["spread"]
