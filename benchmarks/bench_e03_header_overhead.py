"""E3 — §6.2 header overhead.

Paper arithmetic, reproduced with synthetic traffic:

* packet sizes ~ the [4] mixture (half min, quarter max, rest uniform):
  mean ≈ 3/8 of the maximum;
* hop counts concentrated near zero by locality ("the expected number
  of hops per packet for many applications [is] significantly less than
  one"), mean 0.2;
* 18 bytes of VIPER+Ethernet header per hop ⇒ **about 0.5 percent**
  average header overhead — versus IP's fixed 20-byte header.

We draw a synthetic packet population, size its headers with the real
VIPER codec (4-byte fixed part, 14-byte Ethernet portInfo per Ethernet
hop), and compare against both the paper's quoted numbers and the
closed-form model.
"""

from __future__ import annotations

from repro.analysis.overhead import paper_example_overhead
from repro.sim.rng import RngStreams
from repro.viper.portinfo import EthernetInfo
from repro.viper.wire import HeaderSegment
from repro.workloads.sizes import PacketSizeMixture
from repro.net.addresses import MacAddress

from benchmarks._common import assert_close, format_table, publish

N_PACKETS = 60_000

#: Locality-dominated hop distribution with mean 0.2 (paper: "counting
#: 0 hops as local").
HOP_DISTRIBUTION = [(0, 0.85), (1, 0.12), (2, 0.02), (3, 0.01)]


def _sample_hops(rng) -> int:
    u = rng.random()
    acc = 0.0
    for hops, probability in HOP_DISTRIBUTION:
        acc += probability
        if u <= acc:
            return hops
    return HOP_DISTRIBUTION[-1][0]


def _viper_header_bytes(hops: int) -> int:
    """Actual codec size of an Ethernet-hop route of ``hops`` routers."""
    mac = MacAddress(0x02_00_00_00_00_01)
    info = EthernetInfo(dst=mac, src=mac).to_bytes()
    total = 0
    for _ in range(hops):
        total += HeaderSegment(port=1, portinfo=info).wire_size()
    return total


def run_population(max_packet=2048):
    rng = RngStreams(23).stream("e03")
    mixture = PacketSizeMixture(min_size=64, max_size=max_packet)
    total_payload = 0
    total_viper = 0
    total_ip = 0
    total_hops = 0
    for _ in range(N_PACKETS):
        payload = mixture.sample(rng)
        hops = _sample_hops(rng)
        total_payload += payload
        total_viper += _viper_header_bytes(hops)
        total_ip += 20
        total_hops += hops
    return {
        "mean_payload": total_payload / N_PACKETS,
        "mean_hops": total_hops / N_PACKETS,
        "viper_fraction": total_viper / total_payload,
        "ip_fraction": total_ip / total_payload,
        "mean_header_per_hop": total_viper / max(1, total_hops),
    }


def run_all():
    measured = run_population()
    model = paper_example_overhead()
    return measured, model


def bench_e03_header_overhead(benchmark):
    measured, model = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        ("mean packet size (B)", measured["mean_payload"],
         model["mean_size_paper_quote"], model["mean_size_3_8_rule"]),
        ("mean hops", measured["mean_hops"], 0.2, 0.2),
        ("header bytes per hop", measured["mean_header_per_hop"], 18, 18),
        ("VIPER overhead (%)", measured["viper_fraction"] * 100,
         model["sirpent_overhead_paper"] * 100,
         model["sirpent_overhead_3_8"] * 100),
        ("IP overhead (%)", measured["ip_fraction"] * 100,
         model["ip_overhead_paper"] * 100, model["ip_overhead_3_8"] * 100),
    ]
    table = format_table(
        "E3  Average header overhead ([4] size mixture, locality hop mix)",
        ["quantity", "measured", "paper (633B mean)", "model (3/8 rule)"],
        rows,
    )
    note = (
        "\nPaper: 'the average VIPER header overhead is 0.5 percent';\n"
        "IP pays its 20-byte header on every packet, hops or not."
    )
    publish("e03_header_overhead", table + note)

    # The headline number: well under 1%, in the ~0.5% band.
    viper_pct = measured["viper_fraction"] * 100
    assert 0.2 < viper_pct < 1.0
    # Header-per-hop matches the paper's 18-byte estimate exactly
    # (4-byte VIPER fixed part + 14-byte Ethernet header).
    assert measured["mean_header_per_hop"] == 18.0
    # IP's overhead is several times Sirpent's under locality.
    assert measured["ip_fraction"] > 3 * measured["viper_fraction"]
    # The synthetic mean matches the closed-form mixture mean.
    assert_close(measured["mean_payload"],
                 PacketSizeMixture(64, 2048).mean(), rel=0.02,
                 what="mixture mean")
    assert_close(measured["mean_hops"], 0.19, rel=0.15, what="hop mean")
