"""Shim for legacy editable installs on environments without `wheel`.

Configuration lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
