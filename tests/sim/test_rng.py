"""Unit tests for seeded RNG streams."""

import pytest

from repro.sim.rng import (
    RngStreams,
    exponential,
    pareto_bounded,
    poisson_times,
    weighted_choice,
)


def test_same_name_same_stream_object():
    streams = RngStreams(7)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_independent_of_request_order():
    one = RngStreams(7)
    a_first = one.stream("a").random()
    two = RngStreams(7)
    two.stream("b")  # request b first
    a_second = two.stream("a").random()
    assert a_first == a_second


def test_different_names_differ():
    streams = RngStreams(7)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_different_master_seeds_differ():
    assert (
        RngStreams(1).stream("x").random()
        != RngStreams(2).stream("x").random()
    )


def test_fork_is_deterministic_and_disjoint():
    parent = RngStreams(7)
    child_a = parent.fork("child")
    child_b = RngStreams(7).fork("child")
    assert child_a.stream("s").random() == child_b.stream("s").random()
    assert child_a.stream("s").random() != parent.stream("s").random()


def test_exponential_mean():
    rng = RngStreams(3).stream("exp")
    samples = [exponential(rng, 2.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 2.0) < 0.1


def test_exponential_rejects_bad_mean():
    rng = RngStreams(3).stream("exp")
    with pytest.raises(ValueError):
        exponential(rng, 0.0)


def test_pareto_bounded_within_bounds():
    rng = RngStreams(3).stream("pareto")
    for _ in range(1000):
        value = pareto_bounded(rng, alpha=1.2, low=1.0, high=100.0)
        assert 1.0 <= value <= 100.0


def test_pareto_bounded_validates():
    rng = RngStreams(3).stream("pareto")
    with pytest.raises(ValueError):
        pareto_bounded(rng, 1.2, low=5.0, high=5.0)


def test_weighted_choice_respects_weights():
    rng = RngStreams(3).stream("choice")
    picks = [weighted_choice(rng, ["a", "b"], [9.0, 1.0]) for _ in range(5000)]
    fraction_a = picks.count("a") / len(picks)
    assert 0.85 < fraction_a < 0.95


def test_weighted_choice_length_mismatch():
    rng = RngStreams(3).stream("choice")
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1.0, 2.0])


def test_poisson_times_sorted_and_bounded():
    rng = RngStreams(3).stream("poisson")
    times = list(poisson_times(rng, rate=100.0, horizon=1.0))
    assert times == sorted(times)
    assert all(0 <= t < 1.0 for t in times)
    # ~100 events expected
    assert 60 < len(times) < 140
