"""Fluid (vectorized) flow advancement: exact, just fewer events.

``FluidFlow`` with ``batch=1`` IS per-packet discrete-event execution;
any larger batch must advance the same packets at the same simulated
times and finish at the same instant — only the heap-event count may
drop.  These tests pin that equivalence and the decide-once-per-event
contract that ties fluid mode to the flow cache's memoized decisions.
"""

import pytest

from repro.sim.engine import FluidFlow, SimulationError, Simulator


def _run_flow(packets, interval, batch, start_at=0.0):
    sim = Simulator()
    decisions = []
    advances = []

    def decide():
        decisions.append(sim.now)
        return ("decision", len(decisions))

    def advance(decision, n, first_time):
        advances.append((decision, n, first_time))

    flow = FluidFlow(
        sim, decide, advance, packets=packets, interval=interval, batch=batch
    ).start(at=start_at)
    sim.run()
    return sim, flow, decisions, advances


def _departure_times(advances, interval):
    times = []
    for _decision, n, first_time in advances:
        times.extend(first_time + i * interval for i in range(n))
    return times


def test_batched_flow_matches_per_packet_execution_exactly():
    packets, interval = 1000, 0.25
    sim1, flow1, _, adv1 = _run_flow(packets, interval, batch=1)
    simN, flowN, _, advN = _run_flow(packets, interval, batch=64)

    assert flow1.advanced == flowN.advanced == packets
    # Identical per-packet departure instants, not just identical totals.
    assert _departure_times(adv1, interval) == _departure_times(advN, interval)
    assert flow1.finished_at == flowN.finished_at
    # The whole point: 1000 heap events collapse to ceil(1000/64).
    assert flow1.events == packets
    assert flowN.events == (packets + 63) // 64


def test_decide_runs_once_per_event_not_once_per_packet():
    _, flow, decisions, advances = _run_flow(300, 0.1, batch=50)
    assert flow.events == 6
    assert len(decisions) == 6
    # Every advance hands the driver the decision made for *that* event.
    assert [d for d, _n, _t in advances] == [
        ("decision", i) for i in range(1, 7)
    ]


def test_final_partial_batch_and_finish_time():
    # 10 packets in batches of 4 -> events advance 4, 4, 2.
    sim, flow, _, advances = _run_flow(10, 1.0, batch=4, start_at=5.0)
    assert [(n, t) for _d, n, t in advances] == [
        (4, 5.0), (4, 9.0), (2, 13.0),
    ]
    # Last packet departs at start + (packets-1)*interval, batch or not.
    assert flow.finished_at == 5.0 + 9 * 1.0
    assert flow.remaining == 0


def test_stop_cancels_remaining_packets():
    sim = Simulator()
    flow = FluidFlow(
        sim, lambda: None, lambda d, n, t: None,
        packets=100, interval=1.0, batch=10,
    ).start()
    sim.run(max_events=3)
    flow.stop()
    sim.run()
    assert flow.advanced == 30
    assert flow.remaining == 70
    assert flow.finished_at is None


def test_constructor_rejects_misuse():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FluidFlow(sim, lambda: None, lambda d, n, t: None,
                  packets=0, interval=1.0)
    with pytest.raises(SimulationError):
        FluidFlow(sim, lambda: None, lambda d, n, t: None,
                  packets=1, interval=-1.0)
    with pytest.raises(SimulationError):
        FluidFlow(sim, lambda: None, lambda d, n, t: None,
                  packets=1, interval=1.0, batch=0)


def test_fluid_flow_over_a_warm_flow_cache():
    """End to end with the real pipeline: one cache hit per *event*."""
    from repro.dataplane import (
        Capabilities, FlowCache, ForwardingPipeline, HopInput, PortMap,
        PortProfile,
    )
    from repro.tokens.cache import TokenCache
    from repro.tokens.capability import TokenMint
    from repro.viper.wire import HeaderSegment

    class _Ports(PortMap):
        def profile(self, port_id):
            return PortProfile(kind="p2p", mtu=0) if port_id == 7 else None

        def ids(self):
            return [7]

    mint = TokenMint(b"secret", issuer="r")
    flow_cache = FlowCache()
    pipeline = ForwardingPipeline(
        "r", token_cache=TokenCache(mint), ports=_Ports(),
        flow_cache=flow_cache, capabilities=Capabilities(),
    )
    sim = Simulator()
    segment = HeaderSegment(port=7)
    forwarded = []

    def decide():
        return pipeline.decide(HopInput(
            segment=segment, seg_count=2, wire_size=64, in_port=3,
            now_ms=int(sim.now * 1000),
        ))

    def advance(decision, n, _t):
        forwarded.append((decision.out_port, n))

    flow = FluidFlow(
        sim, decide, advance, packets=256, interval=1e-3, batch=32
    ).start()
    sim.run()
    assert flow.advanced == 256
    assert all(port == 7 for port, _n in forwarded)
    # 8 events -> 1 cold miss + 7 memoized hits; 256 per-packet lookups
    # would have cost 255 hits.  Vectorization shows up in the stats.
    assert flow_cache.stats.misses == 1
    assert flow_cache.stats.hits == 7
