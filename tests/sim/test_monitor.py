"""Unit tests for statistics monitors."""

import math

import pytest

from repro.sim.monitor import (
    Counter,
    Histogram,
    RateMeter,
    TimeWeighted,
    UtilizationTracker,
)


class TestCounter:
    def test_add_and_rate(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.count == 5
        assert counter.rate(2.5) == 2.0

    def test_rate_with_zero_elapsed(self):
        assert Counter().rate(0.0) == 0.0


class TestHistogram:
    def test_mean_and_stdev(self):
        hist = Histogram()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            hist.add(v)
        assert hist.mean == pytest.approx(5.0)
        assert hist.stdev == pytest.approx(math.sqrt(32 / 7), rel=1e-6)

    def test_quantiles(self):
        hist = Histogram()
        for v in range(100):
            hist.add(float(v))
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == 50.0
        assert hist.quantile(1.0) == 99.0

    def test_quantile_range_validation(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_empty_histogram_is_safe(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.stdev == 0.0

    def test_summary_keys(self):
        hist = Histogram()
        hist.add(3.0)
        summary = hist.summary()
        assert set(summary) == {
            "count", "mean", "stdev", "min", "p50", "p95", "p99", "max",
        }

    def test_single_sample_quantiles(self):
        hist = Histogram()
        hist.add(42.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_nan_samples_excluded_from_quantiles(self):
        hist = Histogram()
        hist.add(float("nan"))
        hist.add(1.0)
        hist.add(3.0)
        assert hist.count == 3  # NaN still counts toward count
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 3.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0

    def test_sorted_view_cached_and_invalidated(self):
        hist = Histogram()
        for v in (3.0, 1.0, 2.0):
            hist.add(v)
        first = hist._ordered()
        assert first == [1.0, 2.0, 3.0]
        assert hist._ordered() is first  # cached between adds
        hist.add(0.5)
        again = hist._ordered()
        assert again is not first  # invalidated by add
        assert again == [0.5, 1.0, 2.0, 3.0]


class TestTimeWeighted:
    def test_time_weighted_mean(self):
        tw = TimeWeighted(initial=0.0, start=0.0)
        tw.update(1.0, 10.0)   # 0 for [0,1)
        tw.update(3.0, 0.0)    # 10 for [1,3)
        # mean over [0,4]: (0*1 + 10*2 + 0*1)/4 = 5
        assert tw.mean(4.0) == pytest.approx(5.0)

    def test_maximum_tracked(self):
        tw = TimeWeighted()
        tw.update(1.0, 3.0)
        tw.update(2.0, 7.0)
        tw.update(3.0, 2.0)
        assert tw.maximum == 7.0

    def test_backwards_time_raises(self):
        tw = TimeWeighted()
        tw.update(2.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(1.0, 0.0)

    def test_zero_elapsed_mean_returns_current_value(self):
        tw = TimeWeighted(initial=7.0, start=5.0)
        assert tw.mean(5.0) == 7.0  # no time elapsed: no 0/0
        tw2 = TimeWeighted(initial=2.0, start=1.0)
        assert tw2.mean(0.5) == 2.0  # now before start is also safe


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(window=1.0)
        for t in (0.1, 0.2, 0.3, 0.4):
            meter.add(t, 10.0)
        assert meter.rate(0.5) == pytest.approx(40.0)

    def test_old_entries_expire(self):
        meter = RateMeter(window=1.0)
        meter.add(0.0, 100.0)
        assert meter.rate(2.0) == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            RateMeter(window=0.0)

    def test_expiry_is_exact_at_the_window_edge(self):
        meter = RateMeter(window=1.0)
        meter.add(0.0, 10.0)
        meter.add(1.0, 10.0)
        # At t=1.0 the cutoff is 0.0; the entry AT the cutoff survives
        # (strict < comparison), so both contribute.
        assert meter.rate(1.0) == pytest.approx(20.0)
        # Just past the edge the old entry is gone, exactly once.
        assert meter.rate(1.0 + 1e-9) == pytest.approx(10.0)
        assert meter._total == pytest.approx(10.0)

    def test_expiry_removes_many_without_error_accumulation(self):
        meter = RateMeter(window=500.0)
        for i in range(1000):
            meter.add(float(i), 1.0)
        # Cutoff at 999-500=499; strict < keeps t in [499, 999] = 501.
        assert meter.rate(999.0) == pytest.approx(501 / 500.0)
        assert len(meter._events) == 501
        assert meter._total == pytest.approx(501.0)


class TestUtilizationTracker:
    def test_utilization_fraction(self):
        tracker = UtilizationTracker(start=0.0)
        tracker.busy(1.0)
        tracker.idle(3.0)
        assert tracker.utilization(4.0) == pytest.approx(0.5)

    def test_currently_busy_counts(self):
        tracker = UtilizationTracker(start=0.0)
        tracker.busy(0.0)
        assert tracker.utilization(2.0) == pytest.approx(1.0)

    def test_double_busy_is_harmless(self):
        tracker = UtilizationTracker(start=0.0)
        tracker.busy(0.0)
        tracker.busy(1.0)
        tracker.idle(2.0)
        assert tracker.utilization(2.0) == pytest.approx(1.0)
