"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(3.0, fired.append, "c")
    sim.at(1.0, fired.append, "a")
    sim.at(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in "abcdef":
        sim.at(1.0, fired.append, tag)
    sim.run()
    assert fired == list("abcdef")


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(5.0, lambda: sim.after(2.5, lambda: times.append(sim.now)))
    sim.run()
    assert times == [7.5]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.at(1.0, fired.append, "x")
    sim.at(2.0, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_executed == 0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "early")
    sim.at(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0  # clock advanced to the requested horizon
    sim.run()
    assert fired == ["early", "late"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.at(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-0.1, lambda: None)


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.after(1.0, chain, n + 1)

    sim.after(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    h1.cancel()
    assert sim.peek_time() == 2.0


def test_pending_counts_live_events():
    sim = Simulator()
    handles = [sim.at(float(i + 1), lambda: None) for i in range(4)]
    handles[0].cancel()
    assert sim.pending() == 3


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_determinism_across_runs():
    def run_once():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.at((i * 7) % 13 * 0.1, order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()
