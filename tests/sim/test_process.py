"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal, all_of


def test_process_sleeps_for_yielded_delays():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield 1.5
        times.append(sim.now)
        yield 2.5
        times.append(sim.now)

    Process(sim, proc(), name="sleeper")
    sim.run()
    assert times == [0.0, 1.5, 4.0]


def test_process_result_is_captured():
    sim = Simulator()

    def proc():
        yield 1.0
        return 42

    p = Process(sim, proc())
    sim.run()
    assert p.done
    assert p.result == 42


def test_signal_wakes_waiter_with_value():
    sim = Simulator()
    received = []
    gate = Signal(sim, "gate")

    def waiter():
        value = yield gate
        received.append(value)

    Process(sim, waiter())
    sim.at(2.0, gate.fire, "payload")
    sim.run()
    assert received == ["payload"]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    woken = []
    gate = Signal(sim)

    def waiter(tag):
        yield gate
        woken.append(tag)

    for tag in range(3):
        Process(sim, waiter(tag))
    sim.at(1.0, gate.fire)
    sim.run()
    assert sorted(woken) == [0, 1, 2]


def test_signal_can_fire_repeatedly():
    sim = Simulator()
    count = []
    gate = Signal(sim)

    def waiter():
        yield gate
        count.append(sim.now)
        yield gate
        count.append(sim.now)

    Process(sim, waiter())
    sim.at(1.0, gate.fire)
    sim.at(2.0, gate.fire)
    sim.run()
    assert count == [1.0, 2.0]


def test_done_signal_fires_with_result():
    sim = Simulator()
    results = []

    def worker():
        yield 3.0
        return "done-value"

    def watcher(p):
        value = yield p.done_signal
        results.append((sim.now, value))

    p = Process(sim, worker())
    Process(sim, watcher(p))
    sim.run()
    assert results == [(3.0, "done-value")]


def test_invalid_yield_raises_type_error():
    sim = Simulator()

    def bad():
        yield "not a delay"

    Process(sim, bad())
    with pytest.raises(TypeError):
        sim.run()


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield 1.0
        raise RuntimeError("model bug")

    p = Process(sim, boom())
    with pytest.raises(RuntimeError):
        sim.run()
    assert isinstance(p.error, RuntimeError)


def test_stop_prevents_resume():
    sim = Simulator()
    steps = []

    def proc():
        steps.append("a")
        yield 1.0
        steps.append("b")

    p = Process(sim, proc())
    sim.run(until=0.5)
    p.stop()
    sim.run()
    assert steps == ["a"]


def test_all_of_waits_for_everything():
    sim = Simulator()
    finished = []

    def worker(delay):
        yield delay

    workers = [Process(sim, worker(d)) for d in (1.0, 3.0, 2.0)]
    gate = all_of(sim, workers)

    def waiter():
        yield gate
        finished.append(sim.now)

    Process(sim, waiter())
    sim.run()
    assert finished == [3.0]


def test_all_of_with_no_processes_fires_immediately():
    sim = Simulator()
    finished = []
    gate = all_of(sim, [])

    def waiter():
        yield gate
        finished.append(sim.now)

    Process(sim, waiter())
    sim.run()
    assert finished == [0.0]
