"""Per-engine packet id allocation is reproducible and isolated.

Packet ids used to come from module-global ``itertools.count`` objects,
so the ids a run produced depended on every packet any *other* test or
simulator had ever constructed in the process.  Each
:class:`Simulator` (and each live host) now owns a
:class:`~repro.sim.ids.PacketIdAllocator`, making id sequences a pure
function of the run itself.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.ids import PacketIdAllocator


class TestAllocator:
    def test_sequential_from_start(self):
        ids = PacketIdAllocator()
        assert [ids.allocate() for _ in range(3)] == [1, 2, 3]

    def test_peek_does_not_consume(self):
        ids = PacketIdAllocator()
        assert ids.peek() == 1
        assert ids.allocate() == 1

    def test_custom_start(self):
        assert PacketIdAllocator(start=100).allocate() == 100

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            PacketIdAllocator(start=0)


class TestPerSimulatorIsolation:
    def test_two_simulators_produce_identical_sequences(self):
        a, b = Simulator(), Simulator()
        seq_a = [a.new_packet_id() for _ in range(10)]
        # Interleave unrelated allocation on another engine: b must be
        # unaffected — this is exactly what the module-global broke.
        seq_b = [b.new_packet_id() for _ in range(10)]
        assert seq_a == seq_b == list(range(1, 11))

    def test_identical_runs_stamp_identical_packet_ids(self):
        """The same scenario replayed on a fresh engine yields the same
        packet ids — including ids minted mid-flight (fragments,
        multicast copies, reassembly)."""
        from repro.core.host import SirpentHost
        from repro.core.router import SirpentRouter
        from repro.net.topology import Topology
        from repro.viper.wire import HeaderSegment

        def run():
            sim = Simulator()
            topo = Topology(sim)
            src = topo.add_node(SirpentHost(sim, "src"))
            dst = topo.add_node(SirpentHost(sim, "dst"))
            router = topo.add_node(SirpentRouter(sim, "r1"))
            _, src_port, _ = topo.connect(src, router, rate_bps=10e6,
                                          propagation_delay=10e-6)
            _, fwd_port, _ = topo.connect(router, dst, rate_bps=10e6,
                                          propagation_delay=10e-6)

            class Route:
                segments = [HeaderSegment(port=fwd_port),
                            HeaderSegment(port=0)]
                first_hop_port = src_port
                first_hop_mac = None

            got = []
            dst.bind(0, got.append)
            for _ in range(5):
                src.send(Route(), b"data", 200)
            sim.run(until=1.0)
            return [d.packet.packet_id for d in got]

        first, second = run(), run()
        assert first == second
        assert len(first) == 5

    def test_live_hosts_allocate_independently(self):
        from repro.live.host import LiveHost

        a, b = LiveHost("a"), LiveHost("b")
        assert a.packet_ids.allocate() == 1
        assert b.packet_ids.allocate() == 1
