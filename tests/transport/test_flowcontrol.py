"""Unit tests for delivery masks and rate-based pacing (§4.3)."""

import pytest

from repro.transport.flowcontrol import (
    DeliveryMask,
    RateController,
    split_into_group,
)


class TestDeliveryMask:
    def test_marking_and_completion(self):
        mask = DeliveryMask(3)
        assert not mask.complete
        mask.mark(0)
        mask.mark(2)
        assert mask.missing() == [1]
        assert mask.received() == [0, 2]
        mask.mark(1)
        assert mask.complete

    def test_single_member(self):
        mask = DeliveryMask(1)
        mask.mark(0)
        assert mask.complete

    def test_bounds(self):
        with pytest.raises(ValueError):
            DeliveryMask(0)
        with pytest.raises(ValueError):
            DeliveryMask(33)
        mask = DeliveryMask(4)
        with pytest.raises(IndexError):
            mask.mark(4)

    def test_bits_roundtrip(self):
        mask = DeliveryMask(5)
        mask.mark(1)
        mask.mark(3)
        clone = DeliveryMask(5, bits=mask.bits)
        assert clone.missing() == [0, 2, 4]

    def test_stray_high_bits_masked(self):
        mask = DeliveryMask(2, bits=0xFF)
        assert mask.complete
        assert mask.bits == 0b11


class TestSplitIntoGroup:
    def test_even_split(self):
        assert split_into_group(3000, 1000) == [1000, 1000, 1000]

    def test_remainder_in_last_member(self):
        assert split_into_group(2500, 1000) == [1000, 1000, 500]

    def test_small_message_single_member(self):
        assert split_into_group(10, 1000) == [10]

    def test_limit_enforced(self):
        with pytest.raises(ValueError):
            split_into_group(33 * 1000, 1000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_into_group(0, 1000)
        with pytest.raises(ValueError):
            split_into_group(100, 0)


class TestRateController:
    def test_gap_proportional_to_size(self):
        rc = RateController(rate_bps=8e6)
        assert rc.gap_for(1000) == pytest.approx(1e-3)
        assert rc.gap_for(2000) == pytest.approx(2e-3)

    def test_backpressure_halves_rate(self):
        rc = RateController(rate_bps=8e6, decrease_factor=0.5)
        rc.on_backpressure(now=1.0)
        assert rc.rate_bps == 4e6

    def test_backpressure_respects_advised_rate(self):
        rc = RateController(rate_bps=8e6)
        rc.on_backpressure(now=1.0, advised_bps=1e6)
        assert rc.rate_bps == 1e6

    def test_floor_enforced(self):
        rc = RateController(rate_bps=8e6, floor_bps=1e6)
        for step in range(10):
            rc.on_backpressure(now=1.0 + step)
        assert rc.rate_bps == 1e6

    def test_burst_of_signals_counts_once(self):
        rc = RateController(rate_bps=8e6)
        rc.on_backpressure(now=1.0)
        rc.on_backpressure(now=1.0001)  # same burst
        assert rc.rate_bps == 4e6
        assert rc.decreases == 1

    def test_recovery_climbs_back(self):
        rc = RateController(
            rate_bps=8e6, recovery_fraction=0.25, recovery_interval=10e-3,
        )
        rc.on_backpressure(now=0.0)
        assert rc.rate_bps == 4e6
        rc.maybe_recover(now=0.05)
        assert rc.rate_bps == 6e6
        rc.maybe_recover(now=0.10)
        rc.maybe_recover(now=0.15)
        assert rc.rate_bps == 8e6  # capped at the ceiling

    def test_no_recovery_right_after_decrease(self):
        rc = RateController(rate_bps=8e6, recovery_interval=10e-3)
        rc.on_backpressure(now=1.0)
        rc.maybe_recover(now=1.005)
        assert rc.rate_bps == 4e6

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateController(rate_bps=0)
