"""Unit tests for timestamp-based MPL enforcement (§4.2)."""


from repro.sim.engine import Simulator
from repro.transport.timestamps import (
    HostClock,
    TIMESTAMP_INVALID,
    TIMESTAMP_MODULUS,
    TimestampPolicy,
    encode_timestamp_ms,
    timestamp_age_ms,
)


def test_encode_folds_into_32_bits():
    assert encode_timestamp_ms(0) == 1  # never the reserved 0
    assert encode_timestamp_ms(TIMESTAMP_MODULUS) == 1
    assert encode_timestamp_ms(12345) == 12345
    assert encode_timestamp_ms(TIMESTAMP_MODULUS + 7) == 7


def test_age_simple():
    assert timestamp_age_ms(1000, 1500) == 500
    assert timestamp_age_ms(1500, 1500) == 0


def test_age_across_wraparound():
    """Sent just before the 32-bit wrap, received just after (§4.2:
    'wrap-around occurs in roughly one month')."""
    sent = TIMESTAMP_MODULUS - 100
    now = 50  # wrapped
    assert timestamp_age_ms(sent, now) == 150


def test_future_stamps_read_as_age_zero():
    """Receiver clock slightly behind the sender: not an old packet."""
    assert timestamp_age_ms(2000, 1500) == 0


def test_clock_advances_with_simulation():
    sim = Simulator()
    clock = HostClock(sim)
    t0 = clock.now_ms()
    sim.at(2.5, lambda: None)
    sim.run()
    assert clock.now_ms() - t0 == 2500


def test_clock_skew_applies():
    sim = Simulator()
    fast = HostClock(sim, skew_ms=300.0)
    slow = HostClock(sim, skew_ms=-300.0)
    assert fast.now_ms() - slow.now_ms() == 600


class TestPolicy:
    def test_fresh_packet_accepted(self):
        sim = Simulator()
        clock = HostClock(sim)
        policy = TimestampPolicy(max_age_ms=30_000)
        stamp = clock.stamp()
        sim.at(1.0, lambda: None)
        sim.run()
        assert policy.accept(stamp, clock)

    def test_ancient_packet_rejected(self):
        sim = Simulator()
        clock = HostClock(sim)
        policy = TimestampPolicy(max_age_ms=30_000)
        stamp = clock.stamp()
        sim.at(31.0, lambda: None)  # 31 s later
        sim.run()
        assert not policy.accept(stamp, clock)

    def test_invalid_stamp_always_accepted(self):
        """Value 0 is reserved: 'should be ignored' (booting machines)."""
        sim = Simulator()
        clock = HostClock(sim)
        policy = TimestampPolicy(max_age_ms=1)
        assert policy.accept(TIMESTAMP_INVALID, clock)

    def test_recently_booted_receiver_is_stricter(self):
        """'a recently booted machine might discard packets older than
        its boot time'."""
        sim = Simulator()
        clock = HostClock(sim)
        policy = TimestampPolicy(max_age_ms=30_000)
        stamp = clock.stamp()
        sim.at(5.0, clock.reboot)
        sim.at(6.0, lambda: None)
        sim.run()
        # Packet is 6 s old, well within 30 s — but older than boot.
        assert not policy.accept(stamp, clock)

    def test_boot_guard_can_be_disabled(self):
        sim = Simulator()
        clock = HostClock(sim)
        policy = TimestampPolicy(max_age_ms=30_000, respect_boot_time=False)
        stamp = clock.stamp()
        sim.at(5.0, clock.reboot)
        sim.at(6.0, lambda: None)
        sim.run()
        assert policy.accept(stamp, clock)

    def test_skewed_sender_within_tolerance(self):
        """Multi-second skew must not break acceptance (§4.2: 'clock
        synchronization need not be more accurate than multiple
        seconds')."""
        sim = Simulator()
        sender = HostClock(sim, skew_ms=3000.0)
        receiver = HostClock(sim, skew_ms=-3000.0)
        policy = TimestampPolicy(max_age_ms=30_000)
        stamp = sender.stamp()
        sim.at(1.0, lambda: None)
        sim.run()
        assert policy.accept(stamp, receiver)
