"""Unit tests for client-side route rebinding (§6.3)."""

import pytest

from repro.directory.routes import Route
from repro.sim.engine import Simulator
from repro.transport.rebind import NoRouteError, RouteManager
from repro.viper.wire import HeaderSegment


def make_route(tag, prop=1e-3, rate=10e6):
    return Route(
        destination=f"dst-{tag}",
        segments=[HeaderSegment(port=1), HeaderSegment(port=0)],
        first_hop_port=1,
        first_hop_mac=None,
        bottleneck_bps=rate,
        propagation_delay=prop,
        hop_count=1,
    )


def test_requires_at_least_one_route():
    sim = Simulator()
    with pytest.raises(NoRouteError):
        RouteManager(sim, [])


def test_failure_switches_to_next_route():
    sim = Simulator()
    a, b, c = make_route("a"), make_route("b"), make_route("c")
    manager = RouteManager(sim, [a, b, c])
    assert manager.current() is a
    assert manager.report_failure() is b
    assert manager.report_failure() is c
    assert manager.report_failure() is a  # wraps around
    assert manager.failures.count == 3


def test_good_rtt_keeps_route():
    sim = Simulator()
    route = make_route("a")
    manager = RouteManager(sim, [route, make_route("b")])
    base = route.expected_rtt(576)
    for _ in range(20):
        manager.report_rtt(base * 1.1)
    assert manager.current() is route
    assert manager.switches.count == 0


def test_sustained_degradation_switches():
    sim = Simulator()
    route = make_route("a")
    alt = make_route("b")
    manager = RouteManager(
        sim, [route, alt], degradation_factor=3.0, degradation_samples=4,
    )
    base = route.expected_rtt(576)
    for _ in range(4):
        manager.report_rtt(base * 10)
    assert manager.current() is alt
    assert manager.switches.count == 1
    assert manager.last_switch_at == sim.now


def test_single_spike_does_not_switch():
    sim = Simulator()
    route = make_route("a")
    manager = RouteManager(sim, [route, make_route("b")],
                           degradation_samples=4)
    base = route.expected_rtt(576)
    for _ in range(3):
        manager.report_rtt(base * 10)
    manager.report_rtt(base)  # recovery resets patience
    for _ in range(3):
        manager.report_rtt(base * 10)
    assert manager.current() is route


def test_backpressure_resets_degradation_counter():
    sim = Simulator()
    route = make_route("a")
    manager = RouteManager(sim, [route, make_route("b")],
                           degradation_samples=2)
    base = route.expected_rtt(576)
    manager.report_rtt(base * 10)
    manager.report_backpressure()  # congestion explains the slowness
    manager.report_rtt(base * 10)
    assert manager.current() is route


def test_single_route_failure_uses_refresher():
    sim = Simulator()
    fresh = [make_route("fresh")]
    manager = RouteManager(
        sim, [make_route("stale")], refresher=lambda: fresh,
    )
    manager.report_failure()
    assert manager.current() is fresh[0]


def test_adopt_advisory_replaces_routes():
    sim = Simulator()
    manager = RouteManager(sim, [make_route("old")])
    advisory = [make_route("new1"), make_route("new2")]
    manager.adopt(advisory)
    assert manager.current() is advisory[0]
    assert manager.alternates() == [advisory[1]]
    manager.adopt([])  # empty advisories are ignored
    assert manager.current() is advisory[0]


def test_rtt_samples_recorded():
    sim = Simulator()
    manager = RouteManager(sim, [make_route("a")])
    manager.report_rtt(1e-3)
    manager.report_rtt(2e-3)
    assert manager.rtt_samples.count == 2
