"""Unit tests for the timestamp-driven playout buffer (§8 future work)."""

import pytest

from repro.sim.engine import Simulator
from repro.transport.playout import PlayoutBuffer, _stamp_delta_ms
from repro.transport.timestamps import TIMESTAMP_MODULUS


def test_stamp_delta_simple_and_wrapped():
    assert _stamp_delta_ms(150, 100) == 50
    assert _stamp_delta_ms(100, 150) == -50
    assert _stamp_delta_ms(10, TIMESTAMP_MODULUS - 10) == 20


def feed(sim, buffer, arrivals):
    """arrivals: list of (arrival_time_s, timestamp_ms)."""
    for arrival, stamp in arrivals:
        sim.at(arrival, buffer.submit, ("pkt", stamp), stamp)


def test_respacing_removes_jitter():
    """Packets created 10 ms apart but arriving with +-4 ms jitter play
    out at exactly 10 ms spacing."""
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(sim.now),
                           playout_delay=10e-3)
    # created at 0,10,20,30 ms; network delays 5,9,1,8 ms.
    arrivals = [(0.005, 1), (0.019, 11), (0.021, 21), (0.038, 31)]
    feed(sim, buffer, arrivals)
    sim.run()
    gaps = [b - a for a, b in zip(played, played[1:])]
    assert all(abs(g - 10e-3) < 1e-9 for g in gaps)
    assert buffer.stats.residual_jitter.maximum < 1e-9
    assert buffer.stats.delivered.count == 4


def test_playout_delay_absorbs_late_arrivals():
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(sim.now),
                           playout_delay=20e-3)
    # Second packet delayed by 18 ms — within the 20 ms budget.
    feed(sim, buffer, [(0.001, 1), (0.028, 11)])
    sim.run()
    assert buffer.stats.late.count == 0
    assert played[1] - played[0] == pytest.approx(10e-3)


def test_late_packet_beyond_budget():
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(sim.now),
                           playout_delay=5e-3)
    # Second packet arrives 30 ms late: playout instant already passed.
    feed(sim, buffer, [(0.001, 1), (0.046, 11)])
    sim.run()
    assert buffer.stats.late.count == 1
    assert len(played) == 2  # delivered immediately by default


def test_drop_late_policy():
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(item),
                           playout_delay=5e-3, drop_late=True)
    feed(sim, buffer, [(0.001, 1), (0.046, 11)])
    sim.run()
    assert buffer.stats.dropped_late.count == 1
    assert len(played) == 1


def test_reset_starts_new_talkspurt():
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(sim.now),
                           playout_delay=10e-3)
    feed(sim, buffer, [(0.001, 1)])
    sim.at(0.5, buffer.reset)
    # New spurt with a completely different timestamp base.
    feed(sim, buffer, [(1.0, 500_000)])
    sim.run()
    assert len(played) == 2
    assert played[1] == pytest.approx(1.0 + 10e-3)


def test_buffering_delay_recorded():
    sim = Simulator()
    buffer = PlayoutBuffer(sim, lambda item: None, playout_delay=15e-3)
    feed(sim, buffer, [(0.0, 1)])
    sim.run()
    assert buffer.stats.buffering_delay.mean == pytest.approx(15e-3)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PlayoutBuffer(sim, lambda item: None, playout_delay=-1.0)


def test_timestamp_wraparound_spacing():
    """Stamps that wrap the 32-bit field still space correctly."""
    sim = Simulator()
    played = []
    buffer = PlayoutBuffer(sim, lambda item: played.append(sim.now),
                           playout_delay=10e-3)
    near_wrap = TIMESTAMP_MODULUS - 5
    feed(sim, buffer, [(0.001, near_wrap), (0.012, 5)])  # +10 ms, wrapped
    sim.run()
    assert played[1] - played[0] == pytest.approx(10e-3)
