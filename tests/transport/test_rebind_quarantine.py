"""Route quarantine and refresh backoff in :class:`RouteManager`.

Regression tests for two failure modes the original round-robin had:
switching straight back onto a route that just died, and silently
retrying the directory forever when it keeps answering empty.
"""

from repro.directory.routes import Route
from repro.transport.rebind import RouteManager
from repro.viper.wire import HeaderSegment


class Clock:
    """A settable ``.now`` — RouteManager only reads the attribute."""

    def __init__(self) -> None:
        self.now = 0.0


def make_route(tag, prop=1e-3, rate=10e6):
    return Route(
        destination=f"dst-{tag}",
        segments=[HeaderSegment(port=1), HeaderSegment(port=0)],
        first_hop_port=1,
        first_hop_mac=None,
        bottleneck_bps=rate,
        propagation_delay=prop,
        hop_count=1,
    )


def test_failed_route_is_quarantined_not_revisited():
    """Three routes, a dies, b dies: the next switch must land on c —
    never back on a, whose cooldown has not expired."""
    clock = Clock()
    a, b, c = make_route("a"), make_route("b"), make_route("c")
    manager = RouteManager(clock, [a, b, c])
    manager.report_failure()  # a dies -> b
    assert manager.current() is b
    manager.report_failure()  # b dies -> must be c (a is quarantined)
    assert manager.current() is c
    assert manager.quarantined() == [a, b]
    assert manager.quarantines.count == 2


def test_cooldown_expiry_makes_a_route_eligible_again():
    clock = Clock()
    a, b = make_route("a"), make_route("b")
    manager = RouteManager(clock, [a, b], quarantine_base_s=0.25)
    manager.report_failure()  # a quarantined until 0.25 -> b
    clock.now = 0.3  # a's cooldown expired: re-probe allowed
    manager.report_failure()  # b dies -> a is eligible again
    assert manager.current() is a
    assert manager.quarantined() == [b]


def test_repeated_failures_grow_the_cooldown_exponentially():
    clock = Clock()
    a, b = make_route("a"), make_route("b")
    manager = RouteManager(
        clock, [a, b], quarantine_base_s=0.25, quarantine_factor=2.0,
    )
    manager.report_failure()  # a: 1st failure, cooldown 0.25
    until_first = manager._health[0].quarantined_until
    clock.now = 0.3
    manager.report_failure()  # b dies -> back to a
    assert manager.current() is a
    manager.report_failure()  # a again: 2nd failure, cooldown 0.5
    until_second = manager._health[0].quarantined_until
    assert until_second - clock.now == 2 * (until_first - 0.0)


def test_all_quarantined_falls_back_to_earliest_expiry():
    clock = Clock()
    a, b = make_route("a"), make_route("b")
    manager = RouteManager(clock, [a, b])
    manager.report_failure()  # a -> b
    manager.report_failure()  # b -> both quarantined; a expires first
    assert manager.current() is a


def test_good_rtt_pardons_the_current_route():
    clock = Clock()
    a, b = make_route("a"), make_route("b")
    manager = RouteManager(clock, [a, b])
    manager.report_failure()  # a quarantined -> b
    manager.report_failure()  # b quarantined -> back to a (fallback)
    assert manager.current() is a
    base = a.expected_rtt(576)
    manager.report_rtt(base)  # a proves itself alive
    assert a not in manager.quarantined()
    assert b in manager.quarantined()


def test_empty_refresh_is_counted_and_backed_off():
    """An empty directory answer increments ``rebind_refresh_empty``
    and blocks re-queries until the backoff expires."""
    clock = Clock()
    calls = []

    def refresher():
        calls.append(clock.now)
        return []

    manager = RouteManager(
        clock, [make_route("only")], refresher=refresher,
        refresh_backoff_base_s=0.25,
    )
    manager.report_failure()  # single route -> refresh -> empty
    assert manager.refresh_empty.count == 1
    assert len(calls) == 1
    manager.report_failure()  # inside the backoff: refresher not hit
    assert len(calls) == 1
    assert manager.refresh_empty.count == 1
    clock.now = 0.3  # backoff expired
    manager.report_failure()
    assert len(calls) == 2
    assert manager.refresh_empty.count == 2


def test_successful_refresh_resets_backoff_and_health():
    clock = Clock()
    fresh = [make_route("fresh1"), make_route("fresh2")]
    answers = [[], fresh]
    calls = []

    def refresher():
        calls.append(clock.now)
        return answers.pop(0)

    manager = RouteManager(
        clock, [make_route("stale")], refresher=refresher,
        refresh_backoff_base_s=0.25,
    )
    manager.report_failure()  # empty answer, backoff armed
    clock.now = 0.5
    manager.report_failure()  # fresh routes adopted
    assert manager.current() is fresh[0]
    assert manager.quarantined() == []
    assert manager._refresh_blocked_until == 0.0


def test_all_quarantined_consults_the_refresher_before_reprobing():
    """When every alternate is dead the manager asks the directory
    *first* — only a useless answer forces a re-probe."""
    clock = Clock()
    fresh = [make_route("fresh1"), make_route("fresh2")]
    manager = RouteManager(
        clock, [make_route("a"), make_route("b")],
        refresher=lambda: fresh,
    )
    manager.report_failure()  # a -> b
    manager.report_failure()  # b -> all quarantined -> refresh
    assert manager.current() is fresh[0]
