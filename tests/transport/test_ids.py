"""Unit tests for 64-bit entity identifiers (§4.1)."""

import pytest

from repro.transport.ids import EntityId, EntityIdAllocator


def test_entity_id_range():
    assert EntityId(1) == 1
    assert EntityId((1 << 64) - 1)
    with pytest.raises(ValueError):
        EntityId(0)
    with pytest.raises(ValueError):
        EntityId(1 << 64)


def test_allocator_uniqueness():
    allocator = EntityIdAllocator("domain")
    ids = {allocator.allocate() for _ in range(1000)}
    assert len(ids) == 1000


def test_allocator_deterministic_per_domain():
    a = EntityIdAllocator("d1").allocate("host")
    b = EntityIdAllocator("d1").allocate("host")
    assert a == b


def test_allocator_domains_disjoint():
    a = EntityIdAllocator("d1").allocate("host")
    b = EntityIdAllocator("d2").allocate("host")
    assert a != b


def test_entity_id_is_an_int():
    entity = EntityIdAllocator().allocate()
    assert isinstance(entity, int)
    assert entity.bit_length() <= 64
