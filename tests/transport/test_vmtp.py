"""Integration-grade unit tests for the VMTP-like transport (§4)."""


from repro.scenarios import build_sirpent_line, build_sirpent_parallel
from repro.transport import RouteManager, TransportConfig
from repro.transport.timestamps import TimestampPolicy


def setup_pair(scenario, handler=lambda m: (b"pong", 200), config=None):
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    entity = server.create_entity(handler, hint="server")
    routes = scenario.vmtp_routes("src", "dst", k=3)
    manager = RouteManager(scenario.sim, routes)
    return client, server, entity, manager


def test_small_transaction_completes():
    scenario = build_sirpent_line(n_routers=2)
    client, server, entity, manager = setup_pair(scenario)
    results = []
    client.transact(manager, entity, b"ping", 128, results.append)
    scenario.sim.run(until=1.0)
    assert results[0].ok
    assert results[0].retries == 0
    assert results[0].response_size == 200
    assert client.stats.transactions_ok.count == 1


def test_multi_member_group_request():
    scenario = build_sirpent_line(n_routers=2)
    client, server, entity, manager = setup_pair(scenario)
    results = []
    client.transact(manager, entity, b"big", 5000, results.append)  # 5 members
    scenario.sim.run(until=1.0)
    assert results[0].ok
    assert client.stats.sent_pdus.count == 5
    assert server.stats.received_pdus.count == 5


def test_large_response_group():
    scenario = build_sirpent_line(n_routers=1)
    client, server, entity, manager = setup_pair(
        scenario, handler=lambda m: (b"bulk", 4500)
    )
    results = []
    client.transact(manager, entity, b"get", 64, results.append)
    scenario.sim.run(until=1.0)
    assert results[0].ok
    assert results[0].response_size == 4500


def test_handler_sees_assembled_request():
    scenario = build_sirpent_line(n_routers=1)
    seen = []

    def handler(message):
        seen.append(message)
        return b"ok", 10

    client, _server, entity, manager = setup_pair(scenario, handler=handler)
    client.transact(manager, entity, b"payload", 2500, lambda r: None)
    scenario.sim.run(until=1.0)
    assert seen[0].total_size == 2500
    assert len(seen[0].payload_parts) == 3


def test_unknown_entity_is_misdelivery():
    scenario = build_sirpent_line(n_routers=1)
    client, server, _entity, manager = setup_pair(scenario)
    from repro.transport.ids import EntityId

    bogus = EntityId(0xDEAD_BEEF_DEAD_BEEF)
    results = []
    client.transact(manager, bogus, b"x", 64, results.append)
    scenario.sim.run(until=2.0)
    assert not results[0].ok
    assert server.stats.misdelivered.count > 0


def test_retransmission_after_loss():
    """Fail the path briefly: the client retries and succeeds."""
    scenario = build_sirpent_line(n_routers=2)
    client, server, entity, manager = setup_pair(scenario)
    results = []
    link_name = "r1--r2"
    scenario.topology.fail_link(link_name)
    scenario.sim.after(20e-3, scenario.topology.restore_link, link_name)
    client.transact(manager, entity, b"persist", 256, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert results[0].retries >= 1
    assert client.stats.retransmissions.count >= 1


def test_route_switch_on_persistent_failure():
    """With a dead primary path and a live alternate, retries exhaust
    the route and the manager rebinds (§6.3)."""
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=100e-6)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 50), hint="server")
    routes = scenario.vmtp_routes("src", "dst", k=2)
    assert len(routes) == 2
    manager = RouteManager(scenario.sim, routes)
    scenario.topology.fail_link("rA--p1")  # kill the primary path
    results = []
    client.transact(manager, entity, b"x", 128, results.append)
    scenario.sim.run(until=5.0)
    assert results[0].ok
    assert results[0].route_switches >= 1
    assert manager.switches.count >= 1


def test_duplicate_request_answered_from_cache():
    scenario = build_sirpent_line(n_routers=1)
    calls = []

    def handler(message):
        calls.append(message.transaction_id)
        return b"ok", 20

    client, server, entity, manager = setup_pair(scenario, handler=handler)
    # Delay the response so the client times out and retransmits: use a
    # tiny timeout configuration instead — simpler: drop the response
    # once by failing the reverse path just after the request lands.
    results = []
    client.transact(manager, entity, b"x", 64, results.append)
    scenario.sim.run(until=1.0)
    assert results[0].ok
    first_tx = calls[0]
    # Re-deliver the same request artificially: server must not re-run
    # the handler.
    assert server.stats.duplicate_requests.count == 0
    assert calls.count(first_tx) == 1


def test_stale_packets_rejected_by_mpl():
    """A packet older than the acceptance window is discarded (§4.2)."""
    config = TransportConfig(mpl=TimestampPolicy(max_age_ms=50))
    scenario = build_sirpent_line(n_routers=1)
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    entity = server.create_entity(lambda m: (b"ok", 10), hint="server")
    routes = scenario.vmtp_routes("src", "dst")
    manager = RouteManager(scenario.sim, routes)

    # Build a PDU now but deliver it 200 ms later by stalling the send.
    from repro.transport.vmtp import PduKind, VmtpPdu

    pdu = VmtpPdu(
        kind=PduKind.REQUEST, transaction_id=999,
        src_entity=client.create_entity(None), dst_entity=entity,
        member_index=0, group_count=1, timestamp=client.clock.stamp(),
        reply_socket=1, user_size=10, user_data=b"old",
    )
    scenario.sim.after(
        0.2, lambda: scenario.hosts["src"].send(routes[0], pdu, 82)
    )
    scenario.sim.run(until=1.0)
    assert server.stats.lifetime_rejects.count == 1


def test_rtt_reported_to_route_manager():
    scenario = build_sirpent_line(n_routers=2)
    client, _server, entity, manager = setup_pair(scenario)
    client.transact(manager, entity, b"x", 100, lambda r: None)
    scenario.sim.run(until=1.0)
    assert manager.rtt_samples.count == 1
    assert client.stats.rtt.count == 1


def test_paced_members_are_spaced():
    """Members of one group leave with rate-controlled gaps."""
    config = TransportConfig(rate_bps=1e6)  # slow pacing: ~8.7ms per KB
    scenario = build_sirpent_line(n_routers=1, rate_bps=100e6)
    client, _server, entity, manager = setup_pair(scenario, config=config)
    results = []
    client.transact(manager, entity, b"x", 3000, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    # 3 members at ~1096*8/1e6 ≈ 8.8ms apart: RTT must exceed 17 ms.
    assert results[0].rtt > 15e-3
