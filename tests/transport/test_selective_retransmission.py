"""Targeted tests of selective retransmission (§4.3), both directions."""


from repro.scenarios import build_sirpent_line
from repro.transport import RouteManager, TransportConfig


def drop_nth(channel, indices):
    """Swallow the packets at the given 0-based transmit indices."""
    original = channel.transmit
    counter = {"n": -1}

    def transmit(packet, size, header_bytes, **kwargs):
        counter["n"] += 1
        tx = original(packet, size, header_bytes, **kwargs)
        if counter["n"] in indices:
            for event in (tx.header_event, tx.complete_event):
                if event is not None:
                    event.cancel()
        return tx

    channel.transmit = transmit
    return counter


def setup(config=None, reply_size=64):
    scenario = build_sirpent_line(n_routers=1)
    config = config or TransportConfig(base_timeout=100e-3, nak_delay=3e-3)
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    calls = []

    def handler(message):
        calls.append(message)
        return b"reply", reply_size

    entity = server.create_entity(handler, hint="server")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst"))
    return scenario, client, server, entity, manager, calls


def test_lost_request_member_recovered_by_server_nak():
    """Drop one member of a 4-member request: the server NAKs the gap
    and the client resends ONLY that member — well before the client's
    own (long) retransmission timer."""
    scenario, client, server, entity, manager, calls = setup()
    # src->r1 channel: member index 1 of the first group dies.
    drop_nth(scenario.topology.links["src--r1"].a_to_b, {1})
    results = []
    client.transact(manager, entity, b"big", 4000, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert len(calls) == 1
    assert calls[0].total_size == 4000
    # Selective: the client sent 4 + 1 retransmitted member, not 8.
    assert client.stats.sent_pdus.count == 5
    assert server.stats.naks_sent.count >= 1
    assert client.stats.retransmissions.count == 1
    # The recovery happened NAK-fast (well under the 100 ms timer).
    assert results[0].rtt < 50e-3


def test_lost_response_member_recovered_by_client_nak():
    """Drop one member of a multi-member response: the client NAKs and
    the server resends only the missing member from its cache."""
    scenario, client, server, entity, manager, calls = setup(
        config=TransportConfig(base_timeout=15e-3, nak_delay=3e-3),
        reply_size=4000,
    )
    # r1->dst... the response travels dst->r1->src; drop on dst->r1.
    # The response members are transmit indices 0..3 on that channel.
    drop_nth(scenario.topology.links["r1--dst"].b_to_a, {2})
    results = []
    client.transact(manager, entity, b"get", 64, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert results[0].response_size == 4000
    assert len(calls) == 1  # handler ran once; retransmit came from cache
    assert client.stats.naks_sent.count >= 1
    assert server.stats.retransmissions.count >= 1


def test_multiple_lost_members_one_nak_round():
    scenario, client, server, entity, manager, calls = setup()
    drop_nth(scenario.topology.links["src--r1"].a_to_b, {0, 2})
    results = []
    client.transact(manager, entity, b"big", 4000, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert len(calls) == 1
    # 4 originals + exactly the 2 missing members.
    assert client.stats.sent_pdus.count == 6
