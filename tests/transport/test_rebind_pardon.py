"""Rebind pardons: proof-of-life RTTs clear a route's failure record.

A good round trip on a route carrying recorded failures (or an armed
quarantine backoff) is a *pardon* — observable via the
``rebind_pardons`` counter and a ``rebind_pardon`` flight-recorder
event.  Routine good RTTs on a healthy route must stay silent, so the
counter measures actual recoveries, not traffic volume.
"""

from repro.directory.routes import Route
from repro.obs.recorder import FlightRecorder
from repro.transport.rebind import RouteManager
from repro.viper.wire import HeaderSegment


class Clock:
    def __init__(self) -> None:
        self.now = 0.0


def make_route(tag, prop=1e-3, rate=10e6):
    return Route(
        destination=f"dst-{tag}",
        segments=[HeaderSegment(port=1), HeaderSegment(port=0)],
        first_hop_port=1,
        first_hop_mac=None,
        bottleneck_bps=rate,
        propagation_delay=prop,
        hop_count=1,
    )


def good_rtt(route):
    """An RTT comfortably under the degradation threshold."""
    return route.expected_rtt(576) * 0.5


def test_good_rtt_after_failure_pardons_and_records():
    clock = Clock()
    route = make_route("a")
    manager = RouteManager(clock, [route])
    recorder = FlightRecorder(clock=lambda: clock.now)
    manager.recorder = recorder

    manager.report_failure()  # only route: quarantined in place
    assert manager.quarantined() == [route]
    manager.report_rtt(good_rtt(route))

    assert manager.pardons.count == 1
    assert manager.quarantined() == []  # the cooldown was wiped
    pardons = [e for e in recorder.events() if e.name == "rebind_pardon"]
    assert len(pardons) == 1
    assert pardons[0].fields["failures"] == 1


def test_healthy_route_good_rtts_stay_silent():
    clock = Clock()
    route = make_route("a")
    manager = RouteManager(clock, [route])
    recorder = FlightRecorder(clock=lambda: clock.now)
    manager.recorder = recorder

    for _ in range(5):
        manager.report_rtt(good_rtt(route))

    assert manager.pardons.count == 0
    assert not [e for e in recorder.events() if e.name == "rebind_pardon"]


def test_pardon_fires_once_per_recovery_not_per_rtt():
    clock = Clock()
    route = make_route("a")
    manager = RouteManager(clock, [route])

    manager.report_failure()
    manager.report_rtt(good_rtt(route))  # the pardon
    manager.report_rtt(good_rtt(route))  # already healthy: silent
    manager.report_rtt(good_rtt(route))
    assert manager.pardons.count == 1

    manager.report_failure()  # a second incident...
    manager.report_rtt(good_rtt(route))
    assert manager.pardons.count == 2  # ...is a second pardon


def test_pardon_resets_the_quarantine_exponent():
    """After a pardon the next failure starts the backoff from scratch."""
    clock = Clock()
    a, b = make_route("a"), make_route("b")
    manager = RouteManager(
        clock, [a, b], quarantine_base_s=0.25, quarantine_factor=2.0
    )
    manager.report_failure()          # a: failure #1, cooldown 0.25 -> b
    clock.now = 0.3
    manager.report_failure()          # b dies -> back to a (eligible)
    assert manager.current() is a
    manager.report_rtt(good_rtt(a))   # pardon a: failures wiped
    assert manager.pardons.count == 1
    clock.now = 1.0
    manager.report_failure()          # a again: exponent restarted
    # Cooldown is base * factor^0 = 0.25s, not 0.5s.
    assert manager._health[0].quarantined_until == 1.25
