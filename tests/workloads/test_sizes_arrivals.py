"""Unit tests for packet-size mixtures and arrival processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import (
    OnOffArrivals,
    PoissonArrivals,
    rate_for_utilization,
)
from repro.workloads.sizes import PacketSizeMixture


class TestPacketSizeMixture:
    def test_mean_formula(self):
        mixture = PacketSizeMixture(min_size=64, max_size=1500)
        expected = 0.5 * 64 + 0.25 * 1500 + 0.25 * (64 + 1500) / 2
        assert mixture.mean() == pytest.approx(expected)
        # With a tiny minimum the 3/8-of-max rule emerges (§6.2).
        near_zero = PacketSizeMixture(min_size=1, max_size=2048)
        assert near_zero.mean() == pytest.approx(3 / 8 * 2048, rel=0.01)

    def test_samples_match_mixture(self):
        rng = RngStreams(5).stream("sizes")
        mixture = PacketSizeMixture(min_size=64, max_size=1500)
        samples = mixture.samples(rng, 20000)
        fraction_min = samples.count(64) / len(samples)
        fraction_max = samples.count(1500) / len(samples)
        assert 0.47 < fraction_min < 0.53
        assert 0.22 < fraction_max < 0.28
        assert all(64 <= s <= 1500 for s in samples)
        empirical_mean = sum(samples) / len(samples)
        assert empirical_mean == pytest.approx(mixture.mean(), rel=0.03)

    def test_variance_positive_and_cv(self):
        mixture = PacketSizeMixture(64, 1500)
        assert mixture.variance() > 0
        # The mixture is noticeably more variable than deterministic
        # service but in the same ballpark as exponential.
        assert 0.5 < mixture.squared_cv() < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketSizeMixture(min_size=0, max_size=100)
        with pytest.raises(ValueError):
            PacketSizeMixture(100, 50)
        with pytest.raises(ValueError):
            PacketSizeMixture(64, 1500, p_min=0.9, p_max=0.2)


class TestRateForUtilization:
    def test_formula(self):
        # 50% of 10 Mbps with 625-byte packets = 1000 pps.
        assert rate_for_utilization(0.5, 10e6, 625) == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rate_for_utilization(0.0, 1e6, 100)
        with pytest.raises(ValueError):
            rate_for_utilization(1.0, 1e6, 100)
        with pytest.raises(ValueError):
            rate_for_utilization(0.5, 1e6, 0)


class TestPoissonArrivals:
    def test_rate_achieved(self):
        sim = Simulator()
        rng = RngStreams(9).stream("arrivals")
        emitted = []
        PoissonArrivals(sim, rate_pps=1000.0, emit=emitted.append,
                        rng=rng, fixed_size=100, stop_at=5.0)
        sim.run(until=5.0)
        assert 4500 < len(emitted) < 5500
        assert all(size == 100 for size in emitted)

    def test_stop(self):
        sim = Simulator()
        rng = RngStreams(9).stream("arrivals2")
        emitted = []
        process = PoissonArrivals(sim, 1000.0, emitted.append, rng,
                                  fixed_size=10)
        sim.after(1.0, process.stop)
        sim.run(until=5.0)
        assert 800 < len(emitted) < 1200

    def test_sizes_from_mixture(self):
        sim = Simulator()
        rng = RngStreams(9).stream("arrivals3")
        mixture = PacketSizeMixture(64, 1500)
        emitted = []
        PoissonArrivals(sim, 500.0, emitted.append, rng, sizes=mixture,
                        stop_at=2.0)
        sim.run(until=2.0)
        assert {64, 1500} & set(emitted)

    def test_requires_size_source(self):
        sim = Simulator()
        rng = RngStreams(9).stream("x")
        with pytest.raises(ValueError):
            PoissonArrivals(sim, 100.0, lambda s: None, rng)


class TestOnOffArrivals:
    def test_mean_rate(self):
        sim = Simulator()
        rng = RngStreams(11).stream("onoff")
        emitted = []
        process = OnOffArrivals(
            sim, burst_rate_pps=10000.0, mean_on=10e-3, mean_off=90e-3,
            emit=emitted.append, rng=rng, fixed_size=100, stop_at=20.0,
        )
        assert process.mean_rate_pps() == pytest.approx(1000.0)
        sim.run(until=20.0)
        achieved = len(emitted) / 20.0
        assert 700 < achieved < 1300

    def test_burstiness(self):
        """Interarrival gaps are bimodal: back-to-back or long idle."""
        sim = Simulator()
        rng = RngStreams(11).stream("onoff2")
        times = []
        OnOffArrivals(
            sim, burst_rate_pps=10000.0, mean_on=5e-3, mean_off=50e-3,
            emit=lambda s: times.append(sim.now), rng=rng, fixed_size=1,
            stop_at=10.0,
        )
        sim.run(until=10.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        in_burst = sum(1 for g in gaps if g < 0.2e-3)
        long_idle = sum(1 for g in gaps if g > 10e-3)
        assert in_burst > 10 and long_idle > 10

    def test_validation(self):
        sim = Simulator()
        rng = RngStreams(1).stream("v")
        with pytest.raises(ValueError):
            OnOffArrivals(sim, 0, 1, 1, lambda s: None, rng, fixed_size=1)
        with pytest.raises(ValueError):
            OnOffArrivals(sim, 10, 1, 1, lambda s: None, rng)
