"""Unit tests for application workload models."""

import pytest

from repro.scenarios import build_sirpent_line
from repro.sim.rng import RngStreams
from repro.transport import RouteManager
from repro.workloads.apps import (
    FileTransferApp,
    JitterMeter,
    TransactionApp,
    VideoStreamApp,
)


def setup(n_routers=1):
    scenario = build_sirpent_line(n_routers=n_routers)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 100), hint="server")
    manager = RouteManager(
        scenario.sim, scenario.vmtp_routes("src", "dst", k=2)
    )
    return scenario, client, entity, manager


def test_transaction_app_closed_loop():
    scenario, client, entity, manager = setup()
    rng = RngStreams(3).stream("app")
    app = TransactionApp(
        scenario.sim, client, manager, entity, rng,
        request_size=256, mean_think=5e-3, max_transactions=10,
    )
    scenario.sim.run(until=5.0)
    assert app.completed.count == 10
    assert app.failed.count == 0
    assert app.response_time.count == 10
    assert app.response_time.mean > 0


def test_transaction_app_stop():
    scenario, client, entity, manager = setup()
    rng = RngStreams(3).stream("app2")
    app = TransactionApp(scenario.sim, client, manager, entity, rng,
                         mean_think=1e-3)
    scenario.sim.after(0.2, app.stop)
    scenario.sim.run(until=1.0)
    done_by_stop = app.completed.count
    scenario.sim.run(until=2.0)
    assert app.completed.count <= done_by_stop + 1  # at most one in flight


def test_file_transfer_moves_all_bytes():
    scenario, client, entity, manager = setup()
    finished = []
    app = FileTransferApp(
        scenario.sim, client, manager, entity,
        total_bytes=100_000, chunk_bytes=16_384,
        on_complete=finished.append,
    )
    scenario.sim.run(until=30.0)
    assert finished and not app.failed
    assert app.moved == 100_000
    assert app.throughput_bps() > 1e5


def test_file_transfer_throughput_bounded_by_link():
    scenario, client, entity, manager = setup()
    app = FileTransferApp(
        scenario.sim, client, manager, entity, total_bytes=200_000,
    )
    scenario.sim.run(until=60.0)
    assert app.finished_at is not None
    assert app.throughput_bps() < 10e6  # cannot beat the wire


def test_video_stream_and_jitter_meter():
    scenario = build_sirpent_line(n_routers=1)
    route = scenario.routes("src", "dst", dest_socket=0)[0]
    meter = JitterMeter(expected_interval=1e-3)
    scenario.hosts["dst"].bind(0, meter.on_delivery)
    app = VideoStreamApp(
        scenario.sim, scenario.hosts["src"], route,
        frame_bytes=500, frame_interval=1e-3, duration=0.1,
    )
    scenario.sim.run(until=1.0)
    assert app.sent.count == pytest.approx(100, abs=2)
    assert meter.received.count == app.sent.count
    # Idle network: jitter is essentially zero.
    assert meter.jitter.mean < 10e-6


def test_video_jitter_under_cross_traffic():
    """Preemptive priority keeps video jitter low even with bulk
    competition on the same path (the §2.1 type-of-service story)."""
    scenario = build_sirpent_line(n_routers=1, extra_host_pairs=1)
    video_route = scenario.routes("src", "dst", dest_socket=0)[0]
    meter = JitterMeter(expected_interval=1e-3)
    scenario.hosts["dst"].bind(0, meter.on_delivery)
    VideoStreamApp(
        scenario.sim, scenario.hosts["src"], video_route,
        frame_bytes=500, frame_interval=1e-3, duration=0.5,
    )
    # Bulk flood from src2 to dst2 crossing the same routers.
    bulk_client = scenario.transport("src2")
    bulk_server = scenario.transport("dst2")
    bulk_entity = bulk_server.create_entity(lambda m: (b"", 1), hint="sink")
    bulk_manager = RouteManager(
        scenario.sim, scenario.vmtp_routes("src2", "dst2")
    )
    FileTransferApp(
        scenario.sim, bulk_client, bulk_manager, bulk_entity,
        total_bytes=1_000_000,
    )
    scenario.sim.run(until=2.0)
    assert meter.received.count > 400
    # Preemption caps jitter well below a bulk packet's serialization.
    assert meter.jitter.quantile(0.95) < 1e-3
