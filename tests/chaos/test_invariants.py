"""InvariantChecker: each of the five invariants trips on purpose."""

import pytest

from repro.chaos.invariants import (
    InvariantChecker,
    InvariantViolationError,
    SoakReport,
    TxRecord,
)
from repro.chaos.plan import FaultPlan, FaultSpec


def plan(retry_budget=4, recovery_slo_s=1.0):
    return FaultPlan(
        seed=1,
        specs=(
            FaultSpec("drop", "a->b", onset_s=0.0, duration_s=2.0,
                      rate=0.5),
        ),
        retry_budget=retry_budget,
        recovery_slo_s=recovery_slo_s,
        name="unit",
    )


def ok_tx(txid, finished_s=2.5, retries=0):
    return TxRecord(txid=txid, started_s=finished_s - 0.01,
                    finished_s=finished_s, ok=True, retries=retries)


def report(p, **overrides):
    base = dict(
        plan=p, substrate="unit", duration_s=5.0,
        transactions=[ok_tx(0), ok_tx(1)],
        delivery_counts={"tx-0": 1, "tx-1": 1},
        fault_log=[],
    )
    base.update(overrides)
    return SoakReport(**base)


def names(violations):
    return [v.invariant for v in violations]


def test_clean_report_passes():
    p = plan()
    checker = InvariantChecker(p)
    assert checker.check(report(p)) == []
    checker.assert_ok(report(p))  # must not raise


def test_duplicate_delivery_detected():
    p = plan()
    violations = InvariantChecker(p).check(
        report(p, delivery_counts={"tx-0": 2, "tx-1": 1})
    )
    assert names(violations) == ["no_duplicate_delivery"]
    assert "2 times" in violations[0].detail


def test_unresolved_transaction_detected():
    p = plan()
    hung = TxRecord(txid=9, started_s=0.0, finished_s=-1.0, ok=False)
    violations = InvariantChecker(p).check(
        report(p, transactions=[ok_tx(0), hung])
    )
    assert names(violations) == ["clean_outcome"]


def test_failed_with_named_error_is_resolved():
    p = plan()
    failed = TxRecord(txid=9, started_s=0.0, finished_s=0.4, ok=False,
                      error="retries exhausted")
    assert InvariantChecker(p).check(
        report(p, transactions=[ok_tx(0), failed])
    ) == []


def test_retry_budget_violation():
    p = plan(retry_budget=4)
    violations = InvariantChecker(p).check(
        report(p, transactions=[ok_tx(0, retries=5), ok_tx(1)])
    )
    assert names(violations) == ["retry_budget"]


def test_recovery_slo_violation_late_and_never():
    p = plan(recovery_slo_s=1.0)  # faults end at 2.0
    late = InvariantChecker(p).check(
        report(p, transactions=[ok_tx(0, finished_s=3.5)])
    )
    assert names(late) == ["recovery_slo"]
    never = InvariantChecker(p).check(
        report(p, transactions=[ok_tx(0, finished_s=1.0)])
    )
    assert names(never) == ["recovery_slo"]
    assert "no successful transaction" in never[0].detail


def test_retry_burst_detection():
    p = plan()
    storm = [
        {"event": "retry", "at": 1.0 + i * 1e-4, "node": "x"}
        for i in range(20)
    ]
    violations = InvariantChecker(p, burst_limit=12).check(
        report(p, fault_log=storm)
    )
    assert names(violations) == ["no_retry_bursts"]
    spread = [
        {"event": "retry", "at": i * 0.1, "node": "x"} for i in range(20)
    ]
    assert InvariantChecker(p, burst_limit=12).check(
        report(p, fault_log=spread)
    ) == []


def test_assert_ok_raises_with_every_violation_listed():
    p = plan(retry_budget=1)
    bad = report(
        p,
        transactions=[ok_tx(0, finished_s=3.5, retries=9)],
        delivery_counts={"tx-0": 3},
    )
    with pytest.raises(InvariantViolationError) as excinfo:
        InvariantChecker(p).assert_ok(bad)
    message = str(excinfo.value)
    for invariant in ("no_duplicate_delivery", "retry_budget",
                      "recovery_slo"):
        assert invariant in message
