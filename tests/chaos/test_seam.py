"""FaultInjector: the one seam both substrates interrogate."""

import pytest

from repro.chaos.plan import FaultPlan, FaultSpec, PlanError
from repro.chaos.seam import DELIVER, FaultInjector
from repro.obs.registry import MetricsRegistry

EDGES = [("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")]


def drop_plan(rate=0.5, seed=9):
    return FaultPlan(seed=seed, specs=(
        FaultSpec("drop", "a->b", onset_s=0.0, duration_s=5.0, rate=rate),
    ))


def started(injector):
    """Apply every START event (activate all faults)."""
    for event in injector.events:
        if event.action == "start":
            injector.apply(event, event.t)
    return injector


def fates(injector, link, n=200):
    return [injector.decide(link).drop for _ in range(n)]


def test_quiet_links_deliver_untouched():
    injector = FaultInjector(drop_plan(), EDGES)
    # No events applied yet: everything passes, and the shared
    # no-fault decision object is used (hot-path identity).
    assert injector.decide("a->b") is DELIVER
    assert injector.decide("b->c") is DELIVER
    assert injector.decide("not-a-link") is DELIVER


def test_per_packet_fates_are_seed_stable():
    """Same plan, two injectors: identical packet-by-packet fates —
    the property that lets a chaos failure be replayed."""
    one = started(FaultInjector(drop_plan(), EDGES))
    two = started(FaultInjector(drop_plan(), EDGES))
    assert fates(one, "a->b") == fates(two, "a->b")
    assert any(fates(started(FaultInjector(drop_plan(), EDGES)), "a->b"))


def test_fates_differ_across_seeds_and_links():
    one = started(FaultInjector(drop_plan(seed=1), EDGES))
    two = started(FaultInjector(drop_plan(seed=2), EDGES))
    assert fates(one, "a->b", 400) != fates(two, "a->b", 400)


def test_other_links_unaffected_by_a_directed_fault():
    injector = started(FaultInjector(drop_plan(rate=1.0), EDGES))
    assert injector.decide("a->b").drop
    assert injector.decide("b->a") is DELIVER
    assert injector.decide("b->c") is DELIVER


def test_partition_drops_every_packet_both_ways():
    plan = FaultPlan(seed=3, specs=(
        FaultSpec("partition", "a<->b", onset_s=0.0, duration_s=1.0),
    ))
    injector = started(FaultInjector(plan, EDGES))
    assert all(fates(injector, "a->b", 50))
    assert all(fates(injector, "b->a", 50))
    assert injector.partition_drops.count == 100


def test_stop_event_lifts_the_fault():
    injector = FaultInjector(drop_plan(rate=1.0), EDGES)
    start, stop = injector.events
    injector.apply(start, 0.0)
    assert injector.decide("a->b").drop
    injector.apply(stop, 5.0)
    assert injector.decide("a->b") is DELIVER
    assert injector.active_faults.value == 0


def test_delay_and_duplicate_and_corrupt_decisions():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec("delay", "a->b", 0.0, 1.0, rate=1.0, delay_s=0.004),
        FaultSpec("duplicate", "a->b", 0.0, 1.0, rate=1.0),
        FaultSpec("corrupt", "a->b", 0.0, 1.0, rate=1.0),
    ))
    injector = started(FaultInjector(plan, EDGES))
    decision = injector.decide("a->b")
    assert decision.extra_delay_s == pytest.approx(0.004)
    assert decision.duplicate
    assert decision.corrupt_seed is not None
    assert not decision.clean


def test_unknown_plan_links_fail_eagerly():
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("drop", "a->z", 0.0, 1.0, rate=0.5),
    ))
    with pytest.raises(PlanError):
        FaultInjector(plan, EDGES)


def test_applied_ndjson_is_the_replay_identity():
    one = FaultInjector(drop_plan(), EDGES)
    two = FaultInjector(drop_plan(), EDGES)
    for injector in (one, two):
        for event in injector.events:
            injector.apply(event, event.t)
    assert one.applied_ndjson() == two.applied_ndjson()
    assert len(one.applied) == len(one.events)


def test_record_and_registry_integration():
    injector = FaultInjector(drop_plan(), EDGES)
    registry = MetricsRegistry()
    injector.register(registry, substrate="test")
    injector.record("retry", 1.2345678, node="x", gap_s=0.05)
    assert injector.fault_log[-1] == {
        "event": "retry", "at": 1.234568, "node": "x", "gap_s": 0.05,
    }
    assert "retry" in injector.fault_log_ndjson()
