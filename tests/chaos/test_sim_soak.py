"""Chaos on the simulator substrate: deterministic and sound."""

from repro.chaos import (
    InvariantChecker,
    chaos_plan,
    chaos_scenario,
    run_sim_soak,
)
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.sim_interp import SimFaultInterpreter


def test_sim_soak_is_deterministic():
    """Same plan, same seed: byte-identical applied schedule and the
    same transaction outcomes — 'replay seed 7' means exactly that."""
    plan = chaos_plan(7, duration_s=3.0)
    one = run_sim_soak(plan)
    two = run_sim_soak(plan)
    assert one.applied_ndjson == two.applied_ndjson
    assert one.ok_count == two.ok_count
    assert one.failed_count == two.failed_count
    assert [tx.retries for tx in one.transactions] == [
        tx.retries for tx in two.transactions
    ]


def test_sim_soak_passes_every_invariant():
    plan = chaos_plan(7, duration_s=3.0)
    report = run_sim_soak(plan)
    assert report.transactions
    assert report.ok_count > 0
    InvariantChecker(plan).assert_ok(report)


def test_full_drop_on_one_path_is_survived_via_the_alternate():
    """A 100%-drop window on one diamond path must not fail a single
    transaction: the client's held alternate (§6.3) absorbs it."""
    plan = FaultPlan(
        seed=3,
        specs=(
            FaultSpec("drop", "rA<->p1", onset_s=0.2, duration_s=1.0,
                      rate=1.0),
            FaultSpec("drop", "p1<->rB", onset_s=0.2, duration_s=1.0,
                      rate=1.0),
        ),
        name="one-path-dark",
    )
    report = run_sim_soak(plan)
    assert report.failed_count == 0
    assert report.ok_count == len(report.transactions)
    InvariantChecker(plan).assert_ok(report)


def test_duplicate_fault_never_reaches_the_application_twice():
    """Chaos duplicates frames on the wire; transport dedup must keep
    app-level delivery exactly-once (§4's server-side dedup)."""
    plan = FaultPlan(
        seed=5,
        specs=(
            FaultSpec("duplicate", "rA<->p1", onset_s=0.0, duration_s=2.0,
                      rate=1.0),
            FaultSpec("duplicate", "p1<->rB", onset_s=0.0, duration_s=2.0,
                      rate=1.0),
        ),
        name="dup-storm",
    )
    report = run_sim_soak(plan)
    assert report.ok_count > 0
    assert all(c == 1 for c in report.delivery_counts.values())


def test_router_crash_flushes_soft_state_only():
    """§2.2: a restarted router keeps nothing but config — its token
    and flow caches come back empty, and traffic still flows."""
    scenario = chaos_scenario(1)
    plan = FaultPlan(
        seed=9,
        specs=(
            FaultSpec("router_crash", "router:p1", onset_s=0.5,
                      duration_s=0.5),
        ),
        name="crash-p1",
    )
    interp = SimFaultInterpreter(scenario.sim, scenario.topology, plan)
    interp.schedule(0.0)
    router = scenario.topology.nodes["p1"]
    router.token_cache._entries[b"sentinel"] = object()
    scenario.sim.run(until=2.0)
    assert b"sentinel" not in router.token_cache._entries
    assert interp.injector.router_crashes.count == 1
    assert interp.injector.router_restarts.count == 1


def test_directory_outage_gates_the_refresher():
    plan = FaultPlan(
        seed=2,
        specs=(
            FaultSpec("directory_outage", "directory", onset_s=0.5,
                      duration_s=0.5),
        ),
        name="dir-out",
    )
    scenario = chaos_scenario(1)
    interp = SimFaultInterpreter(scenario.sim, scenario.topology, plan)
    interp.schedule(0.0)
    observed = {}
    scenario.sim.at(0.2, lambda: observed.setdefault("before", interp.directory_up))
    scenario.sim.at(0.7, lambda: observed.setdefault("during", interp.directory_up))
    scenario.sim.at(1.2, lambda: observed.setdefault("after", interp.directory_up))
    scenario.sim.run(until=2.0)
    assert observed == {"before": True, "during": False, "after": True}
