"""One plan, two substrates: the replay-identity acceptance test.

Marked ``live`` (binds loopback UDP/TCP) and ``chaos``: this is the
short-form version of the R01 soak — a couple of seconds of mixed
faults, enough to prove the seam, cheap enough for every test run.
"""

import pytest

from repro.chaos import InvariantChecker, chaos_plan, run_live_soak, run_sim_soak
from repro.chaos.plan import FaultPlan, FaultSpec

pytestmark = [pytest.mark.live, pytest.mark.chaos]


def short_plan(seed=13):
    """Mixed faults squeezed into ~2s: link chaos on both diamond
    paths, a router crash, a directory outage."""
    return chaos_plan(seed, duration_s=2.0, intensity=0.6)


def test_same_plan_applies_byte_identically_on_both_substrates():
    plan = short_plan()
    sim_report = run_sim_soak(plan)
    live_report = run_live_soak(plan)
    assert sim_report.applied_ndjson == live_report.applied_ndjson
    assert sim_report.applied_ndjson  # non-vacuous: events were applied
    assert sim_report.substrate == "sim"
    assert live_report.substrate == "live"


def test_live_soak_passes_every_invariant():
    plan = short_plan(seed=21)
    report = run_live_soak(plan)
    assert report.transactions
    assert report.ok_count > 0
    InvariantChecker(plan).assert_ok(report)


def test_live_partition_produces_no_synchronized_retry_bursts():
    """The acceptance criterion for jittered backoff: partition one
    diamond path under live traffic and assert the per-hop retries in
    the fault log never clump into a lockstep burst."""
    plan = FaultPlan(
        seed=17,
        specs=(
            FaultSpec("partition", "rA<->p1", onset_s=0.3, duration_s=0.8),
            FaultSpec("partition", "p1<->rB", onset_s=0.3, duration_s=0.8),
        ),
        name="live-partition",
    )
    report = run_live_soak(plan)
    retries = [e for e in report.fault_log if e.get("event") == "retry"]
    assert retries, "a partitioned path must provoke per-hop retries"
    checker = InvariantChecker(plan)
    violations = [
        v for v in checker.check(report)
        if v.invariant == "no_retry_bursts"
    ]
    assert violations == [], "\n".join(str(v) for v in violations)
    # And the endpoints' recorded gaps are not identical lockstep
    # values: jitter made every backoff schedule its own.
    gaps = [e["gap_s"] for e in retries if "gap_s" in e]
    if len(gaps) >= 3:
        assert len(set(gaps)) > 1
