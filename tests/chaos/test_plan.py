"""FaultPlan compilation: deterministic, validated, canonical."""

import pytest

from repro.chaos.plan import (
    DIRECTORY_TARGET,
    FaultPlan,
    FaultSpec,
    PlanError,
    START,
    STOP,
    expand_target,
)

EDGES = [("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")]


def sample_plan(seed=7):
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec("drop", "a->b", onset_s=1.0, duration_s=2.0, rate=0.3),
            FaultSpec("delay", "a<->b", onset_s=0.5, duration_s=1.0,
                      rate=0.5, delay_s=0.01),
            FaultSpec("partition", "b<->c", onset_s=3.0, duration_s=1.0),
            FaultSpec("router_crash", "router:b", onset_s=2.0,
                      duration_s=0.5),
            FaultSpec("directory_outage", DIRECTORY_TARGET, onset_s=0.2,
                      duration_s=0.4),
        ),
        name="sample",
    )


# -- determinism -------------------------------------------------------------


def test_same_seed_same_schedule():
    """The replay identity: one seed, one byte-stable schedule."""
    a, b = sample_plan(7), sample_plan(7)
    assert a.schedule() == b.schedule()
    assert a.to_ndjson() == b.to_ndjson()
    assert a.fingerprint() == b.fingerprint()


def test_generated_plans_are_pure_functions_of_their_arguments():
    kwargs = dict(
        duration_s=30.0, link_targets=("a<->b", "b<->c"),
        router_targets=("b",), directory=True,
    )
    assert (FaultPlan.generate(3, **kwargs).fingerprint()
            == FaultPlan.generate(3, **kwargs).fingerprint())
    assert (FaultPlan.generate(3, **kwargs).fingerprint()
            != FaultPlan.generate(4, **kwargs).fingerprint())


def test_spec_seeds_differ_per_spec_but_not_per_run():
    events = sample_plan().schedule()
    seeds = {e.spec_index: e.seed for e in events}
    assert len(set(seeds.values())) == len(seeds)
    assert seeds == {e.spec_index: e.seed for e in sample_plan().schedule()}


# -- schedule shape ----------------------------------------------------------


def test_every_spec_compiles_to_a_start_stop_pair():
    plan = sample_plan()
    events = plan.schedule()
    assert len(events) == 2 * len(plan.specs)
    for index, spec in enumerate(plan.specs):
        mine = [e for e in events if e.spec_index == index]
        assert [e.action for e in mine] == [START, STOP]
        assert mine[0].t == spec.onset_s
        assert mine[1].t == spec.onset_s + spec.duration_s


def test_schedule_sorted_with_stop_before_start_on_ties():
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("drop", "a->b", onset_s=0.0, duration_s=1.0, rate=0.5),
        FaultSpec("drop", "b->a", onset_s=1.0, duration_s=1.0, rate=0.5),
    ))
    actions_at_1 = [e.action for e in plan.schedule() if e.t == 1.0]
    assert actions_at_1 == [STOP, START]


def test_faults_end_and_scaled():
    plan = sample_plan()
    assert plan.faults_end_s() == 4.0
    half = plan.scaled(0.5)
    assert half.faults_end_s() == 2.0
    assert half.fingerprint() != plan.fingerprint()
    with pytest.raises(PlanError):
        plan.scaled(0.0)


# -- validation --------------------------------------------------------------


@pytest.mark.parametrize("spec", [
    FaultSpec("meteor", "a->b", 0.0, 1.0),
    FaultSpec("drop", "a->b", -1.0, 1.0, rate=0.5),
    FaultSpec("drop", "a->b", 0.0, 0.0, rate=0.5),
    FaultSpec("drop", "a->b", 0.0, 1.0, rate=0.0),
    FaultSpec("drop", "a->b", 0.0, 1.0, rate=1.5),
    FaultSpec("delay", "a->b", 0.0, 1.0, rate=0.5, delay_s=0.0),
    FaultSpec("directory_outage", "a->b", 0.0, 1.0),
    FaultSpec("router_crash", "b", 0.0, 1.0),
])
def test_invalid_specs_fail_at_plan_construction(spec):
    with pytest.raises(PlanError):
        FaultPlan(seed=1, specs=(spec,))


# -- target expansion --------------------------------------------------------


def test_expand_directed_and_bidirectional_targets():
    assert expand_target("a->b", EDGES) == ["a->b"]
    assert expand_target("a<->b", EDGES) == ["a->b", "b->a"]


def test_expand_node_target_touches_every_adjacent_link():
    assert expand_target("node:b", EDGES) == [
        "a->b", "b->a", "b->c", "c->b"
    ]


@pytest.mark.parametrize("target", ["a->z", "z<->a", "node:z", "gibberish"])
def test_expand_unknown_targets_raise(target):
    with pytest.raises(PlanError):
        expand_target(target, EDGES)
