"""Chaos on the directory cluster: shard failover under a rebind storm.

PR 5's engine gains a fourth entity fault, ``shard_failover``; this
file checks the fault's grammar, the seam hooks, and the headline
acceptance criterion — a soak that kills shard leaders mid-storm loses
zero acknowledged writes (the authoritative logs prove it) and settles
within the recovery SLO.
"""

import pytest

from repro.chaos import InvariantChecker
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.seam import FaultInjector
from repro.directory.cluster.chaos import (
    ClusterSoakConfig,
    run_cluster_soak,
    shard_failover_plan,
)

pytestmark = pytest.mark.chaos


def _plan(seed=11, failovers=2, duration_s=1.5):
    return shard_failover_plan(
        seed,
        tuple(f"shard-{n}" for n in range(4)),
        duration_s=duration_s,
        failovers=failovers,
    )


# -- the fault's grammar ---------------------------------------------------

def test_shard_failover_target_grammar_is_enforced():
    with pytest.raises(ValueError):
        FaultSpec(
            kind="shard_failover", target="router:r1",
            onset_s=0.1, duration_s=0.2,
        ).validate()


def test_plan_generator_emits_well_formed_plans():
    plan = _plan()
    assert len(plan.specs) == 2
    for spec in plan.specs:
        spec.validate()
        assert spec.kind == "shard_failover"
        assert spec.target.startswith("shard:shard-")


def test_seam_routes_shard_faults_to_the_hooks():
    plan = FaultPlan(
        seed=1,
        specs=(FaultSpec(
            kind="shard_failover", target="shard:shard-2",
            onset_s=0.1, duration_s=0.2,
        ),),
    )
    injector = FaultInjector(plan, edges=())
    calls = []
    injector.on_shard_down = lambda shard, at: calls.append(("down", shard))
    injector.on_shard_up = lambda shard, at: calls.append(("up", shard))
    for event in injector.events:
        injector.apply(event, at=event.t)
    assert calls == [("down", "shard-2"), ("up", "shard-2")]
    assert injector.shard_failovers.count == 1


# -- the soak --------------------------------------------------------------

def test_cluster_soak_is_deterministic():
    plan = _plan(seed=23)
    one = run_cluster_soak(plan)
    two = run_cluster_soak(plan)
    assert one.applied_ndjson == two.applied_ndjson
    assert one.ok_count == two.ok_count
    assert [tx.ok for tx in one.transactions] == [
        tx.ok for tx in two.transactions
    ]


def test_rebind_storm_across_failover_keeps_every_invariant():
    """The acceptance run: leaders die mid-storm, the rebind storm
    settles within the PR 5 recovery SLO, dedup holds (no request id
    executes twice), and retries never synchronize into bursts."""
    plan = _plan(seed=11, failovers=2)
    report = run_cluster_soak(plan)
    assert report.substrate == "cluster"
    assert report.ok_count > 100
    violations = InvariantChecker(plan).check(report)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_no_acknowledged_write_executes_twice():
    """delivery_counts come from the final authoritative logs — every
    request id at most once is the exactly-once witness."""
    report = run_cluster_soak(_plan(seed=42, failovers=3, duration_s=2.0))
    doubled = {
        rid: n for rid, n in report.delivery_counts.items() if n > 1
    }
    assert doubled == {}


def test_failovers_actually_happened_and_hurt_nobody():
    """The soak must not pass vacuously: leaders really were killed,
    promotions really ran, and yet every acknowledged rebind survived
    on the promoted leader."""
    plan = _plan(seed=11, failovers=2)
    config = ClusterSoakConfig()
    report = run_cluster_soak(plan, config)
    kinds = [
        entry.get("event") for entry in report.fault_log
        if isinstance(entry, dict)
    ]
    assert kinds.count("shard_leader_killed") == 2
    assert kinds.count("shard_promoted") == 2
    assert kinds.count("shard_replica_restarted") == 2
    # Failures during the storm are allowed (retries can exhaust while
    # a shard is leaderless); what is not allowed is a *lost* write —
    # covered by delivery_counts above — or a storm that never heals:
    tail = [tx for tx in report.transactions
            if tx.started_s >= plan.faults_end_s() + 0.2]
    assert tail and all(tx.ok for tx in tail)
