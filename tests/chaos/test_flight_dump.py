"""Flight-recorder forensics over chaos soaks.

The acceptance story: a fault plan mixing ``router_crash`` and
``shard_failover`` replays through the one chaos seam while every
component appends to one shared flight recorder; the resulting NDJSON
dump must reconstruct the full fault timeline — onset (the injector
applying the fault), detection (the leader observed dead), promotion
(the most-caught-up follower taking over), recovery (the crashed
entities back in service) — in causal order.
"""

import pytest

from repro.chaos.invariants import (
    InvariantChecker,
    InvariantViolationError,
    SoakReport,
    TxRecord,
)
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.seam import FaultInjector
from repro.chaos.soak import run_sim_soak
from repro.directory.cluster.chaos import (
    ClusterSoakConfig,
    run_cluster_soak,
    shard_failover_plan,
)
from repro.directory.cluster.cluster import DirectoryCluster
from repro.obs.recorder import FlightRecorder, fault_timeline, load_dump

pytestmark = pytest.mark.chaos


class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _mixed_plan() -> FaultPlan:
    return FaultPlan(
        seed=11,
        specs=(
            FaultSpec(kind="router_crash", target="router:p1",
                      onset_s=0.2, duration_s=0.4),
            FaultSpec(kind="shard_failover", target="shard:shard-0",
                      onset_s=0.5, duration_s=0.5),
        ),
        recovery_slo_s=2.0,
        retry_budget=16,
        name="mixed-crash-failover",
    )


def test_dump_reconstructs_mixed_fault_timeline():
    """router_crash + shard_failover in one plan, one ring, one story."""
    plan = _mixed_plan()
    clock = _Clock()
    recorder = FlightRecorder(clock=clock.now)
    injector = FaultInjector(plan, edges=())
    injector.recorder = recorder
    cluster = DirectoryCluster(shard_count=1, replication_factor=2)
    cluster.set_recorder(recorder)
    cluster.set_clock(clock.now)

    crashed = {}

    def shard_down(shard_id, at):
        replica = cluster.kill_shard_leader(shard_id)
        crashed[shard_id] = replica
        injector.record("shard_leader_killed", at, shard=shard_id,
                        replica=replica)
        promoted = cluster.fail_over(shard_id)
        injector.record("shard_promoted", at, shard=shard_id,
                        replica=promoted)

    def shard_up(shard_id, at):
        replica = crashed.pop(shard_id)
        replayed = cluster.restart_replica(shard_id, replica)
        injector.record("shard_replica_restarted", at, shard=shard_id,
                        replica=replica, replayed=replayed)

    # The live interpreter's restart path lands in the recorder via
    # LiveRouter.restart(); this harness stands in for that substrate.
    def router_restart(name, at):
        recorder.record("router_restarted", node=name, t=at, port=0)

    injector.on_shard_down = shard_down
    injector.on_shard_up = shard_up
    injector.on_router_restart = router_restart

    for event in injector.events:
        clock.t = event.t
        injector.apply(event, at=event.t)
    clock.t = plan.faults_end_s() + 0.1

    dump = recorder.dump_ndjson(
        last_s=clock.t, now=clock.t, reason="test_trigger"
    )
    header, events = load_dump(dump)
    assert header["reason"] == "test_trigger"

    timeline = fault_timeline(events)
    onsets = {e["kind"] for e in timeline["onset"]}
    assert onsets == {"router_crash", "shard_failover"}
    assert {e["event"] for e in timeline["detection"]} == {
        "shard_leader_killed", "leader_killed",
    }
    assert {e["event"] for e in timeline["promotion"]} == {
        "shard_promoted", "leader_promoted",
    }
    recovery_events = [e["event"] for e in timeline["recovery"]]
    assert "router_restarted" in recovery_events
    assert "shard_replica_restarted" in recovery_events
    assert "replica_restarted" in recovery_events
    # Both faults' STOP actions count as recovery.
    stops = [e for e in timeline["recovery"]
             if e["event"] == "fault_applied"]
    assert {e["kind"] for e in stops} == {"router_crash", "shard_failover"}

    # Causal order: the shard story's phases hold sequence order.
    def first_seq(phase, name):
        return min(e["seq"] for e in timeline[phase]
                   if e["event"] == name)

    assert (
        first_seq("onset", "fault_applied")
        < first_seq("detection", "shard_leader_killed")
        < first_seq("promotion", "leader_promoted")
        < first_seq("recovery", "shard_replica_restarted")
    )


def test_cluster_soak_report_carries_flight_dump():
    plan = shard_failover_plan(
        seed=5, shard_ids=("shard-0", "shard-1"), duration_s=1.0,
        failovers=2,
    )
    report = run_cluster_soak(plan, ClusterSoakConfig(shard_count=2))
    header, events = load_dump(report.flight_dump)
    assert header["reason"] == "soak_end"
    timeline = fault_timeline(events)
    assert timeline["onset"] and timeline["detection"]
    assert timeline["promotion"] and timeline["recovery"]
    # Workload activity is in the same ring as the fault story.
    assert any(e["event"] == "log_appended" for e in events)


def test_sim_soak_report_carries_flight_dump():
    plan = FaultPlan(
        seed=3,
        specs=(
            FaultSpec(kind="router_crash", target="router:p1",
                      onset_s=0.5, duration_s=0.5),
        ),
        recovery_slo_s=2.0,
        retry_budget=16,
        name="sim-crash",
    )
    report = run_sim_soak(plan, seed=3)
    header, events = load_dump(report.flight_dump)
    assert header["reason"] == "soak_end"
    timeline = fault_timeline(events)
    assert [e["kind"] for e in timeline["onset"]] == ["router_crash"]
    assert any(e.get("action") == "stop" for e in timeline["recovery"])


def test_invariant_violation_attaches_flight_dump():
    plan = _mixed_plan()
    recorder = FlightRecorder(clock=lambda: 0.0)
    recorder.record("fault_applied", node="chaos", t=0.2,
                    kind="router_crash", target="router:p1",
                    action="start")
    report = SoakReport(
        plan=plan, substrate="unit", duration_s=1.0,
        transactions=[TxRecord(txid=1, started_s=0.0, finished_s=-1.0,
                               ok=False)],
        flight_dump=recorder.dump_ndjson(now=0.3, reason="unit"),
    )
    checker = InvariantChecker(plan)
    with pytest.raises(InvariantViolationError) as excinfo:
        checker.assert_ok(report)
    message = str(excinfo.value)
    assert "flight recorder dump" in message
    assert '"fault_applied"' in message
