"""Stage-interaction tests for the sans-IO forwarding pipeline.

The pipeline's stages are individually simple; the bugs live where
they meet.  These tests pin the interactions the ISSUE calls out:

* logical **splice × truncation** ordering — the transit tail's header
  bytes must count against the egress MTU *before* the truncation
  decision is made;
* **multicast fan-out × token admission** — each fanned-out copy is
  admitted against the port it actually takes, so one unauthorized
  member drops without affecting its siblings.
"""

import pytest

from repro.core.logical import LogicalPortMap, SelectionPolicy
from repro.core.multicast import GroupPortMap, TREE_PORT, TreeBranch, encode_tree_info
from repro.dataplane import (
    Action,
    Capabilities,
    FlowCache,
    ForwardingPipeline,
    HopInput,
    MappingPortMap,
    PortProfile,
    UNKNOWN_IN_PORT,
)
from repro.tokens.cache import CachePolicy, TokenCache
from repro.tokens.capability import TokenMint
from repro.viper.wire import HeaderSegment


def make_pipeline(
    profiles,
    logical=None,
    groups=None,
    require_tokens=False,
    multicast=True,
    flow_cache=None,
):
    mint = TokenMint(b"secret:test", issuer="r1")
    token_cache = TokenCache(
        mint, policy=CachePolicy.OPTIMISTIC, require_tokens=require_tokens
    )
    pipeline = ForwardingPipeline(
        "r1",
        token_cache=token_cache,
        ports=MappingPortMap(dict(profiles)),
        logical=logical,
        groups=groups,
        flow_cache=flow_cache,
        capabilities=Capabilities(multicast=multicast),
    )
    return pipeline, mint


def hop(segment, wire_size=100, seg_count=3, in_port=7, now_ms=0):
    return HopInput(
        segment=segment, seg_count=seg_count, wire_size=wire_size,
        in_port=in_port, now_ms=now_ms,
    )


class TestSpliceTruncationOrdering:
    """Transit splice bytes are charged before the MTU check (§2.2 + §2)."""

    MTU = 104

    def build(self):
        logical = LogicalPortMap()
        # Logical port 9 -> splice [1, 2]: exit via physical port 1 now,
        # leave segment(port=2) in the route (4 extra header bytes).
        logical.add_transit(9, [HeaderSegment(port=1), HeaderSegment(port=2)])
        return make_pipeline(
            {1: PortProfile(mtu=self.MTU), 2: PortProfile(mtu=self.MTU)},
            logical=logical,
        )

    def test_plain_hop_fits_without_truncation(self):
        pipeline, _ = self.build()
        # wire 100 - stripped 4 + return 4 + back-length 2 = 102 <= 104.
        decision = pipeline.decide(hop(HeaderSegment(port=1), wire_size=100))
        assert decision.action is Action.FORWARD
        assert decision.truncate_to == 0

    def test_splice_tail_bytes_tip_the_same_packet_over_the_mtu(self):
        pipeline, _ = self.build()
        # Same 100-byte packet through the transit hop: the spliced
        # tail adds 4 header bytes -> 106 > 104, so the pipeline orders
        # a truncation the plain hop did not need.
        decision = pipeline.decide(hop(HeaderSegment(port=9), wire_size=100))
        assert decision.action is Action.FORWARD
        assert decision.out_port == 1
        assert [s.port for s in decision.splice_tail] == [2]
        assert decision.truncate_to == self.MTU

    def test_splice_tail_inherits_the_segment_priority(self):
        pipeline, _ = self.build()
        decision = pipeline.decide(
            hop(HeaderSegment(port=9, priority=5), wire_size=100)
        )
        assert decision.effective.priority == 5
        assert all(s.priority == 5 for s in decision.splice_tail)

    def test_unknown_arrival_port_charges_no_return_element(self):
        pipeline, _ = self.build()
        # No return segment (+4+2 bytes) when the arrival port is
        # unknown: 100 - 4 + 4 = 100 <= 104, no truncation.
        decision = pipeline.decide(
            hop(HeaderSegment(port=9), wire_size=100, in_port=UNKNOWN_IN_PORT)
        )
        assert decision.action is Action.FORWARD
        assert decision.return_segment is None
        assert decision.truncate_to == 0

    def test_mtu_zero_means_no_truncation_ever(self):
        logical = LogicalPortMap()
        logical.add_transit(9, [HeaderSegment(port=1), HeaderSegment(port=2)])
        pipeline, _ = make_pipeline(
            {1: PortProfile(mtu=0), 2: PortProfile(mtu=0)}, logical=logical
        )
        decision = pipeline.decide(
            hop(HeaderSegment(port=9), wire_size=1_000_000)
        )
        assert decision.truncate_to == 0


class TestMulticastTokenInteraction:
    """Fan-out happens before admission; each copy is admitted alone."""

    def build(self, members=(1, 2)):
        groups = GroupPortMap()
        groups.add_group(240, list(members))
        profiles = {m: PortProfile() for m in members}
        profiles[7] = PortProfile()  # the arrival port
        return make_pipeline(profiles, groups=groups, require_tokens=True)

    def test_one_unauthorized_member_drops_without_hurting_siblings(self):
        pipeline, mint = self.build()
        token = mint.mint(port=1, account=7)  # authorizes port 1 only
        group_seg = HeaderSegment(port=240, token=token)
        fanout = pipeline.decide(hop(group_seg, seg_count=2))
        assert fanout.action is Action.FANOUT
        assert not fanout.fanout_replaces_route
        assert sorted(b[0].port for b in fanout.branches) == [1, 2]
        # The driver re-runs each branch through the pipeline; the
        # admission verdicts must differ per member.
        verdicts = {}
        for branch in fanout.branches:
            decision = pipeline.decide(hop(branch[0], seg_count=2))
            verdicts[branch[0].port] = decision
        assert verdicts[1].action is Action.FORWARD
        assert verdicts[2].action is Action.DROP
        assert verdicts[2].reason == "token_reject"
        assert verdicts[2].drop_fields == {"port": 2}

    def test_group_expansion_skips_the_arrival_port(self):
        pipeline, _ = self.build(members=(1, 2, 7))
        fanout = pipeline.decide(
            hop(HeaderSegment(port=240), seg_count=2, in_port=7)
        )
        assert sorted(b[0].port for b in fanout.branches) == [1, 2]

    def test_tree_branches_replace_the_whole_route(self):
        pipeline, _ = make_pipeline({1: PortProfile(), 2: PortProfile()})
        info = encode_tree_info([
            TreeBranch([HeaderSegment(port=1), HeaderSegment(port=0)]),
            TreeBranch([HeaderSegment(port=2), HeaderSegment(port=0)]),
        ])
        decision = pipeline.decide(
            hop(HeaderSegment(port=TREE_PORT, portinfo=info), seg_count=2)
        )
        assert decision.action is Action.FANOUT
        assert decision.fanout_replaces_route
        assert len(decision.branches) == 2

    def test_multicast_off_capability_drops_instead_of_crashing(self):
        pipeline, _ = make_pipeline(
            {1: PortProfile()}, multicast=False,
            groups=None,
        )
        info = encode_tree_info([TreeBranch([HeaderSegment(port=1)])])
        tree = pipeline.decide(
            hop(HeaderSegment(port=TREE_PORT, portinfo=info))
        )
        assert tree.action is Action.DROP
        assert tree.reason == "multicast_unsupported"


class TestLateBindingNotCached:
    """Load-adaptive trunk picks are never frozen into the flow cache."""

    @pytest.mark.parametrize("policy,cacheable", [
        (SelectionPolicy.ROUND_ROBIN, False),
        (SelectionPolicy.FLOW_HASH, True),
    ])
    def test_only_deterministic_resolutions_install_flows(
        self, policy, cacheable
    ):
        logical = LogicalPortMap()
        logical.add_trunk(9, [1, 2], policy=policy)
        flow_cache = FlowCache(capacity=8, ttl_ms=10_000)
        pipeline, _ = make_pipeline(
            {1: PortProfile(), 2: PortProfile()},
            logical=logical, flow_cache=flow_cache,
        )
        first = pipeline.decide(hop(HeaderSegment(port=9)))
        second = pipeline.decide(hop(HeaderSegment(port=9)))
        assert first.action is Action.FORWARD
        assert second.flow_cache_hit is cacheable
        assert (len(flow_cache) > 0) is cacheable
