"""Flow-cache lifecycle: §2.2 soft state must actually be soft.

Every path by which a cached flow verdict can go stale is exercised:
TTL, token expiry, topology change (sim ``attach`` / live
``connect_port``), congestion rebind, and token-cache flush — plus the
accounting contract (flow hits keep charging the token's byte budget
and the ledger).
"""

from repro.dataplane import (
    Action,
    FlowCache,
    ForwardingPipeline,
    HopInput,
    MappingPortMap,
    PortProfile,
)
from repro.tokens.cache import CachePolicy, TokenCache
from repro.tokens.capability import TokenMint
from repro.viper.wire import HeaderSegment


def make_pipeline(ttl_ms=10_000, capacity=8, profiles=None):
    mint = TokenMint(b"secret:test", issuer="r1")
    token_cache = TokenCache(mint, policy=CachePolicy.OPTIMISTIC)
    flow_cache = FlowCache(capacity=capacity, ttl_ms=ttl_ms)
    pipeline = ForwardingPipeline(
        "r1",
        token_cache=token_cache,
        ports=MappingPortMap(
            profiles if profiles is not None
            else {1: PortProfile(), 2: PortProfile()}
        ),
        flow_cache=flow_cache,
    )
    return pipeline, mint, token_cache, flow_cache


def hop(segment, now_ms=0, wire_size=100, in_port=7):
    return HopInput(
        segment=segment, seg_count=3, wire_size=wire_size,
        in_port=in_port, now_ms=now_ms,
    )


class TestWarmPath:
    def test_second_packet_of_a_flow_hits(self):
        pipeline, mint, token_cache, flow_cache = make_pipeline()
        seg = HeaderSegment(port=1, token=mint.mint(port=1, account=9))
        cold = pipeline.decide(hop(seg, now_ms=0))
        warm = pipeline.decide(hop(seg, now_ms=1))
        assert cold.action is warm.action is Action.FORWARD
        assert not cold.flow_cache_hit
        assert warm.flow_cache_hit
        assert flow_cache.stats.hits == 1

    def test_flow_hit_matches_slow_path_decision(self):
        pipeline, mint, _, _ = make_pipeline()
        seg = HeaderSegment(
            port=1, priority=3,
            token=mint.mint(port=1, account=9, reverse_ok=True),
        )
        cold = pipeline.decide(hop(seg, now_ms=0))
        warm = pipeline.decide(hop(seg, now_ms=1))
        assert warm.out_port == cold.out_port
        assert warm.return_segment == cold.return_segment
        assert warm.dst_mac == cold.dst_mac
        assert warm.token_delay == 0.0

    def test_flow_hits_keep_charging_the_byte_budget(self):
        pipeline, mint, token_cache, _ = make_pipeline()
        token = mint.mint(port=1, account=9, byte_limit=250)
        seg = HeaderSegment(port=1, token=token)
        assert pipeline.decide(hop(seg, wire_size=100)).action is Action.FORWARD
        warm = pipeline.decide(hop(seg, wire_size=100))
        assert warm.flow_cache_hit
        # 200/250 spent via one cold + one flow-hit packet; a third
        # 100-byte packet must overrun the budget and be rejected even
        # though the flow was cached.
        third = pipeline.decide(hop(seg, wire_size=100))
        assert third.action is Action.DROP
        assert third.reason == "token_reject"
        assert token_cache.entry(token).bytes == 200

    def test_flow_hits_count_as_token_cache_hits(self):
        pipeline, mint, token_cache, _ = make_pipeline()
        seg = HeaderSegment(port=1, token=mint.mint(port=1, account=9))
        pipeline.decide(hop(seg))
        pipeline.decide(hop(seg))
        pipeline.decide(hop(seg))
        assert token_cache.hits >= 2  # bench_e09's hit-rate contract


class TestExpiry:
    def test_ttl_expires_an_idle_flow(self):
        pipeline, mint, _, flow_cache = make_pipeline(ttl_ms=1_000)
        seg = HeaderSegment(port=1, token=mint.mint(port=1, account=9))
        pipeline.decide(hop(seg, now_ms=0))
        assert pipeline.decide(hop(seg, now_ms=900)).flow_cache_hit
        stale = pipeline.decide(hop(seg, now_ms=2_500))
        assert not stale.flow_cache_hit
        assert flow_cache.stats.expirations == 1

    def test_flow_entry_dies_no_later_than_its_token(self):
        pipeline, mint, _, flow_cache = make_pipeline(ttl_ms=60_000)
        token = mint.mint(port=1, account=9, expiry_ms=1_000)
        seg = HeaderSegment(port=1, token=token)
        pipeline.decide(hop(seg, now_ms=0))
        assert pipeline.decide(hop(seg, now_ms=500)).flow_cache_hit
        # TTL (60s) has not elapsed, but the token has expired: the
        # entry must not serve the flow any more.
        late = pipeline.decide(hop(seg, now_ms=1_500))
        assert not late.flow_cache_hit
        assert flow_cache.stats.expirations == 1

    def test_expired_token_never_installs_a_flow(self):
        pipeline, mint, _, flow_cache = make_pipeline()
        token = mint.mint(port=1, account=9, expiry_ms=1_000)
        seg = HeaderSegment(port=1, token=token)
        pipeline.decide(hop(seg, now_ms=2_000))  # already past expiry
        assert len(flow_cache) == 0


class TestInvalidation:
    def test_topology_change_invalidates_flows_through_the_port(self):
        pipeline, mint, _, flow_cache = make_pipeline()
        seg1 = HeaderSegment(port=1, token=mint.mint(port=1, account=9))
        seg2 = HeaderSegment(port=2, token=mint.mint(port=2, account=9))
        pipeline.decide(hop(seg1))
        pipeline.decide(hop(seg2))
        assert len(flow_cache) == 2
        pipeline.on_topology_change(1)
        assert len(flow_cache) == 1  # port-2 flow survives
        assert not pipeline.decide(hop(seg1)).flow_cache_hit
        assert pipeline.decide(hop(seg2)).flow_cache_hit

    def test_full_flush_on_unscoped_topology_change(self):
        pipeline, mint, _, flow_cache = make_pipeline()
        pipeline.decide(hop(HeaderSegment(port=1)))
        pipeline.on_topology_change()
        assert len(flow_cache) == 0

    def test_congestion_rebind_flushes_cached_routes(self):
        pipeline, mint, _, flow_cache = make_pipeline()
        pipeline.decide(hop(HeaderSegment(port=1)))
        assert len(flow_cache) == 1
        pipeline.on_congestion_rebind()
        assert len(flow_cache) == 0
        assert not pipeline.decide(hop(HeaderSegment(port=1))).flow_cache_hit

    def test_token_cache_flush_takes_the_flow_cache_with_it(self):
        pipeline, mint, token_cache, flow_cache = make_pipeline()
        seg = HeaderSegment(port=1, token=mint.mint(port=1, account=9))
        pipeline.decide(hop(seg))
        assert len(flow_cache) == 1
        token_cache.flush()  # router restart: soft state dies together
        assert len(flow_cache) == 0
        again = pipeline.decide(hop(seg))
        assert not again.flow_cache_hit
        assert len(token_cache) == 1  # token re-verified from scratch

    def test_vanished_egress_falls_back_and_invalidates(self):
        profiles = {1: PortProfile(), 2: PortProfile()}
        pipeline, mint, _, flow_cache = make_pipeline(profiles=profiles)
        seg = HeaderSegment(port=1)
        pipeline.decide(hop(seg))
        del profiles[1]  # the port map is live driver state
        decision = pipeline.decide(hop(seg))
        assert decision.action is Action.DROP
        assert decision.reason == "no_route"
        assert len(flow_cache) == 0


class TestCapacity:
    def test_lru_eviction_keeps_the_hot_flows(self):
        pipeline, mint, _, flow_cache = make_pipeline(
            capacity=2,
            profiles={1: PortProfile(), 2: PortProfile(), 3: PortProfile()},
        )
        a, b, c = (HeaderSegment(port=p) for p in (1, 2, 3))
        pipeline.decide(hop(a))
        pipeline.decide(hop(b))
        pipeline.decide(hop(a))  # refresh a -> b is now LRU
        pipeline.decide(hop(c))  # evicts b
        assert flow_cache.stats.evictions == 1
        assert pipeline.decide(hop(a)).flow_cache_hit
        assert not pipeline.decide(hop(b)).flow_cache_hit


class TestDriverWiring:
    """The invalidation hooks are actually connected in both drivers."""

    def test_sim_router_wires_congestion_rebind_and_attach(self):
        from repro.core.congestion import ControlPlane
        from repro.core.router import SirpentRouter
        from repro.sim.engine import Simulator

        sim = Simulator()
        router = SirpentRouter(sim, "r1", control_plane=ControlPlane(sim, None))
        assert router.congestion.on_rebind == router.pipeline.on_congestion_rebind
        assert router.token_cache.on_flush == router.pipeline.flow_cache.flush

    def test_live_connect_port_invalidates_rewired_flows(self):
        from repro.live.router import LiveRouter

        router = LiveRouter("lr1")
        router.connect_port(1, ("127.0.0.1", 40_001))
        router.connect_port(2, ("127.0.0.1", 40_002))
        pipeline = router.pipeline
        pipeline.decide(hop(HeaderSegment(port=1), in_port=2))
        pipeline.decide(hop(HeaderSegment(port=2), in_port=1))
        assert len(pipeline.flow_cache) == 2
        router.connect_port(1, ("127.0.0.1", 40_003))  # re-wired
        assert len(pipeline.flow_cache) == 0  # port 1 keyed both flows
