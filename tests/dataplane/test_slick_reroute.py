"""Slick-Packets local reroute in the sans-IO pipeline (ARCHITECTURE §16).

A slick segment whose egress is dead gets its in-band alternate spliced
over the remaining route — one hop-local decision, no end-to-end
timeout.  These tests pin the stage-3b semantics:

* the reroute FORWARD carries the alternate's head as ``effective``,
  its tail as ``splice_tail`` and ``slick_reroute=True``;
* every way the alternate can be unusable (absent, dead, local,
  logical, multicast, token-rejected) falls back to a clean
  ``slick_fallback_exhausted`` drop — rebind recovery takes over;
* non-slick packets see exactly the pre-slick behavior on the same
  dead port;
* the reroute is memoized: warm packets of the flow take the alternate
  from stage 2a, and the stale pre-failover entry — including its
  memoized return tail — can never be served again.
"""

import pytest

from repro.core.logical import LogicalPortMap
from repro.core.multicast import GroupPortMap
from repro.dataplane import (
    Action,
    Capabilities,
    FlowCache,
    ForwardingPipeline,
    HopInput,
    MappingPortMap,
    PortProfile,
    UNKNOWN_IN_PORT,
)
from repro.tokens.cache import CachePolicy, TokenCache
from repro.tokens.capability import TokenMint
from repro.viper.wire import HeaderSegment

DEAD = 1      # the primary egress, down in most tests
ALT = 3       # the alternate egress
ARRIVAL = 7


def make_pipeline(
    profiles,
    logical=None,
    groups=None,
    require_tokens=False,
    flow_cache=None,
):
    mint = TokenMint(b"secret:test", issuer="r1")
    token_cache = TokenCache(
        mint, policy=CachePolicy.OPTIMISTIC, require_tokens=require_tokens
    )
    pipeline = ForwardingPipeline(
        "r1",
        token_cache=token_cache,
        ports=MappingPortMap(dict(profiles)),
        logical=logical,
        groups=groups,
        flow_cache=flow_cache,
        capabilities=Capabilities(),
    )
    return pipeline, mint


def hop(segment, alternate=None, wire_size=100, seg_count=3,
        in_port=ARRIVAL, now_ms=0):
    kwargs = {}
    if alternate is not None:
        kwargs["alternate"] = lambda: alternate
    return HopInput(
        segment=segment, seg_count=seg_count, wire_size=wire_size,
        in_port=in_port, now_ms=now_ms, **kwargs,
    )


class TestLocalReroute:
    """Dead egress + usable alternate -> in-band splice, same hop."""

    def build(self):
        return make_pipeline({
            DEAD: PortProfile(up=False),
            ALT: PortProfile(),
        })

    def test_dead_egress_splices_the_alternate(self):
        pipeline, _ = self.build()
        alternate = [HeaderSegment(port=ALT), HeaderSegment(port=0)]
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True), alternate)
        )
        assert decision.action is Action.FORWARD
        assert decision.slick_reroute
        assert decision.out_port == ALT
        assert decision.effective.port == ALT
        assert [s.port for s in decision.splice_tail] == [0]
        # The alternate REPLACES the remaining route: segments_left is
        # the alternate's length minus the hop taken now, not the
        # original route's.
        assert decision.segments_left == len(alternate) - 1

    def test_missing_profile_counts_as_dead(self):
        pipeline, _ = make_pipeline({ALT: PortProfile()})
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True),
                [HeaderSegment(port=ALT)])
        )
        assert decision.action is Action.FORWARD
        assert decision.slick_reroute

    def test_reroute_inherits_priority_and_builds_return_hop(self):
        pipeline, _ = self.build()
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True, priority=5),
                [HeaderSegment(port=ALT), HeaderSegment(port=0)])
        )
        assert decision.effective.priority == 5
        assert all(s.priority == 5 for s in decision.splice_tail)
        assert decision.return_segment is not None
        assert decision.return_segment.port == ARRIVAL

    def test_truncation_is_skipped_on_the_reroute_hop(self):
        pipeline, _ = make_pipeline({
            DEAD: PortProfile(up=False),
            ALT: PortProfile(mtu=64),
        })
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True),
                [HeaderSegment(port=ALT)], wire_size=1000)
        )
        assert decision.action is Action.FORWARD
        assert decision.truncate_to == 0


class TestExhaustionFallsBackToRebind:
    """Unusable alternates drop with slick_fallback_exhausted (§16)."""

    def expect_exhausted(self, pipeline, segment, alternate):
        decision = pipeline.decide(hop(segment, alternate))
        assert decision.action is Action.DROP
        assert decision.reason == "slick_fallback_exhausted"
        assert decision.drop_fields == {"port": DEAD}

    def test_no_alternate_carried(self):
        pipeline, _ = make_pipeline({DEAD: PortProfile(up=False)})
        # Default thunk: the packet carries no block (or it failed to
        # decode — the driver maps both to a None alternate).
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True), None
        )
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True), [])
        )
        assert decision.reason == "slick_fallback_exhausted"

    def test_alternate_egress_also_dead(self):
        pipeline, _ = make_pipeline({
            DEAD: PortProfile(up=False),
            ALT: PortProfile(up=False),
        })
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True),
            [HeaderSegment(port=ALT)],
        )

    def test_alternate_naming_local_delivery_is_rejected(self):
        pipeline, _ = make_pipeline({DEAD: PortProfile(up=False)})
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True),
            [HeaderSegment(port=0)],
        )

    def test_alternate_naming_logical_port_is_rejected(self):
        logical = LogicalPortMap()
        logical.add_transit(9, [HeaderSegment(port=ALT)])
        pipeline, _ = make_pipeline(
            {DEAD: PortProfile(up=False), ALT: PortProfile()},
            logical=logical,
        )
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True),
            [HeaderSegment(port=9)],
        )

    def test_alternate_naming_multicast_group_is_rejected(self):
        groups = GroupPortMap()
        groups.add_group(240, [ALT])
        pipeline, _ = make_pipeline(
            {DEAD: PortProfile(up=False), ALT: PortProfile()},
            groups=groups,
        )
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True),
            [HeaderSegment(port=240)],
        )

    def test_alternate_with_rejected_token_is_exhausted(self):
        pipeline, mint = make_pipeline(
            {DEAD: PortProfile(up=False), ALT: PortProfile()},
            require_tokens=True,
        )
        token = mint.mint(port=DEAD, account=7)
        # The primary is admitted (its token names the dead port), but
        # the tokenless alternate fails closed under require_tokens.
        self.expect_exhausted(
            pipeline, HeaderSegment(port=DEAD, slick=True, token=token),
            [HeaderSegment(port=ALT)],
        )


class TestNonSlickUnchanged:
    """The flag gate: packets without the slick bit never reroute."""

    def test_non_slick_packet_ignores_its_thunk_and_forwards(self):
        # Pre-slick pipelines forwarded onto a down egress (the driver
        # owns link state); that behavior is pinned for non-slick
        # packets so rebind timing is untouched by this feature.
        pipeline, _ = make_pipeline({
            DEAD: PortProfile(up=False),
            ALT: PortProfile(),
        })
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD), [HeaderSegment(port=ALT)])
        )
        assert decision.action is Action.FORWARD
        assert decision.out_port == DEAD
        assert not decision.slick_reroute

    def test_non_slick_missing_port_still_drops_no_route(self):
        pipeline, _ = make_pipeline({ALT: PortProfile()})
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD), [HeaderSegment(port=ALT)])
        )
        assert decision.action is Action.DROP
        assert decision.reason == "no_route"


class TestWarmRerouteMemoization:
    """The reroute installs under the ORIGINAL flow key (stage 6)."""

    def build(self):
        flow_cache = FlowCache(capacity=8, ttl_ms=10_000)
        pipeline, mint = make_pipeline(
            {DEAD: PortProfile(up=False), ALT: PortProfile()},
            flow_cache=flow_cache,
        )
        return pipeline, mint, flow_cache

    def test_second_packet_takes_the_alternate_from_cache(self):
        pipeline, _, flow_cache = self.build()
        alternate = [HeaderSegment(port=ALT), HeaderSegment(port=0)]
        first = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True), alternate)
        )
        assert first.slick_reroute and not first.flow_cache_hit
        second = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True), alternate)
        )
        assert second.action is Action.FORWARD
        assert second.flow_cache_hit
        assert second.slick_reroute
        assert second.out_port == ALT
        assert second.effective.port == ALT
        assert [s.port for s in second.splice_tail] == [0]
        assert second.segments_left == len(alternate) - 1
        assert flow_cache.stats.hits == 1

    def test_unknown_arrival_port_never_memoizes_the_reroute(self):
        pipeline, _, flow_cache = self.build()
        decision = pipeline.decide(
            hop(HeaderSegment(port=DEAD, slick=True),
                [HeaderSegment(port=ALT)], in_port=UNKNOWN_IN_PORT)
        )
        assert decision.slick_reroute
        assert decision.return_segment is None
        assert len(flow_cache) == 0


class TestStaleReturnTailRegression:
    """A warm reroute must never serve pre-failover memoized state.

    Regression for the satellite-3 hazard: a flow cached while the
    primary egress was healthy memoizes the return tail (with the
    reverse-authorized token) for the OLD path.  When the egress dies
    mid-flow, stage 3b must invalidate that entry before installing the
    reroute — otherwise warm packets keep the stale return route.
    """

    def test_failover_invalidates_and_replaces_the_warm_entry(self):
        profiles = {DEAD: PortProfile(), ALT: PortProfile()}
        flow_cache = FlowCache(capacity=8, ttl_ms=10_000)
        pipeline, mint = make_pipeline(profiles, flow_cache=flow_cache)
        token = mint.mint(port=DEAD, account=7, reverse_ok=True)
        segment = HeaderSegment(port=DEAD, slick=True, token=token)
        alternate = [HeaderSegment(port=ALT), HeaderSegment(port=0)]

        # Pre-failover: healthy forward, memoized with the token on the
        # return hop (reverse_ok) — the tail we must never see again.
        before = pipeline.decide(hop(segment, alternate))
        assert before.action is Action.FORWARD
        assert not before.slick_reroute
        assert before.out_port == DEAD
        assert before.return_segment.token == token
        stale_tail = before.return_tail
        assert stale_tail is not None and token in stale_tail
        warm = pipeline.decide(hop(segment, alternate))
        assert warm.flow_cache_hit and warm.out_port == DEAD

        # The egress dies under the warm flow.
        pipeline.ports.profiles[DEAD] = PortProfile(up=False)

        rerouted = pipeline.decide(hop(segment, alternate))
        assert rerouted.action is Action.FORWARD
        assert rerouted.slick_reroute
        assert rerouted.out_port == ALT
        # The return hop is rebuilt from the ALTERNATE's segment: the
        # old token (minted for the dead path) is gone.
        assert rerouted.return_segment.token == b""
        assert rerouted.return_tail != stale_tail
        assert flow_cache.stats.invalidations >= 1

        # Warm packets after failover serve the reroute entry, never
        # the stale one.
        after = pipeline.decide(hop(segment, alternate))
        assert after.flow_cache_hit
        assert after.slick_reroute
        assert after.out_port == ALT
        assert after.return_tail != stale_tail
        assert after.return_segment.token == b""

    def test_cached_entry_racing_the_death_falls_to_slow_path_reroute(self):
        # The port dies BETWEEN install and the next packet without any
        # invalidation callback firing: _decide_cached must detect the
        # dead egress, purge, and let stage 3b reroute the same packet.
        profiles = {DEAD: PortProfile(), ALT: PortProfile()}
        flow_cache = FlowCache(capacity=8, ttl_ms=10_000)
        pipeline, _ = make_pipeline(profiles, flow_cache=flow_cache)
        segment = HeaderSegment(port=DEAD, slick=True)
        alternate = [HeaderSegment(port=ALT)]
        assert pipeline.decide(hop(segment, alternate)).out_port == DEAD
        pipeline.ports.profiles[DEAD] = PortProfile(up=False)
        decision = pipeline.decide(hop(segment, alternate))
        assert decision.action is Action.FORWARD
        assert decision.slick_reroute
        assert decision.out_port == ALT
