"""Integration: logical links balance replicated trunks (§2.2)."""


from repro.core.host import SirpentHost
from repro.core.logical import SelectionPolicy
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build_trunk(n_channels=4, policy=SelectionPolicy.LEAST_LOADED):
    """src - rA ={n parallel links}= rB - dst, trunked as one logical port."""
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    ra = topo.add_node(SirpentRouter(sim, "rA"))
    rb = topo.add_node(SirpentRouter(sim, "rB"))
    _, src_port, _ = topo.connect(src, ra, rate_bps=100e6)
    member_ports = []
    links = []
    for index in range(n_channels):
        link, pa, _pb = topo.connect(
            ra, rb, rate_bps=10e6, name=f"trunk{index}",
        )
        member_ports.append(pa)
        links.append(link)
    _, rb_out, _ = topo.connect(rb, dst, rate_bps=100e6)
    LOGICAL = 100
    ra.logical.add_trunk(LOGICAL, member_ports, policy=policy)
    route = StaticRoute(
        [HeaderSegment(port=LOGICAL), HeaderSegment(port=rb_out),
         HeaderSegment(port=0)],
        src_port,
    )
    return sim, topo, src, dst, ra, links, route


def test_trunk_spreads_load_across_members():
    sim, _t, src, dst, _ra, links, route = build_trunk(n_channels=4)
    got = []
    dst.bind(0, got.append)
    for index in range(40):
        sim.at(index * 1e-4, lambda: src.send(route, b"x", 1000))
    sim.run(until=2.0)
    assert len(got) == 40
    per_member = [l.a_to_b.packets_sent.count for l in links]
    assert sum(per_member) == 40
    # Least-loaded balancing: every member carried a fair share.
    assert min(per_member) >= 5


def test_single_member_is_a_plain_link():
    sim, _t, src, dst, _ra, links, route = build_trunk(n_channels=1)
    got = []
    dst.bind(0, got.append)
    src.send(route, b"x", 500)
    sim.run(until=1.0)
    assert len(got) == 1
    assert links[0].a_to_b.packets_sent.count == 1


def test_flow_hash_keeps_flows_on_one_member():
    from repro.viper.portinfo import LogicalInfo

    sim, _t, src, dst, _ra, links, route = build_trunk(
        n_channels=4, policy=SelectionPolicy.FLOW_HASH,
    )
    got = []
    dst.bind(0, got.append)
    hint = LogicalInfo(label=1, flow_hint=2).to_bytes()
    flow_route = StaticRoute(
        [route.segments[0].copy(portinfo=hint)] + route.segments[1:],
        route.first_hop_port,
    )
    for index in range(20):
        sim.at(index * 1e-3, lambda: src.send(flow_route, b"x", 500))
    sim.run(until=2.0)
    assert len(got) == 20
    used = [l for l in links if l.a_to_b.packets_sent.count > 0]
    assert len(used) == 1  # all of the flow stayed on one channel


def test_trunk_survives_member_failure():
    """Late binding: the router routes around a dead member without the
    source ever knowing (the 'fine-grain rerouting' of §2.2)."""
    sim, topo, src, dst, _ra, links, route = build_trunk(n_channels=3)
    got = []
    dst.bind(0, got.append)
    links[0].fail()
    for index in range(12):
        sim.at(index * 1e-3, lambda: src.send(route, b"x", 500))
    sim.run(until=2.0)
    # The dead member is busy=False but sends vanish... least-loaded may
    # still pick it; Sirpent handles that as loss + transport retry.  At
    # the raw-host level we simply require the live members to carry
    # most traffic once the dead link looks "busy" (it never frees).
    delivered = len(got)
    assert delivered >= 10


def test_transit_expansion_splices_route():
    """§2.2: a logical port standing for a multi-hop transit path."""
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    entry = topo.add_node(SirpentRouter(sim, "entry"))
    middle = topo.add_node(SirpentRouter(sim, "middle"))
    exit_ = topo.add_node(SirpentRouter(sim, "exit"))
    _, src_port, _ = topo.connect(src, entry)
    _, entry_to_middle, _ = topo.connect(entry, middle)
    _, middle_to_exit, _ = topo.connect(middle, exit_)
    _, exit_to_dst, _ = topo.connect(exit_, dst)
    LOGICAL = 120
    entry.logical.add_transit(LOGICAL, [
        HeaderSegment(port=entry_to_middle),   # entry's own out-port
        HeaderSegment(port=middle_to_exit),    # consumed by middle
        HeaderSegment(port=exit_to_dst),       # consumed by exit
    ])
    got = []
    dst.bind(0, got.append)
    # The source names only [logical hop, final]: two segments.
    route = StaticRoute(
        [HeaderSegment(port=LOGICAL), HeaderSegment(port=0)], src_port
    )
    src.send(route, b"transit", 300)
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0].packet.hop_log == ["entry", "middle", "exit"]
    # Shorter header on the source side, full return route on arrival.
    assert len(got[0].return_segments) == 3
