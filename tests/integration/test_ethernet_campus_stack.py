"""Full stack over shared Ethernets: contention, VMTP, return routing.

The paper's running example is Ethernet-centric; these tests make sure
the whole stack behaves when the medium itself is shared — frames
contend for the segment, portInfo carries the MACs, and return routes
reverse the frame headers (§2's worked example).
"""


from repro.scenarios import build_sirpent_campus
from repro.transport import RouteManager, TransportConfig
from repro.viper.portinfo import EthernetInfo
from repro.directory import RouteQuery


def test_concurrent_transactions_share_the_ethernet():
    scenario = build_sirpent_campus()
    config = TransportConfig()
    # Two Stanford clients hammer one MIT server concurrently.
    clients = [scenario.transport(name, config=config)
               for name in ("venus", "gregorio")]
    server = scenario.transport("milo", config=config)
    entity = server.create_entity(lambda m: (b"ok", 400), hint="milo")
    results = {name: [] for name in ("venus", "gregorio")}

    def make_loop(name, client):
        routes = scenario.directory.query(name, RouteQuery(
            "milo.lcs.mit.edu", dest_socket=config.socket,
        ))
        manager = RouteManager(scenario.sim, routes)
        box = results[name]

        def issue():
            if len(box) >= 10:
                return
            client.transact(manager, entity, b"q", 800,
                            lambda r: (box.append(r), issue()))

        return issue

    for name, client in zip(results, clients):
        make_loop(name, client)()
    scenario.sim.run(until=5.0)
    for name, box in results.items():
        assert len(box) == 10, name
        assert all(r.ok for r in box), name
    # The shared Stanford Ethernet carried both clients' frames.
    ether = scenario.topology.segments["ether-stanford"]
    assert ether.frames_sent.count >= 40


def test_ethernet_portinfo_reversal_on_the_worked_example():
    """The §2 worked example, checked field by field: forward portInfo
    names the next hop on the far Ethernet; the trailer element's
    portInfo is the *arrival* header reversed."""
    scenario = build_sirpent_campus()
    route = scenario.directory.query("venus", RouteQuery(
        "milo.lcs.mit.edu",
    ))[0]
    got = []
    scenario.hosts["milo"].bind(0, got.append)
    scenario.hosts["venus"].send(route, b"worked example", 300)
    scenario.sim.run(until=1.0)
    delivered = got[0]
    # Return route: first return segment exits gw-mit back toward the
    # WAN (p2p: empty portInfo), second exits gw-stanford onto the
    # Stanford Ethernet toward venus.
    second = delivered.return_segments[1]
    info = EthernetInfo.from_bytes(second.portinfo)
    venus_mac = next(
        e.dst_mac for e in scenario.topology.edges()
        if e.dst == "venus" and e.medium == "ethernet"
    )
    gw_mac = next(
        e.dst_mac for e in scenario.topology.edges()
        if e.dst == "gw-stanford" and e.medium == "ethernet"
    )
    assert info.dst == venus_mac   # reversed: back to the source host
    assert info.src == gw_mac      # from the gateway's own address
    # And the physical first hop of the reply is the arrival frame's
    # source (gw-mit's MAC on the MIT Ethernet).
    assert delivered.return_first_hop_mac is not None


def test_broadcast_frame_reaches_all_campus_hosts():
    from repro.net.addresses import BROADCAST, MacAddress
    from repro.viper.wire import HeaderSegment

    scenario = build_sirpent_campus()
    inboxes = {}
    for name in ("gregorio",):  # the other Stanford host
        box = []
        scenario.hosts[name].bind(0, box.append)
        inboxes[name] = box

    class Route:
        segments = [HeaderSegment(port=0)]
        first_hop_port = next(iter(scenario.hosts["venus"].ports))
        first_hop_mac = MacAddress(BROADCAST)

    scenario.hosts["venus"].send(Route, b"anyone there?", 100)
    scenario.sim.run(until=1.0)
    assert len(inboxes["gregorio"]) == 1
