"""Integration: corruption without a header checksum (§4.1).

Sirpent deliberately omits the header checksum, so corrupted packets may
be *misrouted rather than dropped immediately*; the transport layer must
catch the damage.  These tests inject bit errors on a link and verify
the end-to-end accounting.
"""


from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport import RouteManager, VmtpTransport
from repro.viper.wire import HeaderSegment


def build_lossy_line(corruption_rate=0.3, seed=5):
    sim = Simulator()
    topo = Topology(sim)
    rng = RngStreams(seed).stream("corruption")
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    bystander = topo.add_node(SirpentHost(sim, "bystander"))
    router = topo.add_node(SirpentRouter(sim, "r1"))
    _, src_port, _ = topo.connect(
        src, router, corruption_rate=corruption_rate, rng=rng,
    )
    _, out_port, _ = topo.connect(router, dst)
    _, other_port, _ = topo.connect(router, bystander)
    return sim, topo, src, dst, bystander, router, src_port, out_port


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def test_corrupted_packets_still_delivered_somewhere():
    sim, _t, src, dst, bystander, router, src_port, out_port = (
        build_lossy_line(corruption_rate=1.0)
    )
    seen_dst, seen_other = [], []
    dst.bind(0, seen_dst.append)
    bystander.bind(0, seen_other.append)
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], src_port
    )
    for _ in range(40):
        src.send(route, b"x", 200)
    sim.run(until=2.0)
    delivered = len(seen_dst) + len(seen_other)
    # Some packets are misrouted to the bystander or into dead ports,
    # but corruption never makes the network *drop* them outright:
    corrupted_seen = [d for d in seen_dst + seen_other if d.corrupted]
    assert corrupted_seen, "no corrupted packet survived to any host"
    assert router.stats.dropped_no_route.count + delivered == 40


def test_transport_checksum_catches_corruption():
    """Every corrupted PDU is discarded by the transport, none are
    delivered to the application."""
    sim, _t, src, dst, _b, _r, src_port, out_port = build_lossy_line(
        corruption_rate=0.5,
    )
    t_src = VmtpTransport(sim, src)
    t_dst = VmtpTransport(sim, dst)
    served = []

    def handler(message):
        served.append(message)
        return b"ok", 32

    entity = t_dst.create_entity(handler, hint="server")
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=1)], src_port
    )
    manager = RouteManager(sim, [_route_obj(route)])
    results = []
    t_src.transact(manager, entity, b"payload", 128, results.append)
    sim.run(until=5.0)
    # Retransmissions eventually push a clean copy through.
    assert results and results[0].ok
    assert t_dst.stats.checksum_failures.count >= 1
    assert all(not m.payload_parts[0] == None for m in served)


def _route_obj(static):
    """Adapt a StaticRoute to what RouteManager expects (Route-like)."""
    from repro.directory.routes import Route

    return Route(
        destination="dst",
        segments=static.segments,
        first_hop_port=static.first_hop_port,
        first_hop_mac=None,
        bottleneck_bps=10e6,
        propagation_delay=20e-6,
        hop_count=1,
    )


def test_misdelivered_pdu_rejected_by_entity_check():
    """A corrupted header can reroute a packet to the wrong *host*; the
    64-bit entity id makes the wrong transport discard it."""
    sim, _t, src, dst, bystander, _r, src_port, out_port = build_lossy_line(
        corruption_rate=1.0,
    )
    t_src = VmtpTransport(sim, src)
    t_dst = VmtpTransport(sim, dst)
    t_bystander = VmtpTransport(sim, bystander)
    entity = t_dst.create_entity(lambda m: (b"ok", 16), hint="server")
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=1)], src_port
    )
    manager = RouteManager(sim, [_route_obj(route)])
    t_src.transact(manager, entity, b"x", 64, lambda r: None)
    sim.run(until=2.0)
    # Whatever reached the bystander was rejected, silently and safely.
    delivered_to_apps = t_bystander.stats.misdelivered.count
    assert t_bystander.stats.received_pdus.count >= delivered_to_apps
    assert bystander.undeliverable.count + t_bystander.stats.misdelivered.count \
        + t_bystander.stats.checksum_failures.count >= 0


def test_clean_link_never_corrupts():
    sim, _t, src, dst, _b, _r, src_port, out_port = build_lossy_line(
        corruption_rate=0.0,
    )
    got = []
    dst.bind(0, got.append)
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], src_port
    )
    for _ in range(20):
        src.send(route, b"x", 100)
    sim.run(until=1.0)
    assert len(got) == 20
    assert not any(d.corrupted for d in got)
