"""The grand tour: every subsystem in one scenario.

A single simulation that exercises — simultaneously — hierarchical
naming, route queries with tokens, cut-through forwarding over mixed
Ethernet/p2p media, VMTP transactions with packet groups, accounting,
the load monitor, route advisories, a mid-run link failure with client
rebinding, and soft-state drain afterwards.  If the pieces compose,
this passes; it is the closest thing to the paper's "demonstration
implementation of VIPER together with a routing directory service"
(§8).
"""


from repro.core.router import RouterConfig
from repro.directory import RouteQuery
from repro.directory.monitoring import LoadMonitor
from repro.scenarios import build_sirpent_campus
from repro.transport import RouteManager, TransportConfig


def test_grand_tour():
    config = RouterConfig(require_tokens=True)
    scenario = build_sirpent_campus(router_config=config)
    sim = scenario.sim
    LoadMonitor(sim, scenario.topology, scenario.directory, interval=20e-3)

    # A second WAN path so rebinding has somewhere to go.
    from repro.core.router import SirpentRouter

    backup = SirpentRouter(sim, "gw-backup", config=config,
                           control_plane=scenario.control_plane)
    scenario.topology.add_node(backup)
    scenario.routers["gw-backup"] = backup
    scenario.topology.connect(scenario.routers["gw-stanford"], backup,
                              propagation_delay=8e-3, name="wan-b1")
    scenario.topology.connect(backup, scenario.routers["gw-mit"],
                              propagation_delay=8e-3, name="wan-b2")

    transport_config = TransportConfig(base_timeout=10e-3,
                                       retries_per_route=1)
    client = scenario.transport("venus", config=transport_config)
    server = scenario.transport("milo", config=transport_config)
    served = []

    def handler(message):
        served.append(message.total_size)
        return b"response", 900

    entity = server.create_entity(handler, hint="milo-service")

    query = RouteQuery(
        "milo.lcs.mit.edu", k=2, dest_socket=transport_config.socket,
        with_tokens=True, account=777, reverse_ok=True,
    )
    routes = scenario.directory.query("venus", query)
    assert len(routes) == 2
    manager = RouteManager(sim, routes)
    advisories = []

    def on_advisory(fresh):
        advisories.append(fresh)
        manager.adopt(fresh)

    scenario.directory.subscribe("venus", query, on_advisory)

    results = []

    def issue() -> None:
        if len(results) >= 30:
            return
        client.transact(manager, entity, b"payload", 2500,
                        lambda r: (results.append(r), issue()))

    issue()
    # Fail the primary WAN mid-run; restore later.
    sim.at(0.15, scenario.topology.fail_link, "wan")
    sim.at(0.8, scenario.topology.restore_link, "wan")
    sim.run(until=3.0)

    # Every transaction completed despite the failure window.
    assert len(results) == 30
    assert all(r.ok for r in results)
    # The failure was genuinely felt by in-flight transactions...
    assert any(r.retries > 0 for r in results)
    # ...and recovery came through §6.3 machinery: either the client's
    # own rebinding or a directory route advisory (here the advisory
    # lands first: initial set, failure set, restore set).
    assert manager.switches.count >= 1 or len(advisories) >= 3
    # Each request was a 3-member packet group, assembled whole.
    assert all(size == 2500 for size in served)
    # Tokens were enforced and accounting accrued at the gateways the
    # traffic actually used.
    charged = [
        router.token_cache.ledger.usage(777).bytes
        for router in scenario.routers.values()
    ]
    assert sum(charged) > 30 * 2500
    # The advisory machinery pushed at least one route-set change.
    assert scenario.directory.queries_served > 1
    # Load reports exist for the WAN links.
    assert "wan" in scenario.directory._loads
    # Congestion soft state has drained by the quiet end of the run.
    assert all(
        len(r.congestion.limits) == 0
        for r in scenario.routers.values() if r.congestion is not None
    )
