"""Integration: rate-based backpressure on a congested dumbbell (§2.2)."""


from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_dumbbell
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals


def drive_dumbbell(congestion_enabled, seconds=1.0, overload=1.6, n_pairs=3):
    """Offer ``overload`` x the bottleneck capacity through it."""
    config = RouterConfig(congestion_enabled=congestion_enabled)
    scenario = build_sirpent_dumbbell(
        n_pairs=n_pairs, edge_rate_bps=10e6, bottleneck_rate_bps=10e6,
        router_config=config, access_routers=True,
    )
    rngs = RngStreams(17)
    packet_size = 1000
    per_sender_pps = overload * 10e6 / (packet_size * 8 * n_pairs)
    for index in range(n_pairs):
        sender = scenario.hosts[f"sender{index + 1}"]
        route = scenario.routes(
            f"sender{index + 1}", f"receiver{index + 1}"
        )[0]
        PoissonArrivals(
            scenario.sim, per_sender_pps,
            emit=lambda size, s=sender, r=route: s.send(r, b"x", size - 50),
            rng=rngs.stream(f"sender{index}"),
            fixed_size=packet_size, stop_at=seconds,
        )
    scenario.sim.run(until=seconds + 0.2)
    left = scenario.routers["rL"]
    bottleneck_port = next(
        port_id for port_id, att in left.ports.items()
        if att.peer_name_for(None) == "rR"
    )
    outport = left.output_ports[bottleneck_port]
    return scenario, left, outport


def test_backpressure_bounds_bottleneck_queue():
    _s, _l, without = drive_dumbbell(congestion_enabled=False)
    _s2, _l2, with_cc = drive_dumbbell(congestion_enabled=True)
    # Without control the overloaded queue grows until the buffer caps
    # it and packets drop; with control the backlog moves upstream into
    # soft flow state and the congested queue stays near the watermark.
    assert with_cc.queue_length.maximum < without.queue_length.maximum
    assert with_cc.drops.count < without.drops.count


def test_signals_actually_flow():
    scenario, left, _outport = drive_dumbbell(congestion_enabled=True)
    assert left.congestion is not None
    assert left.congestion.signals_sent.count > 0
    # Access routers received them and installed soft state at some point.
    received = sum(
        scenario.routers[f"a{i + 1}"].congestion.signals_received.count
        for i in range(3)
    )
    assert received > 0


def test_backlog_moves_upstream():
    scenario, left, outport = drive_dumbbell(congestion_enabled=True,
                                             seconds=0.5)
    held_upstream = sum(
        scenario.routers[f"a{i + 1}"].congestion.total_held()
        for i in range(3)
    )
    # During/after overload, upstream access routers were holding flow.
    # (By the time we sample, holds may have drained — check the
    # historical signal exchange instead when zero.)
    assert held_upstream >= 0
    assert left.congestion.signals_sent.count > 0


def test_bottleneck_utilization_stays_high_under_control():
    """Backpressure must not starve the link it protects."""
    scenario, _left, _outport = drive_dumbbell(
        congestion_enabled=True, seconds=1.0,
    )
    channel = scenario.topology.links["bottleneck"].a_to_b
    utilization = channel.utilization.utilization(scenario.sim.now)
    assert utilization > 0.6


def test_soft_state_drains_after_load_stops():
    scenario, _left, _ = drive_dumbbell(congestion_enabled=True, seconds=0.5)
    scenario.sim.run(until=scenario.sim.now + 3.0)
    total_limits = sum(
        len(r.congestion.limits) for r in scenario.routers.values()
        if r.congestion is not None
    )
    assert total_limits == 0
