"""End-to-end integration: directory + tokens + router + transport."""


from repro.core.router import RouterConfig
from repro.directory import RouteQuery
from repro.directory.pathfind import PathObjective
from repro.scenarios import build_sirpent_campus, build_sirpent_line
from repro.transport import RouteManager, TransportConfig


def test_full_stack_transaction_with_tokens():
    """Directory-issued tokens authorize the path; accounting accrues."""
    config = RouterConfig(require_tokens=True)
    scenario = build_sirpent_line(n_routers=2, router_config=config)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 64), hint="server")
    routes = scenario.directory.query("src", RouteQuery(
        "dst.lab.edu", dest_socket=TransportConfig().socket,
        with_tokens=True, account=1234, reverse_ok=True,
    ))
    manager = RouteManager(scenario.sim, routes)
    results = []
    client.transact(manager, entity, b"q", 512, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    for router in scenario.routers.values():
        usage = router.token_cache.ledger.usage(1234)
        assert usage.packets >= 1  # request charged; reply uses reverse auth


def test_tokenless_traffic_rejected_when_required():
    config = RouterConfig(require_tokens=True)
    scenario = build_sirpent_line(n_routers=1, router_config=config)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 64))
    routes = scenario.vmtp_routes("src", "dst")  # no tokens
    manager = RouteManager(scenario.sim, routes)
    results = []
    client.transact(manager, entity, b"q", 128, results.append)
    scenario.sim.run(until=5.0)
    assert not results[0].ok
    assert scenario.routers["r1"].stats.dropped_token.count > 0


def test_campus_cross_region_transaction():
    """The paper's running example: Ethernet - router - WAN - router -
    Ethernet, with hierarchical names."""
    scenario = build_sirpent_campus()
    client = scenario.transport("venus")
    server = scenario.transport("milo")
    entity = server.create_entity(lambda m: (b"pong", 256), hint="milo-srv")
    routes = scenario.directory.query("venus", RouteQuery(
        "milo.lcs.mit.edu", dest_socket=TransportConfig().socket, k=1,
    ))
    assert routes and routes[0].hop_count == 2
    manager = RouteManager(scenario.sim, routes)
    results = []
    client.transact(manager, entity, b"hello mit", 700, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    # WAN propagation dominates: RTT slightly above 2 x 5 ms.
    assert 10e-3 < results[0].rtt < 20e-3


def test_campus_name_resolution_walks_hierarchy():
    scenario = build_sirpent_campus()
    latency_far = scenario.directory.query_latency("venus", "milo.lcs.mit.edu")
    latency_near = scenario.directory.query_latency("venus", "gregorio.cs.stanford.edu")
    assert latency_far > latency_near


def test_secure_objective_end_to_end():
    """A client asking for a secure route avoids the insecure link."""
    scenario = build_sirpent_line(n_routers=1)
    # Add a second, insecure-but-fast parallel path through r_fast.
    from repro.core.router import SirpentRouter

    fast = scenario.topology.add_node(
        SirpentRouter(scenario.sim, "r-fast",
                      control_plane=scenario.control_plane)
    )
    scenario.routers["r-fast"] = fast
    scenario.topology.connect(
        scenario.hosts["src"], fast, propagation_delay=1e-6, secure=False,
    )
    scenario.topology.connect(
        fast, scenario.hosts["dst"], propagation_delay=1e-6, secure=False,
    )
    fast_route = scenario.directory.query("src", RouteQuery("dst.lab.edu"))[0]
    secure_route = scenario.directory.query("src", RouteQuery(
        "dst.lab.edu", objective=PathObjective.SECURE,
    ))[0]
    assert not fast_route.secure
    assert secure_route.secure
    assert secure_route.propagation_delay > fast_route.propagation_delay
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    scenario.hosts["src"].send(secure_route, b"secret", 200)
    scenario.sim.run(until=1.0)
    assert got[0].packet.hop_log == ["r1"]


def test_reply_needs_no_directory_lookup():
    """Servers answer along the reversed trailer: directory query count
    stays at the client's single lookup."""
    scenario = build_sirpent_line(n_routers=2)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 2048), hint="server")
    routes = scenario.vmtp_routes("src", "dst")
    queries_before = scenario.directory.queries_served
    manager = RouteManager(scenario.sim, routes)
    results = []
    client.transact(manager, entity, b"q", 100, results.append)
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert scenario.directory.queries_served == queries_before


def test_intra_host_addressing_unified():
    """§2.2: the same segment mechanism addresses ports *within* hosts."""
    scenario = build_sirpent_line(n_routers=1)
    inboxes = {socket: [] for socket in (0, 3, 200)}
    for socket, box in inboxes.items():
        scenario.hosts["dst"].bind(socket, box.append)
    for socket in inboxes:
        route = scenario.routes("src", "dst", dest_socket=socket)[0]
        scenario.hosts["src"].send(route, f"to-{socket}".encode(), 100)
    scenario.sim.run(until=1.0)
    for socket, box in inboxes.items():
        assert len(box) == 1
        assert box[0].socket == socket
