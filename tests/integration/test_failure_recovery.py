"""Integration: reaction to link failure — Sirpent rebind vs IP (§6.3)."""


from repro.scenarios import build_ip_parallel, build_sirpent_parallel
from repro.transport import RouteManager, TransportConfig


def test_sirpent_client_rebinds_quickly():
    """A client holding k routes switches after its retransmission
    timeout — no network-wide reconvergence required."""
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=50e-6)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 64), hint="server")
    routes = scenario.vmtp_routes("src", "dst", k=2)
    manager = RouteManager(scenario.sim, routes)

    # Warm up on the primary path.
    warm = []
    client.transact(manager, entity, b"warm", 64, warm.append)
    scenario.sim.run(until=0.5)
    assert warm[0].ok and warm[0].route_switches == 0

    # Kill the primary; the next transaction must succeed via the spare.
    scenario.topology.fail_link("rA--p1")
    fail_time = scenario.sim.now
    results = []
    client.transact(manager, entity, b"recover", 64, results.append)
    scenario.sim.run(until=fail_time + 2.0)
    assert results[0].ok
    assert results[0].route_switches >= 1
    recovery = manager.last_switch_at - fail_time
    assert recovery < 100e-3  # a few retransmission timeouts at most


def test_ip_needs_full_reconvergence():
    """The same failure under IP: traffic is black-holed until hellos
    time out, LSAs flood and SPF runs."""
    scenario = build_ip_parallel(n_paths=2)
    scenario.converge()
    entry = scenario.routers["rA"]
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    scenario.hosts["src"].send("dst", b"before", 100, protocol=42)
    scenario.sim.run(until=scenario.sim.now + 0.1)
    assert len(received) == 1

    scenario.topology.fail_link("rA--p1")
    fail_time = scenario.sim.now
    # Probe every 5 ms; note when delivery resumes.
    arrivals = []

    def probe():
        scenario.hosts["src"].send("dst", b"probe", 100, protocol=42)

    for step in range(60):
        scenario.sim.at(fail_time + step * 5e-3, probe)
    scenario.hosts["dst"].bind_protocol(43, arrivals.append)  # unused
    scenario.sim.run(until=fail_time + 0.5)
    resumed = [p for p in received[1:]]
    assert resumed, "IP never recovered"
    first_resume = min(p.created_at for p in resumed)
    ip_outage = first_resume - fail_time
    # Detection needs the dead interval (30 ms) at minimum.
    assert ip_outage > 25e-3
    table_change = entry.routing.last_table_change - fail_time
    assert table_change > 25e-3


def test_sirpent_beats_ip_recovery_time():
    """Head-to-head on twin topologies: client rebind is faster than
    distributed reconvergence, the §6.3 conjecture."""
    # --- Sirpent ---
    sirpent = build_sirpent_parallel(n_paths=2, path_delay_step=50e-6)
    client = sirpent.transport("src")
    server = sirpent.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 64))
    manager = RouteManager(sirpent.sim, sirpent.vmtp_routes("src", "dst", k=2))
    warm = []
    client.transact(manager, entity, b"w", 64, warm.append)
    sirpent.sim.run(until=0.5)
    sirpent.topology.fail_link("rA--p1")
    s_fail = sirpent.sim.now
    done = []
    client.transact(manager, entity, b"r", 64, done.append)
    sirpent.sim.run(until=s_fail + 2.0)
    sirpent_recovery = done[0].rtt  # includes detection + switch + retry

    # --- IP twin ---
    ip = build_ip_parallel(n_paths=2)
    ip.converge()
    received = []
    ip.hosts["dst"].bind_protocol(42, received.append)
    ip.topology.fail_link("rA--p1")
    i_fail = ip.sim.now
    for step in range(100):
        ip.sim.at(i_fail + step * 5e-3,
                  lambda: ip.hosts["src"].send("dst", b"p", 100, protocol=42))
    ip.sim.run(until=i_fail + 1.0)
    assert received
    ip_recovery = min(p.created_at for p in received) - i_fail

    assert done[0].ok
    assert sirpent_recovery < ip_recovery


def test_advisory_refreshes_dead_routes():
    """Directory advisories push fresh routes after the topology view
    catches up, so clients regain path diversity (§6.3)."""
    scenario = build_sirpent_parallel(n_paths=3, path_delay_step=50e-6)
    manager = RouteManager(
        scenario.sim, scenario.vmtp_routes("src", "dst", k=3)
    )
    from repro.directory import RouteQuery

    scenario.directory.subscribe(
        "src",
        RouteQuery("dst.lab.edu", k=3,
                   dest_socket=TransportConfig().socket),
        manager.adopt,
    )
    scenario.sim.run(until=0.2)
    assert len(manager.routes) == 3
    scenario.topology.fail_link("rA--p1")
    scenario.sim.run(until=0.5)
    # The advisory replaced the set: only live paths remain.
    assert len(manager.routes) == 2
    assert all("p1" not in r.destination for r in manager.routes)
