"""Stress and determinism on randomized internetworks."""

import pytest

from repro.scenarios import build_sirpent_random
from repro.transport import RouteManager, TransportConfig


def run_workload(seed: int):
    """Drive a mixed transaction workload over a random internetwork
    and return a deterministic fingerprint of what happened."""
    scenario = build_sirpent_random(
        n_routers=10, n_hosts=6, extra_edges=5, seed=seed,
    )
    config = TransportConfig(base_timeout=20e-3)
    transports = {
        name: scenario.transport(name, config=config)
        for name in scenario.hosts
    }
    entities = {
        name: transport.create_entity(
            lambda m: (b"ok", 200), hint=f"svc-{name}"
        )
        for name, transport in transports.items()
    }
    pair_rng = scenario.rngs.stream("workload")
    results = []
    names = sorted(scenario.hosts)
    for index in range(40):
        src, dst = pair_rng.sample(names, 2)
        routes = scenario.vmtp_routes(src, dst, k=2)
        if not routes:
            continue
        manager = RouteManager(scenario.sim, routes)
        size = pair_rng.choice((64, 700, 2500))
        scenario.sim.at(
            index * 5e-3,
            lambda s=src, d=dst, m=manager, z=size: transports[s].transact(
                m, entities[d], b"q", z, results.append,
            ),
        )
    scenario.sim.run(until=5.0)
    fingerprint = (
        len(results),
        sum(1 for r in results if r.ok),
        round(sum(r.rtt for r in results if r.ok), 9),
        sum(r.retries for r in results),
        scenario.sim.events_executed,
    )
    return scenario, results, fingerprint


def test_all_transactions_complete_on_random_topology():
    _scenario, results, _fp = run_workload(seed=11)
    assert len(results) == 40
    assert all(r.ok for r in results)


def test_bit_for_bit_determinism():
    """Same seed, same internetwork, same every-event outcome."""
    _s1, _r1, fp1 = run_workload(seed=23)
    _s2, _r2, fp2 = run_workload(seed=23)
    assert fp1 == fp2


def test_different_seeds_differ():
    _s1, _r1, fp1 = run_workload(seed=23)
    _s2, _r2, fp2 = run_workload(seed=24)
    assert fp1 != fp2


def test_every_host_pair_is_routable():
    scenario = build_sirpent_random(n_routers=8, n_hosts=5, seed=3)
    names = sorted(scenario.hosts)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            routes = scenario.routes(src, dst)
            assert routes, f"{src} -> {dst} unroutable"
            assert routes[0].segments[-1].port == 0


def test_builder_validation():
    with pytest.raises(ValueError):
        build_sirpent_random(n_routers=1)
    with pytest.raises(ValueError):
        build_sirpent_random(n_hosts=1)
