"""Failure-injection integration tests: soft state, flaps, preemption."""


from repro.core.router import RouterConfig
from repro.directory import RouteQuery
from repro.scenarios import build_sirpent_line, build_sirpent_parallel
from repro.transport import RouteManager, TransportConfig
from repro.viper.flags import PRIORITY_PREEMPT_HIGH


def test_token_cache_flush_is_survivable():
    """Token cache is soft state (§2.2): flushing it mid-stream (a
    router restart) costs at most re-verification, never correctness."""
    config = RouterConfig(require_tokens=True)
    scenario = build_sirpent_line(n_routers=2, router_config=config)
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    route = scenario.directory.query("src", RouteQuery(
        "dst.lab.edu", with_tokens=True, account=5,
    ))[0]
    for index in range(4):
        scenario.sim.at(index * 10e-3,
                        lambda: scenario.hosts["src"].send(route, b"x", 200))
    # Flush both caches between the second and third packet.
    scenario.sim.at(15e-3, scenario.routers["r1"].token_cache.flush)
    scenario.sim.at(15e-3, scenario.routers["r2"].token_cache.flush)
    scenario.sim.run(until=0.5)
    assert len(got) == 4  # optimistic re-verification: nothing lost
    # The caches re-learned the token.
    assert len(scenario.routers["r1"].token_cache) == 1


def test_route_flapping_keeps_transactions_flowing():
    """A flapping primary path: the client keeps completing
    transactions by bouncing between routes."""
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=50e-6)
    config = TransportConfig(base_timeout=5e-3, retries_per_route=1)
    client = scenario.transport("src", config=config)
    server = scenario.transport("dst", config=config)
    entity = server.create_entity(lambda m: (b"ok", 32), hint="server")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst", k=2))

    # Flap the primary every 100 ms.
    for cycle in range(5):
        scenario.sim.at(0.05 + cycle * 0.2,
                        scenario.topology.fail_link, "rA--p1")
        scenario.sim.at(0.15 + cycle * 0.2,
                        scenario.topology.restore_link, "rA--p1")

    results = []

    def issue() -> None:
        if len(results) >= 20:
            return
        client.transact(manager, entity, b"q", 128,
                        lambda r: (results.append(r), issue()))

    issue()
    scenario.sim.run(until=5.0)
    assert len(results) == 20
    assert all(r.ok for r in results)


def test_preempted_bulk_recovers_by_retransmission():
    """Priority-7 preemption aborts bulk packets mid-wire; the bulk
    transport's selective retransmission completes the transfer anyway."""
    from repro.workloads.apps import FileTransferApp, VideoStreamApp

    scenario = build_sirpent_line(
        n_routers=2, extra_host_pairs=1,
        router_config=RouterConfig(congestion_enabled=False),
    )
    video_route = scenario.routes("src", "dst", dest_socket=0)[0]
    scenario.hosts["dst"].bind(0, lambda d: None)
    VideoStreamApp(
        scenario.sim, scenario.hosts["src"], video_route,
        frame_bytes=400, frame_interval=1.5e-3,
        priority=PRIORITY_PREEMPT_HIGH, duration=1.0,
    )
    bulk_client = scenario.transport("src2")
    bulk_server = scenario.transport("dst2")
    entity = bulk_server.create_entity(lambda m: (b"", 1), hint="sink")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src2", "dst2"))
    finished = []
    bulk = FileTransferApp(
        scenario.sim, bulk_client, manager, entity,
        total_bytes=300_000, priority=0, on_complete=finished.append,
    )
    scenario.sim.run(until=8.0)
    preemptions = sum(
        p.preemptions.count
        for r in scenario.routers.values()
        for p in r.output_ports.values()
    )
    assert preemptions > 0  # the video really did abort bulk packets
    assert finished and not bulk.failed
    assert bulk.moved == 300_000
    assert bulk_client.stats.retransmissions.count > 0


def test_directory_advisory_tracks_flaps():
    """Advisories converge to the live topology after each flap."""
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=50e-6)
    advisories = []
    scenario.directory.subscribe(
        "src", RouteQuery("dst.lab.edu", k=2), advisories.append,
    )
    scenario.sim.run(until=0.1)
    scenario.topology.fail_link("rA--p1")
    scenario.sim.run(until=0.3)
    scenario.topology.restore_link("rA--p1")
    scenario.sim.run(until=0.6)
    # initial (2 routes), failure (1 route), restore (2 routes).
    assert len(advisories) == 3
    assert len(advisories[0]) == 2
    assert len(advisories[1]) == 1
    assert len(advisories[2]) == 2


def test_dead_channel_loses_in_flight_cut_through():
    """A link failing mid-cut-through loses the packet cleanly (no
    duplicate, no crash); the transport's retry delivers it."""
    scenario = build_sirpent_line(n_routers=2)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 32), hint="server")
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst"))
    results = []
    client.transact(manager, entity, b"q", 1400, results.append)
    # Kill the middle link while the packet is on it (~0.9 ms in).
    scenario.sim.at(0.9e-3, scenario.topology.fail_link, "r1--r2")
    scenario.sim.at(30e-3, scenario.topology.restore_link, "r1--r2")
    scenario.sim.run(until=2.0)
    assert results[0].ok
    assert results[0].retries >= 1
    assert server.stats.received_pdus.count >= 1
