"""Integration: Sirpent across an X.25/X.75 circuit network (§2.3).

"An analogous approach can be used to exploit existing X.25/X.75
(inter)networks, except for the additional problem of managing the
virtual circuits" — the tunnel attachment manages them: on-demand
setup, held while busy, released when idle.
"""


from repro.baselines.cvc import CvcHost, CvcSwitch
from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.core.tunnel import attach_cvc_tunnel
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build(idle_timeout=0.5):
    """src -- gwA ==(CVC network)== gwB -- dst."""
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    gw_a = topo.add_node(SirpentRouter(sim, "gwA"))
    gw_b = topo.add_node(SirpentRouter(sim, "gwB"))
    cvc_a = topo.add_node(CvcHost(sim, "cvcA"))
    cvc_b = topo.add_node(CvcHost(sim, "cvcB"))
    s1 = topo.add_node(CvcSwitch(sim, "s1"))
    s2 = topo.add_node(CvcSwitch(sim, "s2"))
    _, src_port, _ = topo.connect(src, gw_a)
    _, gwb_out, _ = topo.connect(gw_b, dst)
    _, ca_port, _ = topo.connect(cvc_a, s1)
    topo.connect(s1, s2)
    _, _, cb_port = topo.connect(s2, cvc_b)
    cvc_a.set_gateway(ca_port)
    cvc_b.set_gateway(cb_port)
    s1.install_routes(topo)
    s2.install_routes(topo)
    tunnel_a = attach_cvc_tunnel(gw_a, cvc_a, "cvcB",
                                 idle_timeout=idle_timeout)
    tunnel_b = attach_cvc_tunnel(gw_b, cvc_b, "cvcA",
                                 idle_timeout=idle_timeout)
    return (sim, topo, src, dst, tunnel_a, tunnel_b,
            src_port, gwb_out, [s1, s2])


def route_via(tunnel_a, gwb_out, src_port):
    return StaticRoute([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)


def test_first_packet_triggers_setup_then_flows():
    sim, _t, src, dst, tunnel_a, _tb, src_port, gwb_out, switches = build()
    got = []
    dst.bind(0, got.append)
    route = route_via(tunnel_a, gwb_out, src_port)
    src.send(route, b"one", 300)
    src.send(route, b"two", 300)  # queued behind the pending setup
    sim.run(until=0.3)            # before the 0.5 s idle release
    assert [d.payload for d in got] == [b"one", b"two"]
    assert tunnel_a.setups == 1  # one circuit served both
    assert all(s.held_circuits == 1 for s in switches)
    sim.run(until=1.0)           # idle: the tunnel returns the state
    assert all(s.held_circuits == 0 for s in switches)


def test_idle_circuit_released_and_reestablished():
    sim, _t, src, dst, tunnel_a, _tb, src_port, gwb_out, switches = build(
        idle_timeout=0.1,
    )
    got = []
    dst.bind(0, got.append)
    route = route_via(tunnel_a, gwb_out, src_port)
    src.send(route, b"first", 300)
    sim.run(until=0.5)  # past the idle timeout
    assert all(s.held_circuits == 0 for s in switches)  # state returned
    src.send(route, b"second", 300)
    sim.run(until=1.0)
    assert [d.payload for d in got] == [b"first", b"second"]
    assert tunnel_a.setups == 2  # re-established on demand


def test_busy_circuit_stays_open():
    sim, _t, src, dst, tunnel_a, _tb, src_port, gwb_out, _sw = build(
        idle_timeout=0.2,
    )
    got = []
    dst.bind(0, got.append)
    route = route_via(tunnel_a, gwb_out, src_port)
    for index in range(6):
        sim.at(index * 0.1, lambda: src.send(route, b"tick", 100))
    sim.run(until=1.5)
    assert len(got) == 6
    assert tunnel_a.setups == 1  # traffic kept it alive


def test_return_route_through_the_circuit():
    sim, _t, src, dst, tunnel_a, tunnel_b, src_port, gwb_out, _sw = build()
    got, replies = [], []
    dst.bind(0, got.append)
    src.bind(0, replies.append)
    src.send(route_via(tunnel_a, gwb_out, src_port), b"ping", 200)
    sim.run(until=1.0)
    assert got
    dst.send_return(got[0], b"pong", 100)
    sim.run(until=2.0)
    assert replies and replies[0].payload == b"pong"
    assert tunnel_b.encapsulated == 1


def test_setup_rtt_charged_to_first_packet_only():
    sim, _t, src, dst, tunnel_a, _tb, src_port, gwb_out, _sw = build()
    got = []
    dst.bind(0, got.append)
    route = route_via(tunnel_a, gwb_out, src_port)
    src.send(route, b"cold", 300)
    sim.run(until=0.3)
    src.send(route, b"warm", 300)
    sim.run(until=0.6)
    cold = got[0].one_way_delay
    warm = got[1].one_way_delay
    # The first packet absorbed the circuit setup round trip.
    assert cold > warm + 1e-3
