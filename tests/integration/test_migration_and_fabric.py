"""Integration: entity migration (§4.1), hierarchical fabrics (§5), and
cut-through gap preservation (§2.1)."""


from repro.core.host import SirpentHost
from repro.net.fabric import build_fabric
from repro.net.topology import Topology
from repro.scenarios import build_sirpent_line, build_sirpent_parallel
from repro.sim.engine import Simulator
from repro.transport import RouteManager, TransportConfig, VmtpTransport
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


# ---------------------------------------------------------------------------
# Process migration over location-independent entity ids (§4.1).
# ---------------------------------------------------------------------------


def test_entity_migration_keeps_the_same_id():
    """A server entity moves host; the client keeps the 64-bit id and
    only refreshes routes (the directory re-registers the service)."""
    scenario = build_sirpent_parallel(n_paths=1)
    sim = scenario.sim
    # A third host to migrate to, attached at the far router.
    new_home = SirpentHost(sim, "dst2", control_plane=scenario.control_plane)
    scenario.topology.add_node(new_home)
    scenario.hosts["dst2"] = new_home
    scenario.topology.connect(new_home, scenario.routers["rB"])
    scenario.directory.register_host("dst2", "dst2.lab.edu")

    config = TransportConfig(base_timeout=5e-3, max_total_retries=4)
    client = scenario.transport("src", config=config)
    old_server = scenario.transport("dst", config=config)
    new_server = scenario.transport("dst2", config=config)

    handler_calls = []

    def handler(message):
        handler_calls.append(message)
        return b"served", 64

    entity = old_server.create_entity(handler, hint="service")

    def fresh_routes():
        # In deployment the directory maps the *service name* to its
        # current host; we model the re-registration directly.
        return scenario.vmtp_routes("src", "dst2")

    manager = RouteManager(
        sim, scenario.vmtp_routes("src", "dst"), refresher=fresh_routes,
    )
    results = []
    client.transact(manager, entity, b"q1", 64, results.append)
    sim.run(until=0.5)
    assert results[0].ok

    # Migrate: the entity leaves dst and is adopted by dst2.
    old_server.drop_entity(entity)
    new_server.adopt_entity(entity, handler)

    client.transact(manager, entity, b"q2", 64, results.append)
    sim.run(until=3.0)
    # Packets to the old host were misdelivered (unknown entity there),
    # the retries exhausted the stale route and the refresher supplied
    # the new one — same entity id throughout.
    assert results[1].ok
    assert results[1].route_switches >= 1
    assert old_server.stats.misdelivered.count >= 1
    assert len(handler_calls) == 2


def test_multi_homed_host_reachable_via_either_interface():
    """§4.1: the entity id is independent of the attachment, so either
    interface works — TCP's pseudo-header binding is the contrast."""
    sim = Simulator()
    topo = Topology(sim)
    from repro.core.router import SirpentRouter

    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    r1 = topo.add_node(SirpentRouter(sim, "r1"))
    _, src_port, _ = topo.connect(src, r1)
    _, out_a, dst_a = topo.connect(r1, dst, name="if-a")   # interface A
    _, out_b, dst_b = topo.connect(r1, dst, name="if-b")   # interface B
    t_src = VmtpTransport(sim, src)
    t_dst = VmtpTransport(sim, dst)
    entity = t_dst.create_entity(lambda m: (b"ok", 16), hint="dual")

    for out_port in (out_a, out_b):
        route = StaticRoute(
            [HeaderSegment(port=out_port), HeaderSegment(port=1)], src_port
        )
        from repro.directory.routes import Route

        results = []
        manager = RouteManager(sim, [Route(
            destination="dst", segments=route.segments,
            first_hop_port=src_port, first_hop_mac=None,
            bottleneck_bps=10e6, propagation_delay=20e-6, hop_count=1,
        )])
        t_src.transact(manager, entity, b"q", 32, results.append)
        sim.run(until=sim.now + 0.5)
        assert results[0].ok, f"interface via port {out_port} failed"


# ---------------------------------------------------------------------------
# Hierarchical switch fabric (§5).
# ---------------------------------------------------------------------------


def build_fabric_network(n_leaves=3):
    sim = Simulator()
    topo = Topology(sim)
    fabric = build_fabric(sim, topo, n_leaves=n_leaves)
    hosts = []
    host_links = []
    for index in range(n_leaves):
        host = topo.add_node(SirpentHost(sim, f"h{index}"))
        leaf = fabric.leaf_for(index)
        _, host_port, leaf_port = topo.connect(host, leaf, rate_bps=100e6,
                                               propagation_delay=1e-6)
        hosts.append((host, host_port))
        host_links.append(leaf_port)
    return sim, topo, fabric, hosts, host_links


def test_fabric_crossing_delivers():
    sim, _t, fabric, hosts, host_links = build_fabric_network()
    src, src_port = hosts[0]
    dst, _ = hosts[2]
    got = []
    dst.bind(0, got.append)
    segments = fabric.internal_segments(
        src_external=0, dst_leaf_port=host_links[2], dst_external=2,
    ) + [HeaderSegment(port=0)]
    src.send(StaticRoute(segments, src_port), b"through the fabric", 400)
    sim.run(until=1.0)
    assert len(got) == 1
    # Crossed leaf0 -> root -> leaf2.
    assert got[0].packet.hop_log == [
        "fabric-leaf0", "fabric-root", "fabric-leaf2",
    ]


def test_same_leaf_short_circuit():
    sim, _t, fabric, hosts, host_links = build_fabric_network()
    segments = fabric.internal_segments(0, host_links[0], 0)
    assert len(segments) == 1  # no trip to the root


def test_fabric_stages_cost_only_decision_delays():
    """§5: hierarchy 'imposes no significant additional delay given the
    use of cut-through routing at each stage'."""
    sim, _t, fabric, hosts, host_links = build_fabric_network()
    src, src_port = hosts[0]
    dst, _ = hosts[1]
    got = []
    dst.bind(0, got.append)
    segments = fabric.internal_segments(0, host_links[1], 1) + [
        HeaderSegment(port=0)
    ]
    src.send(StaticRoute(segments, src_port), b"x", 1000)
    sim.run(until=1.0)
    delay = got[0].one_way_delay
    serialization = (1000 + 16) * 8 / 100e6  # ~81 us
    # 3 cut-through stages add ~3 decision delays + tiny pipeline, so
    # the total stays within ~25% of one serialization.
    assert delay < serialization * 1.25


# ---------------------------------------------------------------------------
# Cut-through preserves sender pacing (§2.1).
# ---------------------------------------------------------------------------


def test_cut_through_preserves_rate_gaps():
    """"The real-time switching also preserves the gaps introduced by
    the sender using a rate-based transport protocol" (§2.1)."""
    scenario = build_sirpent_line(n_routers=3)
    sim = scenario.sim
    arrivals = []
    scenario.hosts["dst"].bind(0, lambda d: arrivals.append(d.arrived_at))
    route = scenario.routes("src", "dst")[0]
    gap = 2.5e-3
    for index in range(8):
        sim.at(index * gap,
               lambda: scenario.hosts["src"].send(route, b"x", 700))
    sim.run(until=1.0)
    spacings = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(abs(s - gap) < 1e-9 for s in spacings)
