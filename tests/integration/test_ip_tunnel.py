"""Integration: Sirpent over an IP internetwork as one logical hop (§2.3)."""


from repro.baselines.ip import IpAddressAllocator, IpHost, IpRouter
from repro.core.congestion import ControlPlane
from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.core.tunnel import attach_tunnel
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build_tunneled_internetwork(n_ip_routers=2):
    """src -- gwA ==(IP internetwork)== gwB -- dst.

    Each gateway is a Sirpent router co-located with an IP host; the IP
    cloud between them is a real link-state-routed line.
    """
    sim = Simulator()
    topo = Topology(sim)
    plane = ControlPlane(sim, topo)
    allocator = IpAddressAllocator()

    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    gw_a = topo.add_node(SirpentRouter(sim, "gwA", control_plane=plane))
    gw_b = topo.add_node(SirpentRouter(sim, "gwB", control_plane=plane))
    ip_a = topo.add_node(IpHost(sim, "ipA", allocator))
    ip_b = topo.add_node(IpHost(sim, "ipB", allocator))
    ip_routers = [
        topo.add_node(IpRouter(sim, f"ipr{i + 1}", plane, allocator))
        for i in range(n_ip_routers)
    ]
    # Sirpent access links.
    _, src_port, _ = topo.connect(src, gw_a)
    _, gwb_out, _ = topo.connect(gw_b, dst)
    # IP cloud: ipA - ipr1 - ... - iprN - ipB.
    _, ipa_port, _ = topo.connect(ip_a, ip_routers[0])
    for a, b in zip(ip_routers, ip_routers[1:]):
        topo.connect(a, b)
    _, _, ipb_port = topo.connect(ip_routers[-1], ip_b)
    ip_a.set_gateway(ipa_port)
    ip_b.set_gateway(ipb_port)
    names = {r.name for r in ip_routers}
    for router in ip_routers:
        router.routing.discover_neighbors(topo, names)
        router.routing.start()
    sim.run(until=0.3)  # converge the IP cloud

    # The tunnel: one logical port on each gateway.
    tunnel_a = attach_tunnel(gw_a, ip_a, peer_gateway="ipB")
    tunnel_b = attach_tunnel(gw_b, ip_b, peer_gateway="ipA")
    return (sim, topo, src, dst, gw_a, gw_b, tunnel_a, tunnel_b,
            src_port, gwb_out, ip_routers)


def test_sirpent_packet_crosses_ip_cloud():
    (sim, _t, src, dst, gw_a, gw_b, tunnel_a, tunnel_b,
     src_port, gwb_out, ip_routers) = build_tunneled_internetwork()
    got = []
    dst.bind(0, got.append)
    # The source names just three hops: gwA's tunnel port, gwB's exit,
    # destination socket — the whole IP internetwork is ONE logical hop.
    route = StaticRoute([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)
    src.send(route, b"across the internet", 600)
    sim.run(until=sim.now + 2.0)
    assert len(got) == 1
    delivered = got[0]
    assert delivered.payload == b"across the internet"
    # Sirpent-visible path: just the two gateways.
    assert delivered.packet.hop_log.count("gwA") == 1
    assert delivered.packet.hop_log.count("gwB") == 1
    # The IP routers really carried it (encapsulated).
    assert all(r.stats.forwarded.count >= 1 for r in ip_routers)
    assert tunnel_a.encapsulated == 1
    assert tunnel_b.decapsulated == 1


def test_return_route_crosses_back():
    (sim, _t, src, dst, gw_a, gw_b, tunnel_a, tunnel_b,
     src_port, gwb_out, _ipr) = build_tunneled_internetwork()
    got, replies = [], []
    dst.bind(0, got.append)
    src.bind(0, replies.append)
    route = StaticRoute([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)
    src.send(route, b"ping", 200)
    sim.run(until=sim.now + 2.0)
    assert got
    # The trailer's return route includes gwB's tunnel port back to gwA.
    ports = [s.port for s in got[0].return_segments]
    assert tunnel_b.port_id in ports
    dst.send_return(got[0], b"pong", 100)
    sim.run(until=sim.now + 2.0)
    assert replies and replies[0].payload == b"pong"
    assert tunnel_b.encapsulated == 1


def test_tunnel_mtu_truncates_oversized():
    (sim, _t, src, dst, _ga, _gb, tunnel_a, _tb,
     src_port, gwb_out, _ipr) = build_tunneled_internetwork()
    got = []
    dst.bind(0, got.append)
    route = StaticRoute([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)
    src.send(route, b"big", 3000)  # beyond the 1400B tunnel MTU
    sim.run(until=sim.now + 2.0)
    assert len(got) == 1
    assert got[0].truncated
    assert got[0].payload_size < 3000


def test_ip_cloud_failure_breaks_then_heals_tunnel():
    (sim, topo, src, dst, _ga, _gb, tunnel_a, _tb,
     src_port, gwb_out, ip_routers) = build_tunneled_internetwork(
        n_ip_routers=2,
    )
    got = []
    dst.bind(0, got.append)
    route = StaticRoute([
        HeaderSegment(port=tunnel_a.port_id),
        HeaderSegment(port=gwb_out),
        HeaderSegment(port=0),
    ], src_port)
    topo.fail_link("ipr1--ipr2")
    src.send(route, b"lost", 100)
    sim.run(until=sim.now + 0.5)
    assert got == []  # the IP cloud black-holed it
    topo.restore_link("ipr1--ipr2")
    sim.run(until=sim.now + 0.5)  # hellos re-establish, SPF reroutes
    src.send(route, b"healed", 100)
    sim.run(until=sim.now + 1.0)
    assert [d.payload for d in got] == [b"healed"]
