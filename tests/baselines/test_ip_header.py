"""Unit tests for the IPv4-like header and checksum arithmetic."""

import pytest

from repro.baselines.ip.header import (
    FLAG_DONT_FRAGMENT,
    FLAG_MORE_FRAGMENTS,
    IPV4_HEADER_BYTES,
    IpHeader,
    internet_checksum,
)


def make_header(**overrides):
    fields = dict(src=0x0A000001, dst=0x0A000002, total_length=120, ttl=64)
    fields.update(overrides)
    return IpHeader(**fields).with_checksum()


def test_header_is_20_bytes():
    assert len(make_header().to_bytes()) == IPV4_HEADER_BYTES


def test_checksum_verifies():
    header = make_header()
    assert header.checksum_ok()


def test_corruption_detected():
    header = make_header()
    data = bytearray(header.to_bytes())
    data[16] ^= 0x01  # flip a bit in src
    corrupted = IpHeader.from_bytes(bytes(data))
    assert not corrupted.checksum_ok()


def test_roundtrip():
    header = make_header(
        identification=0x1234, ttl=17, protocol=6, tos=0xA0,
        flags=FLAG_DONT_FRAGMENT, fragment_offset=0,
    )
    decoded = IpHeader.from_bytes(header.to_bytes())
    assert decoded == header


def test_known_checksum_vector():
    """The classic RFC 1071 worked example."""
    data = bytes([
        0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
        0x40, 0x11, 0x00, 0x00,  # checksum zeroed
        0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
    ])
    assert internet_checksum(data) == 0xB861


def test_odd_length_padding():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_ttl_decrement_incremental_checksum():
    """RFC 1141: the incremental update must equal a full recompute."""
    header = make_header(ttl=64)
    for _ in range(63):
        header = header.decrement_ttl()
        assert header.checksum_ok(), f"broken at ttl={header.ttl}"
    assert header.ttl == 1


def test_ttl_zero_rejected():
    header = make_header(ttl=0)
    with pytest.raises(ValueError):
        header.decrement_ttl()


def test_fragment_flags():
    header = make_header(flags=FLAG_MORE_FRAGMENTS, fragment_offset=185)
    assert header.more_fragments
    assert not header.dont_fragment
    decoded = IpHeader.from_bytes(header.to_bytes())
    assert decoded.fragment_offset == 185
    assert decoded.more_fragments


def test_non_ipv4_rejected():
    data = bytearray(make_header().to_bytes())
    data[0] = (6 << 4) | 5
    with pytest.raises(ValueError):
        IpHeader.from_bytes(bytes(data))


def test_short_buffer_rejected():
    with pytest.raises(ValueError):
        IpHeader.from_bytes(b"\x45\x00")
