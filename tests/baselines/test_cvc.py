"""Unit tests for the concatenated-virtual-circuit baseline."""


from repro.baselines.cvc import (
    CircuitState,
    CvcServer,
    CvcSwitchConfig,
    CvcTransactionClient,
)
from repro.scenarios import build_cvc_line


def test_setup_confirm_opens_circuit():
    scenario = build_cvc_line(n_switches=2)
    src = scenario.hosts["src"]
    circuits = []
    src.open_circuit("dst", circuits.append)
    scenario.sim.run(until=1.0)
    assert circuits[0].state is CircuitState.OPEN
    assert circuits[0].setup_time > 0
    for switch in scenario.switches.values():
        assert switch.held_circuits == 1


def test_setup_time_scales_with_hops():
    short = build_cvc_line(n_switches=1)
    long = build_cvc_line(n_switches=5)
    times = {}
    for label, scenario in (("short", short), ("long", long)):
        circuits = []
        scenario.hosts["src"].open_circuit("dst", circuits.append)
        scenario.sim.run(until=1.0)
        times[label] = circuits[0].setup_time
    assert times["long"] > times["short"] * 2


def test_data_flows_both_ways():
    scenario = build_cvc_line(n_switches=2)
    src, dst = scenario.hosts["src"], scenario.hosts["dst"]
    received_at_dst = []
    dst.on_data(lambda circuit, payload, size: received_at_dst.append(
        (circuit, payload, size)
    ))
    circuits = []
    src.open_circuit("dst", circuits.append)
    scenario.sim.run(until=0.5)
    circuit = circuits[0]
    src.send(circuit, b"forward", 500)
    scenario.sim.run(until=1.0)
    assert received_at_dst[0][1] == b"forward"
    # Reply on the same circuit.
    back = []
    src.on_data(lambda c, payload, size: back.append(payload))
    dst.send(received_at_dst[0][0], b"reverse", 200)
    scenario.sim.run(until=1.5)
    assert back == [b"reverse"]


def test_release_tears_down_state():
    scenario = build_cvc_line(n_switches=2)
    src = scenario.hosts["src"]
    circuits = []
    src.open_circuit("dst", circuits.append)
    scenario.sim.run(until=0.5)
    src.close_circuit(circuits[0])
    scenario.sim.run(until=1.0)
    for switch in scenario.switches.values():
        assert switch.held_circuits == 0
    assert circuits[0].state is CircuitState.CLOSED


def test_circuit_table_capacity_refuses():
    config = CvcSwitchConfig(max_circuits=2)
    scenario = build_cvc_line(n_switches=1, switch_config=config)
    src = scenario.hosts["src"]
    outcomes = []
    for _ in range(4):
        src.open_circuit("dst", lambda c: outcomes.append(c.state))
    scenario.sim.run(until=1.0)
    assert outcomes.count(CircuitState.OPEN) == 2
    assert outcomes.count(CircuitState.REFUSED) == 2
    assert scenario.switches["s1"].circuits_refused.count == 2


def test_bandwidth_reservation_blocks_oversubscription():
    """'resource reservation' — the switch refuses when the port's
    reservable bandwidth is exhausted (§1)."""
    scenario = build_cvc_line(n_switches=1)
    src = scenario.hosts["src"]
    outcomes = []
    # Port rate 10 Mbps, reservable 90%: two 4 Mbps fit, a third won't.
    for _ in range(3):
        src.open_circuit("dst", lambda c: outcomes.append(c.state),
                         reserve_bps=4e6)
    scenario.sim.run(until=1.0)
    assert outcomes.count(CircuitState.OPEN) == 2
    assert outcomes.count(CircuitState.REFUSED) == 1


def test_released_bandwidth_reusable():
    scenario = build_cvc_line(n_switches=1)
    src = scenario.hosts["src"]
    circuits = []
    src.open_circuit("dst", circuits.append, reserve_bps=8e6)
    scenario.sim.run(until=0.5)
    src.close_circuit(circuits[0])
    scenario.sim.run(until=1.0)
    src.open_circuit("dst", circuits.append, reserve_bps=8e6)
    scenario.sim.run(until=1.5)
    assert circuits[1].state is CircuitState.OPEN


def test_setup_timeout_on_dead_path():
    scenario = build_cvc_line(n_switches=2)
    scenario.topology.fail_link("s1--s2")
    # Routes were installed while the link was up: setup vanishes.
    src = scenario.hosts["src"]
    outcomes = []
    src.open_circuit("dst", lambda c: outcomes.append(c.state))
    scenario.sim.run(until=1.0)
    assert outcomes == [CircuitState.REFUSED]


class TestTransactionClient:
    def _serve(self, scenario):
        CvcServer(scenario.hosts["dst"], lambda payload, size: (b"pong", 100))

    def test_fresh_circuit_per_transaction(self):
        scenario = build_cvc_line(n_switches=2)
        self._serve(scenario)
        client = CvcTransactionClient(
            scenario.sim, scenario.hosts["src"], hold_circuits=False,
        )
        results = []
        client.transact("dst", b"q", 500, results.append)
        scenario.sim.run(until=1.0)
        assert results[0].ok
        assert results[0].setup_time > 0
        assert not results[0].circuit_reused
        # Circuit was closed afterwards: no held state.
        assert all(s.held_circuits == 0 for s in scenario.switches.values())

    def test_held_circuit_amortizes_setup(self):
        scenario = build_cvc_line(n_switches=2)
        self._serve(scenario)
        client = CvcTransactionClient(
            scenario.sim, scenario.hosts["src"], hold_circuits=True,
        )
        results = []
        client.transact("dst", b"q1", 500, results.append)
        scenario.sim.run(until=1.0)
        client.transact("dst", b"q2", 500, results.append)
        scenario.sim.run(until=2.0)
        assert results[0].ok and results[1].ok
        assert not results[0].circuit_reused
        assert results[1].circuit_reused
        assert results[1].total_time < results[0].total_time
        # But the switches still hold state — the paper's §1 trade-off.
        assert all(s.held_circuits == 1 for s in scenario.switches.values())
