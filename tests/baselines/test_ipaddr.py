"""Unit tests for the IP address allocator."""

import pytest

from repro.baselines.ip.ipaddr import IpAddressAllocator, format_ip, parse_ip


def test_format_parse_roundtrip():
    for text in ("10.0.0.1", "192.168.255.0", "0.0.0.0", "255.255.255.255"):
        assert format_ip(parse_ip(text)) == text


def test_parse_rejects_malformed():
    for bad in ("10.0.0", "10.0.0.0.0", "300.1.1.1", "a.b.c.d"):
        with pytest.raises(ValueError):
            parse_ip(bad)


def test_allocation_is_stable_per_name():
    allocator = IpAddressAllocator()
    first = allocator.allocate("hostA")
    second = allocator.allocate("hostA")
    assert first == second


def test_allocations_unique():
    allocator = IpAddressAllocator()
    addresses = {allocator.allocate(f"h{i}") for i in range(100)}
    assert len(addresses) == 100


def test_bidirectional_lookup():
    allocator = IpAddressAllocator()
    address = allocator.allocate("router9")
    assert allocator.address_of("router9") == address
    assert allocator.name_of(address) == "router9"


def test_unknown_lookups_raise():
    allocator = IpAddressAllocator()
    with pytest.raises(KeyError):
        allocator.address_of("ghost")
    with pytest.raises(KeyError):
        allocator.name_of(parse_ip("10.9.9.9"))


def test_addresses_in_ten_slash_eight():
    allocator = IpAddressAllocator()
    address = allocator.allocate("x")
    assert format_ip(address).startswith("10.")
