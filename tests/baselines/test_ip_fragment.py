"""Unit tests for IP fragmentation and all-or-nothing reassembly."""

import pytest

from repro.baselines.ip.fragment import Reassembler, fragment_packet
from repro.baselines.ip.header import IPV4_HEADER_BYTES, IpHeader, FLAG_DONT_FRAGMENT
from repro.baselines.ip.packet import IpPacket
from repro.sim.engine import Simulator


def make_packet(payload=2000, df=False, identification=7):
    header = IpHeader(
        src=1, dst=2, total_length=IPV4_HEADER_BYTES + payload,
        identification=identification, ttl=10,
        flags=FLAG_DONT_FRAGMENT if df else 0,
    ).with_checksum()
    return IpPacket(header=header, payload_size=payload, payload=b"data")


def test_small_packet_untouched():
    packet = make_packet(payload=100)
    assert fragment_packet(packet, mtu=576) == [packet]


def test_fragments_fit_mtu_and_cover_payload():
    packet = make_packet(payload=2000)
    fragments = fragment_packet(packet, mtu=576)
    assert all(f.wire_size() <= 576 for f in fragments)
    assert sum(f.payload_size for f in fragments) == 2000
    # Offsets are 8-byte aligned and contiguous.
    offset = 0
    for fragment in fragments:
        assert fragment.header.fragment_offset * 8 == offset
        offset += fragment.payload_size
    assert fragments[-1].header.more_fragments is False
    assert all(f.header.more_fragments for f in fragments[:-1])


def test_fragment_checksums_valid():
    for fragment in fragment_packet(make_packet(), mtu=576):
        assert fragment.header.checksum_ok()


def test_df_raises():
    with pytest.raises(ValueError):
        fragment_packet(make_packet(df=True), mtu=576)


def test_tiny_mtu_rejected():
    with pytest.raises(ValueError):
        fragment_packet(make_packet(), mtu=IPV4_HEADER_BYTES + 4)


def test_refragmentation_of_a_fragment():
    packet = make_packet(payload=2000)
    first_pass = fragment_packet(packet, mtu=1500)
    second_pass = fragment_packet(first_pass[0], mtu=576)
    offsets = [f.header.fragment_offset * 8 for f in second_pass]
    assert offsets[0] == 0
    assert all(f.header.more_fragments for f in second_pass)  # MF inherited


class TestReassembler:
    def test_in_order_reassembly(self):
        sim = Simulator()
        reassembler = Reassembler(sim)
        fragments = fragment_packet(make_packet(payload=2000), mtu=576)
        results = [reassembler.accept(f) for f in fragments]
        assert all(r is None for r in results[:-1])
        whole = results[-1]
        assert whole is not None
        assert whole.payload_size == 2000
        assert not whole.header.more_fragments
        assert reassembler.reassembled.count == 1

    def test_out_of_order_reassembly(self):
        sim = Simulator()
        reassembler = Reassembler(sim)
        fragments = fragment_packet(make_packet(payload=2000), mtu=576)
        whole = None
        for fragment in reversed(fragments):
            whole = reassembler.accept(fragment) or whole
        assert whole is not None and whole.payload_size == 2000

    def test_unfragmented_passes_through(self):
        sim = Simulator()
        reassembler = Reassembler(sim)
        packet = make_packet(payload=100)
        assert reassembler.accept(packet) is packet

    def test_missing_fragment_blocks_delivery(self):
        sim = Simulator()
        reassembler = Reassembler(sim)
        fragments = fragment_packet(make_packet(payload=2000), mtu=576)
        for fragment in fragments[:-1]:
            assert reassembler.accept(fragment) is None
        assert reassembler.pending == 1

    def test_timeout_discards_everything(self):
        """The all-or-nothing failure §4.3 contrasts with truncation."""
        sim = Simulator()
        reassembler = Reassembler(sim, timeout=0.5)
        fragments = fragment_packet(make_packet(payload=2000), mtu=576)
        for fragment in fragments[:-1]:
            reassembler.accept(fragment)
        sim.run(until=1.0)
        assert reassembler.pending == 0
        assert reassembler.timed_out.count == 1
        # The late straggler cannot complete: a fresh partial starts.
        assert reassembler.accept(fragments[-1]) is None

    def test_interleaved_datagrams_keep_separate(self):
        sim = Simulator()
        reassembler = Reassembler(sim)
        a = fragment_packet(make_packet(payload=1200, identification=1), 576)
        b = fragment_packet(make_packet(payload=1200, identification=2), 576)
        whole_a = whole_b = None
        for fragment_a, fragment_b in zip(a, b):  # interleave arrivals
            whole_a = reassembler.accept(fragment_a) or whole_a
            whole_b = reassembler.accept(fragment_b) or whole_b
        assert whole_a.header.identification == 1
        assert whole_b.header.identification == 2
        assert whole_a.payload_size == whole_b.payload_size == 1200
