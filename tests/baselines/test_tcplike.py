"""Unit tests for the TCP-like and UDP-like IP transports."""


from repro.baselines.ip.tcplike import TcpLikeTransport, UdpLikeTransport
from repro.scenarios import build_ip_line


def converged_pair(n_routers=2, **kwargs):
    scenario = build_ip_line(n_routers=n_routers, **kwargs)
    scenario.converge()
    return scenario


class TestUdpLike:
    def test_request_response(self):
        scenario = converged_pair()
        client = UdpLikeTransport(scenario.sim, scenario.hosts["src"])
        server = UdpLikeTransport(scenario.sim, scenario.hosts["dst"])
        server.serve(lambda payload, size: (b"pong", 150))
        results = []
        client.transact("dst", b"ping", 400, results.append)
        scenario.sim.run(until=scenario.sim.now + 1.0)
        assert results[0].ok
        assert results[0].rtt > 0
        assert results[0].retries == 0

    def test_retransmission_after_outage(self):
        scenario = converged_pair(n_routers=1)
        client = UdpLikeTransport(
            scenario.sim, scenario.hosts["src"], base_timeout=10e-3,
        )
        server = UdpLikeTransport(scenario.sim, scenario.hosts["dst"])
        server.serve(lambda payload, size: (b"pong", 50))
        link = "src--r1"
        scenario.topology.fail_link(link)
        scenario.sim.after(30e-3, scenario.topology.restore_link, link)
        results = []
        client.transact("dst", b"x", 100, results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert results[0].ok
        assert results[0].retries >= 1

    def test_gives_up_eventually(self):
        scenario = converged_pair(n_routers=1)
        client = UdpLikeTransport(
            scenario.sim, scenario.hosts["src"],
            base_timeout=5e-3, max_retries=2,
        )
        scenario.topology.fail_link("src--r1")
        results = []
        client.transact("dst", b"x", 100, results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert not results[0].ok
        assert "exhausted" in results[0].error


class TestTcpLike:
    def test_transaction_with_handshake(self):
        scenario = converged_pair()
        client = TcpLikeTransport(scenario.sim, scenario.hosts["src"])
        server = TcpLikeTransport(scenario.sim, scenario.hosts["dst"])
        server.serve(lambda payload, size: (b"pong", 300))
        results = []
        client.transact("dst", b"query", 2500, results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert results[0].ok
        assert results[0].handshake_time > 0
        assert results[0].rtt > results[0].handshake_time
        assert server.handshakes.count == 1

    def test_handshake_costs_a_round_trip(self):
        """§1's CVC critique applies to TCP too: setup delays the data."""
        scenario = converged_pair(n_routers=2)
        client = TcpLikeTransport(scenario.sim, scenario.hosts["src"])
        server = TcpLikeTransport(scenario.sim, scenario.hosts["dst"])
        server.serve(lambda payload, size: (b"pong", 50))
        tcp_results = []
        client.transact("dst", b"q", 200, tcp_results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        udp_client = UdpLikeTransport(scenario.sim, scenario.hosts["src"])
        udp_server = UdpLikeTransport(scenario.sim, scenario.hosts["dst"])
        udp_server.serve(lambda payload, size: (b"pong", 50))
        udp_results = []
        udp_client.transact("dst", b"q", 200, udp_results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert tcp_results[0].rtt > udp_results[0].rtt

    def test_large_request_windowed(self):
        scenario = converged_pair(n_routers=1)
        client = TcpLikeTransport(scenario.sim, scenario.hosts["src"])
        server = TcpLikeTransport(scenario.sim, scenario.hosts["dst"])
        sizes = []

        def handler(payload, size):
            sizes.append(size)
            return b"done", 100

        server.serve(handler)
        results = []
        client.transact("dst", b"bulk", 20000, results.append)
        scenario.sim.run(until=scenario.sim.now + 5.0)
        assert results[0].ok
        assert sizes == [20000]

    def test_retransmission_recovers_lost_segments(self):
        scenario = converged_pair(n_routers=1)
        client = TcpLikeTransport(
            scenario.sim, scenario.hosts["src"], base_timeout=20e-3,
        )
        server = TcpLikeTransport(scenario.sim, scenario.hosts["dst"])
        server.serve(lambda payload, size: (b"ok", 50))
        results = []
        client.transact("dst", b"q", 5000, results.append)
        # Briefly kill the path mid-request.
        scenario.sim.after(1e-3, scenario.topology.fail_link, "src--r1")
        scenario.sim.after(50e-3, scenario.topology.restore_link, "src--r1")
        scenario.sim.run(until=scenario.sim.now + 5.0)
        assert results[0].ok
        assert client.retransmissions.count >= 1

    def test_connect_timeout_fails(self):
        scenario = converged_pair(n_routers=1)
        client = TcpLikeTransport(
            scenario.sim, scenario.hosts["src"],
            base_timeout=5e-3, max_retries=2,
        )
        scenario.topology.fail_link("dst--r1")
        results = []
        client.transact("dst", b"q", 100, results.append)
        scenario.sim.run(until=scenario.sim.now + 2.0)
        assert not results[0].ok
        assert results[0].error == "connect timeout"
