"""Unit tests for link-state routing and the store-and-forward IP router."""


from repro.baselines.ip import IpRouterConfig
from repro.scenarios import build_ip_line, build_ip_parallel


def test_routing_converges_to_full_tables():
    scenario = build_ip_line(n_routers=3)
    scenario.converge()
    for router in scenario.routers.values():
        # Every other node (2 routers + 2 hosts) is reachable.
        assert len(router.routing.table) == 4


def test_spf_picks_shortest_path():
    scenario = build_ip_parallel(n_paths=2)
    scenario.converge()
    entry = scenario.routers["rA"]
    port, _mac = entry.routing.next_hop("dst")
    # Cost 1 path goes via p1; the port toward p1 was assigned first.
    edge_to_p1 = next(
        e for e in scenario.topology.edges_from("rA") if e.dst == "p1"
    )
    assert port == edge_to_p1.port_id


def test_end_to_end_datagram_delivery():
    scenario = build_ip_line(n_routers=2)
    scenario.converge()
    src, dst = scenario.hosts["src"], scenario.hosts["dst"]
    received = []
    dst.bind_protocol(42, received.append)
    src.send("dst", b"hello", 300, protocol=42)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert len(received) == 1
    assert received[0].payload_size == 300
    assert received[0].hop_log == ["r1", "r2"]


def test_ttl_decremented_per_hop():
    scenario = build_ip_line(n_routers=3)
    scenario.converge()
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    scenario.hosts["src"].send("dst", b"x", 100, protocol=42, ttl=64)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert received[0].header.ttl == 61
    assert received[0].header.checksum_ok()


def test_ttl_expiry_drops():
    scenario = build_ip_line(n_routers=3)
    scenario.converge()
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    scenario.hosts["src"].send("dst", b"x", 100, protocol=42, ttl=2)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert received == []
    dropped = sum(r.stats.dropped_ttl.count for r in scenario.routers.values())
    assert dropped == 1


def test_fragmentation_at_mtu_mismatch():
    scenario = build_ip_line(n_routers=1)
    # Shrink the router->dst MTU: the router must fragment.
    link = scenario.topology.links["dst--r1"]
    link.a_to_b.mtu = 576
    link.b_to_a.mtu = 576
    scenario.converge()
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    scenario.hosts["src"].send("dst", b"big", 1400, protocol=42)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert len(received) == 1
    assert received[0].payload_size == 1400
    assert scenario.routers["r1"].stats.fragments_made.count >= 2


def test_store_and_forward_processing_delay():
    """Each hop charges full reception plus the processing cost."""
    config = IpRouterConfig(process_delay=1e-3)
    scenario = build_ip_line(n_routers=2, router_config=config)
    scenario.converge()
    start = scenario.sim.now
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    scenario.hosts["src"].send("dst", b"x", 1000, protocol=42)
    scenario.sim.run(until=start + 1.0)
    delay = scenario.hosts["dst"].delivery_delay.mean
    serialization = 1020 * 8 / 10e6
    # 3 serializations + 2 processing delays at minimum.
    assert delay >= 3 * serialization + 2 * 1e-3


def test_failure_detection_and_reroute():
    """Hello timeouts find the dead link; SPF reroutes via the alternate."""
    scenario = build_ip_parallel(n_paths=2)
    scenario.converge()
    entry = scenario.routers["rA"]
    port_before, _ = entry.routing.next_hop("dst")
    scenario.topology.fail_link("rA--p1")
    fail_time = scenario.sim.now
    scenario.sim.run(until=fail_time + 1.0)
    port_after, _ = entry.routing.next_hop("dst")
    assert port_after != port_before
    convergence = entry.routing.last_table_change - fail_time
    # Detection needs ~dead_interval (30 ms) + flood + SPF delay.
    assert 20e-3 < convergence < 200e-3


def test_state_size_grows_with_topology():
    small = build_ip_line(n_routers=2)
    small.converge()
    large = build_ip_line(n_routers=6)
    large.converge()
    small_state = small.routers["r1"].routing.state_size()
    large_state = large.routers["r1"].routing.state_size()
    assert large_state["lsdb_entries"] > small_state["lsdb_entries"]
    assert large_state["forwarding_entries"] > small_state["forwarding_entries"]


def test_checksum_failure_dropped_at_router():
    scenario = build_ip_line(n_routers=1)
    scenario.converge()
    src = scenario.hosts["src"]
    received = []
    scenario.hosts["dst"].bind_protocol(42, received.append)
    packet = src.send("dst", b"x", 100, protocol=42)
    # Corrupt in flight: rebuild with a broken checksum and inject.
    from dataclasses import replace

    bad = packet
    bad.header = replace(bad.header, checksum=bad.header.checksum ^ 0xFFFF)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert scenario.routers["r1"].stats.dropped_checksum.count >= 1
    assert received == []
