"""One trace across the whole v2 write path, over real TCP.

The cross-layer propagation story end to end: a client host begins a
trace, sends a traced v2 ``rebind`` over the NDJSON-TCP directory
protocol; the live server stitches its command span in, forwards the
context to the cluster backend; the cluster records its routing
decision; the owning shard's leader and follower record their log
appends.  One trace id, one record, one tree spanning host → directory
→ cluster → both replicas — and the v1 path stays byte-pinned (no
``trace`` key ever leaves a v1 client).
"""

import asyncio
import json

import pytest

from repro.directory.cluster.client import ClusterClient
from repro.directory.cluster.cluster import DirectoryCluster
from repro.live.directory import (
    ClusterDirectoryBackend,
    LiveDirectoryClient,
    LiveDirectoryServer,
)
from repro.obs.trace import Tracer, tree_of

pytestmark = pytest.mark.live


def _flatten(node, depth=0):
    yield node["node"], depth
    for child in node["children"]:
        yield from _flatten(child, depth + 1)


def _cluster_server(tracer):
    """A live directory server fronting a 1-shard, rf=2 cluster."""
    cluster = DirectoryCluster(shard_count=1, replication_factor=2)
    cluster.set_tracer(tracer)
    backend = ClusterDirectoryBackend(
        ClusterClient(cluster.execute_raw, name="front")
    )
    server = LiveDirectoryServer(lambda client, query: [], backend=backend)
    server.set_tracer(tracer)
    return cluster, server


def test_traced_rebind_stitches_host_directory_cluster_replicas():
    async def scenario():
        tracer = Tracer()
        cluster, server = _cluster_server(tracer)
        address = await server.start()
        client = LiveDirectoryClient("h1")
        await client.connect(address)
        try:
            await client.register_host("venus.cs.stanford.edu", "venus")
            tid = tracer.begin("h1", 0.0)
            result = await client.rebind(
                "venus.cs.stanford.edu", "mars",
                trace={"id": tid, "parent": "h1"},
            )
            assert result["node"] == "mars"
            return tracer, tracer.record(tid)
        finally:
            client.close()
            server.stop()

    tracer, record = asyncio.run(scenario())
    assert record is not None
    names = [e.name for e in record.events]
    assert names == [
        "send",             # h1 (the begin)
        "command_received",  # directory, parent=h1
        "command_route",     # cluster, parent=directory
        "follower_apply",    # shard-0/r1, parent=shard-0/r0
        "leader_commit",     # shard-0/r0, parent=cluster
        "command_answered",  # directory
    ]
    # One stitched tree: host -> directory -> cluster -> leader -> follower.
    tree = tree_of(record)
    assert len(tree["roots"]) == 1
    flat = dict(_flatten(tree["roots"][0]))
    assert flat == {
        "h1": 0,
        "directory": 1,
        "cluster": 2,
        "shard-0/r0": 3,
        "shard-0/r1": 4,
    }


def test_traced_retry_replays_dedup_into_same_trace():
    async def scenario():
        tracer = Tracer()
        cluster, server = _cluster_server(tracer)
        address = await server.start()
        client = LiveDirectoryClient("h1")
        await client.connect(address)
        try:
            await client.register_host("a.net", "n1")
            tid = tracer.begin("h1", 0.0)
            trace = {"id": tid, "parent": "h1"}
            # Simulate a lost response: re-send the same frame bytes.
            request_id = client._next_id()
            first = await client._request_with_id(
                "rebind", {"name": "a.net", "node": "n2"},
                request_id, 1.0, trace=trace,
            )
            second = await client._request_with_id(
                "rebind", {"name": "a.net", "node": "n2"},
                request_id, 1.0, trace=trace,
            )
            assert first == second
            return server, tracer.record(tid)
        finally:
            client.close()
            server.stop()

    server, record = asyncio.run(scenario())
    assert server.dedup_hits == 1
    names = [e.name for e in record.events]
    # The replay shows up in the SAME trace as a dedup_replay span at
    # the directory — never a second commit at the replicas.
    assert names.count("dedup_replay") == 1
    assert names.count("leader_commit") == 1
    assert names.count("follower_apply") == 1


def test_v1_frames_never_carry_trace():
    client = LiveDirectoryClient("legacy", protocol_version=1)
    line = client._frame(
        "routes", {"client": "legacy", "destination": "d", "k": 1},
        "q-1-zz", trace={"id": 7, "parent": "legacy"},
    )
    obj = json.loads(line)
    assert "trace" not in obj
    assert "v" not in obj
