"""Live router crash -> restart re-derives soft state (§2.2).

"Routers contain only soft state": recovery keeps the configuration
(port wiring, mint secret, policy) and throws away every cache.  These
tests kill a live router mid-run and assert the reborn router (a) binds
the same UDP port so no peer needs rewiring, (b) comes back with empty
caches, and (c) carries traffic again without any client-side rewiring.
"""

import asyncio

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay, LiveTransactor, WallClock
from repro.live.host import TransactorConfig
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.tokens.cache import TokenCacheEntry
from repro.transport.rebind import RouteManager

pytestmark = pytest.mark.live


def _line_topology():
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    topo.connect(client, r1)
    topo.connect(r1, server)
    return topo


def test_restart_keeps_the_port_and_flushes_soft_state():
    """The reborn router answers on its old UDP port with empty caches:
    configuration survives the crash, soft state does not."""

    async def scenario():
        overlay = LiveOverlay(_line_topology())
        await overlay.start()
        try:
            router = overlay.routers["r1"]
            old_address = router.address
            old_cache = router.token_cache
            old_pipeline = router.pipeline
            # Plant a sentinel cache entry the restart must NOT carry over.
            old_cache._entries[b"sentinel"] = TokenCacheEntry(
                claims=None, valid=True
            )
            overlay.kill("r1")
            # The transport releases its port on the next loop cycle;
            # a real crash->restart always has downtime between them.
            await asyncio.sleep(0.01)
            new_address = await overlay.restart_router("r1")
            return (
                old_address,
                new_address,
                old_cache is router.token_cache,
                old_pipeline is router.pipeline,
                dict(router.token_cache._entries),
                overlay.addresses["r1"],
            )
        finally:
            overlay.stop()

    (old_addr, new_addr, same_cache, same_pipeline, entries, registered) = (
        asyncio.run(scenario())
    )
    assert new_addr == old_addr, "restart must rebind the original port"
    assert registered == new_addr
    assert not same_cache, "token cache must be rebuilt, not reused"
    assert not same_pipeline, "pipeline must be rebuilt over fresh caches"
    assert entries == {}, "soft state must not survive the crash"


def test_transactions_resume_after_router_restart():
    """End-to-end: a transaction succeeds before the crash and another
    succeeds after the restart, with no client- or server-side rewiring."""

    async def scenario():
        overlay = LiveOverlay(_line_topology())
        await overlay.start()
        try:
            client = overlay.hosts["client"]
            server = overlay.hosts["server"]
            server_tx = LiveTransactor(server)
            server_tx.serve(lambda request: b"pong:" + request)
            client_tx = LiveTransactor(
                client, TransactorConfig(base_timeout_s=0.1)
            )
            routes = overlay.routes(
                "client", "server", k=1,
                dest_socket=client_tx.config.socket,
            )
            manager = RouteManager(WallClock(), routes)
            first = await client_tx.transact(manager, b"before")
            overlay.kill("r1")
            await asyncio.sleep(0.01)  # let the dead socket release its port
            await overlay.restart_router("r1")
            second = await client_tx.transact(manager, b"after")
            return first, second
        finally:
            overlay.stop()

    first, second = asyncio.run(scenario())
    assert first.ok
    assert first.payload == b"pong:before"
    assert second.ok
    assert second.payload == b"pong:after"
