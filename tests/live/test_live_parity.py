"""Decision parity: the live router forwards exactly like the simulator's.

Same topology description, same directory, same frame — the simulator's
:class:`~repro.core.router.SirpentRouter` and the live
:class:`~repro.live.router.LiveRouter` must make identical forwarding
decisions: same delivered payloads, same reversed return routes, same
drop reasons for bad frames.  This is the invariant that lets the sim's
benchmark numbers speak for the live system (and vice versa).
"""

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.directory.service import DirectoryService, RouteQuery
from repro.live import LiveOverlay, LiveRoute
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment

pytestmark = pytest.mark.live


@dataclass
class _World:
    """One topology description instantiated for the sim."""

    sim: Simulator
    topology: Topology
    directory: DirectoryService


def _build(require_tokens: bool = False) -> _World:
    """client — r1 — r2 — server, identical for both substrates."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    config = RouterConfig(require_tokens=require_tokens)
    r1 = SirpentRouter(sim, "r1", config=config)
    r2 = SirpentRouter(sim, "r2", config=config)
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r2, server)
    directory = DirectoryService(
        sim, topo, refresh_interval=None, advisory_interval=None,
    )
    directory.register_host("client", "client")
    directory.register_host("server", "server")
    return _World(sim, topo, directory)


@dataclass
class _Outcome:
    """What one substrate observed for a single sent frame."""

    delivered_payloads: List[bytes] = field(default_factory=list)
    return_ports: List[int] = field(default_factory=list)
    forwarded: List[int] = field(default_factory=list)  # per router, in order
    drop_reason: Optional[str] = None


def _run_sim(world: _World, route, payload: bytes) -> _Outcome:
    outcome = _Outcome()
    server = world.topology.node("server")

    def on_delivered(delivered):
        outcome.delivered_payloads.append(delivered.payload)
        outcome.return_ports = [s.port for s in delivered.return_segments]

    server.bind(route.segments[-1].port, on_delivered)
    world.topology.node("client").send(route, payload, len(payload))
    world.sim.run(until=1.0)
    for name in ("r1", "r2"):
        router = world.topology.node(name)
        outcome.forwarded.append(router.stats.forwarded.count)
        for reason, counter in (
            ("no_route", router.stats.dropped_no_route),
            ("token_reject", router.stats.dropped_token),
            ("route_exhausted", router.stats.route_exhausted),
        ):
            if counter.count:
                outcome.drop_reason = reason
    return outcome


def _run_live(world: _World, route, payload: bytes) -> _Outcome:
    outcome = _Outcome()

    async def scenario():
        overlay = LiveOverlay(world.topology)
        await overlay.start()
        try:
            def on_delivered(delivered):
                outcome.delivered_payloads.append(delivered.payload)
                outcome.return_ports = [
                    s.port for s in delivered.return_segments
                ]

            overlay.hosts["server"].bind(
                route.segments[-1].port, on_delivered
            )
            live_route = LiveRoute(
                destination="server",
                segments=list(route.segments),
                first_hop_port=route.first_hop_port,
            )
            overlay.hosts["client"].send(live_route, payload)
            deadline = asyncio.get_running_loop().time() + 2.0
            while not outcome.delivered_payloads:
                if asyncio.get_running_loop().time() > deadline:
                    break
                total = sum(
                    overlay.routers[n].metrics.total_drops()
                    for n in ("r1", "r2")
                )
                if total:
                    break
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.02)  # let trailing acks settle
            for name in ("r1", "r2"):
                metrics = overlay.routers[name].metrics
                outcome.forwarded.append(metrics.forwarded)
                for reason in ("no_route", "token_reject", "route_exhausted"):
                    if metrics.dropped(reason):
                        outcome.drop_reason = reason
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())
    return outcome


def _assert_parity(sim_outcome: _Outcome, live_outcome: _Outcome) -> None:
    assert live_outcome.delivered_payloads == sim_outcome.delivered_payloads
    assert live_outcome.return_ports == sim_outcome.return_ports
    assert live_outcome.forwarded == sim_outcome.forwarded
    assert live_outcome.drop_reason == sim_outcome.drop_reason


def test_parity_directory_route_delivers():
    """The happy path: both substrates deliver with the same return route."""
    payload = b"parity-payload"
    sim_world, live_world = _build(), _build()
    route = sim_world.directory.query(
        "client", RouteQuery("server", dest_socket=5)
    )[0]
    _assert_parity(
        _run_sim(sim_world, route, payload),
        _run_live(live_world, route, payload),
    )


def test_parity_no_route_drop():
    """A segment naming a nonexistent port drops at r1 in both worlds."""
    payload = b"x"
    sim_world, live_world = _build(), _build()
    good = sim_world.directory.query(
        "client", RouteQuery("server", dest_socket=5)
    )[0]
    bad = type(good)(
        destination="server",
        segments=[HeaderSegment(port=99)] + list(good.segments[1:]),
        first_hop_port=good.first_hop_port,
        first_hop_mac=None,
    )
    sim_outcome = _run_sim(sim_world, bad, payload)
    live_outcome = _run_live(live_world, bad, payload)
    assert sim_outcome.drop_reason == "no_route"
    _assert_parity(sim_outcome, live_outcome)


def test_parity_token_required_reject():
    """require_tokens routers reject tokenless frames identically."""
    payload = b"x"
    sim_world = _build(require_tokens=True)
    live_world = _build(require_tokens=True)
    route = sim_world.directory.query(
        "client", RouteQuery("server", dest_socket=5, with_tokens=False)
    )[0]
    sim_outcome = _run_sim(sim_world, route, payload)
    live_outcome = _run_live(live_world, route, payload)
    assert sim_outcome.drop_reason == "token_reject"
    _assert_parity(sim_outcome, live_outcome)


def test_parity_minted_tokens_admit():
    """Directory-minted tokens admit on require_tokens routers, both worlds."""
    payload = b"with-tokens"
    sim_world = _build(require_tokens=True)
    live_world = _build(require_tokens=True)
    route = sim_world.directory.query(
        "client", RouteQuery("server", dest_socket=5, with_tokens=True)
    )[0]
    sim_outcome = _run_sim(sim_world, route, payload)
    live_outcome = _run_live(live_world, route, payload)
    assert sim_outcome.delivered_payloads == [payload]
    _assert_parity(sim_outcome, live_outcome)
