"""Per-hop retry backoff, jitter and the sliding retry budget.

These exercise :class:`repro.live.link.LiveEndpoint`'s backoff
machinery without sockets (the gap generator and budget are pure), plus
one socketed regression proving the jittered schedule actually governs
real retransmissions.
"""

import asyncio

import pytest

from repro.live.frames import PREAMBLE_BYTES
from repro.live.link import (
    LiveEndpoint,
    ReliabilityConfig,
    RetryBudget,
    corrupt_datagram,
)


def gaps_from(endpoint: LiveEndpoint, n: int = 12):
    """The retry-gap schedule the endpoint would walk for one frame."""
    gap = endpoint.reliability.ack_timeout_s
    out = []
    for _ in range(n):
        gap = endpoint._next_gap(gap)
        out.append(gap)
    return out


def test_retry_gaps_strictly_increase_and_never_repeat():
    """The acceptance assertion: backoff grows monotonically and jitter
    makes no two consecutive growth factors identical."""
    endpoint = LiveEndpoint("jitter-probe")
    gaps = gaps_from(endpoint, n=8)
    capped = [g for g in gaps if g < endpoint.reliability.backoff_max_s]
    assert len(capped) >= 3
    # Strictly increasing until the cap.
    for earlier, later in zip(capped, capped[1:]):
        assert later > earlier
    # Non-identical: the growth factor is jittered, so the ratio
    # between consecutive gaps varies.
    ratios = [round(b / a, 12) for a, b in zip(capped, capped[1:])]
    assert len(set(ratios)) == len(ratios)
    factor = endpoint.reliability.backoff_factor
    for ratio in ratios:
        assert 1.0 + (factor - 1.0) / 2.0 <= ratio <= factor


def test_retry_gaps_capped_at_backoff_max():
    endpoint = LiveEndpoint("cap-probe")
    gaps = gaps_from(endpoint, n=20)
    assert gaps[-1] == endpoint.reliability.backoff_max_s
    assert all(g <= endpoint.reliability.backoff_max_s for g in gaps)


def test_backoff_factor_one_restores_fixed_interval():
    endpoint = LiveEndpoint(
        "legacy", reliability=ReliabilityConfig(backoff_factor=1.0)
    )
    gaps = gaps_from(endpoint, n=5)
    assert set(gaps) == {endpoint.reliability.ack_timeout_s}


def test_two_endpoints_walk_different_jitter_schedules():
    """Desynchronization is the point: endpoints must not share a
    retry schedule even when their frames die at the same instant."""
    assert gaps_from(LiveEndpoint("left")) != gaps_from(LiveEndpoint("right"))


def test_endpoint_jitter_schedule_is_name_stable():
    """Stable per name: a restarted endpoint replays its own schedule
    (determinism for chaos replay), yet differs from every peer."""
    assert gaps_from(LiveEndpoint("same")) == gaps_from(LiveEndpoint("same"))


# -- retry budget ------------------------------------------------------------


def test_retry_budget_floor_then_exhaustion():
    budget = RetryBudget(window_s=1.0, floor=3, ratio=0.0)
    now = 100.0
    for _ in range(3):
        assert budget.allow(now)
        budget.note_retry(now)
    assert not budget.allow(now)
    assert budget.exhaustions == 1


def test_retry_budget_scales_with_send_volume():
    budget = RetryBudget(window_s=1.0, floor=0, ratio=1.0)
    now = 50.0
    assert not budget.allow(now)  # no sends: zero budget
    budget.note_send(now)
    budget.note_send(now)
    assert budget.allow(now)
    budget.note_retry(now)
    budget.note_retry(now)
    assert not budget.allow(now)


def test_retry_budget_window_slides():
    budget = RetryBudget(window_s=1.0, floor=1, ratio=0.0)
    budget.note_retry(0.0)
    assert not budget.allow(0.5)  # still inside the window
    assert budget.allow(1.5)  # the old retry aged out


# -- chaos corruption helper -------------------------------------------------


def test_corrupt_datagram_preserves_preamble_and_is_deterministic():
    datagram = bytes(range(PREAMBLE_BYTES)) + b"payload-body-bytes"
    mangled = corrupt_datagram(datagram, seed=0xDEADBEEF)
    assert mangled != datagram
    assert len(mangled) == len(datagram)
    assert mangled[:PREAMBLE_BYTES] == datagram[:PREAMBLE_BYTES]
    assert corrupt_datagram(datagram, seed=0xDEADBEEF) == mangled
    runt = datagram[:PREAMBLE_BYTES]
    assert corrupt_datagram(runt, seed=1) == runt


# -- socketed regression -----------------------------------------------------


@pytest.mark.live
def test_real_retransmissions_follow_the_jittered_schedule():
    """Send reliably into a black hole and observe the actual retry
    gaps reported by ``on_retry``: strictly increasing, non-identical."""

    async def scenario():
        sender = LiveEndpoint(
            "storm-probe",
            reliability=ReliabilityConfig(
                ack_timeout_s=0.02, max_retries=3,
            ),
        )
        observed = []
        sender.on_retry = lambda addr, seq, gap: observed.append(gap)
        await sender.open()
        # A bound-but-silent peer: frames vanish, acks never come.
        silent = LiveEndpoint("silent")
        silent.on_frame = lambda data, addr: None
        silent.fault_hook = None
        addr = await silent.open()
        silent.close()  # closed socket = black hole
        sender.send(b"x" * 64, addr, reliable=True)
        for _ in range(400):
            if len(observed) >= 3:
                break
            await asyncio.sleep(0.005)
        sender.close()
        return observed

    gaps = asyncio.run(scenario())
    assert len(gaps) >= 3
    for earlier, later in zip(gaps, gaps[1:]):
        assert later > earlier
    assert len(set(gaps)) == len(gaps)
