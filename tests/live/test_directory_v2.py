"""The live directory's v2 protocol: interop, dedup, concurrency.

The acceptance criteria exercised here:

* a **v1** client (no ``v`` field) interoperates with a v2 server —
  same frames, same response shapes as PR 1;
* a replayed v2 write returns the **byte-identical** cached response
  and is never re-executed;
* in-flight commands on one connection complete concurrently — a slow
  route computation does not convoy the pings behind it.
"""

import asyncio
import json

import pytest

from repro.directory.routes import Route
from repro.directory.service import BindingConflictError
from repro.live.directory import (
    DirectoryError,
    LiveDirectoryClient,
    LiveDirectoryServer,
)
from repro.viper.wire import HeaderSegment

pytestmark = pytest.mark.live


def _route(destination="server.region.net"):
    return Route(
        destination=destination,
        segments=[HeaderSegment(port=2), HeaderSegment(port=7)],
        first_hop_port=1,
        first_hop_mac=None,
        mtu=1500,
        bottleneck_bps=10_000_000.0,
        propagation_delay=2e-3,
        hop_count=1,
        cost=1.0,
    )


class _Backend:
    """A DirectoryService-shaped write target with an execution count."""

    def __init__(self):
        self.names = {}
        self.executions = 0

    def register_host(self, node_name, name):
        self.executions += 1
        existing = self.names.get(name)
        if existing is not None:
            if existing == node_name:
                return name
            raise BindingConflictError(name, existing, node_name)
        self.names[name] = node_name
        return name

    def register_service(self, name, nodes):
        self.executions += 1
        self.names[name] = tuple(nodes)

    def rebind_host(self, node_name, name):
        self.executions += 1
        self.names[name] = node_name
        return name


async def _raw_exchange(address, lines):
    """Send raw NDJSON lines on one socket; return the response lines."""
    reader, writer = await asyncio.open_connection(address[0], address[1])
    out = []
    for line in lines:
        writer.write(line if isinstance(line, bytes) else line.encode())
        await writer.drain()
        out.append(await asyncio.wait_for(reader.readline(), 2.0))
    writer.close()
    return out


# -- v1 interop ------------------------------------------------------------

def test_v1_client_interoperates_with_v2_server():
    async def scenario():
        server = LiveDirectoryServer(lambda client, query: [_route()])
        address = await server.start()
        client = LiveDirectoryClient("legacy", protocol_version=1)
        await client.connect(address)
        assert await client.ping()
        routes = await client.routes("server.region.net", k=1)
        client.close()
        server.stop()
        return routes, server.v1_frames, server.v2_frames

    routes, v1_frames, v2_frames = asyncio.run(scenario())
    assert len(routes) == 1
    assert routes[0].destination == "server.region.net"
    assert v1_frames == 2 and v2_frames == 0


def test_v1_response_shape_is_untouched():
    """A v-less frame gets a PR 1 response: ``result``, no ``v``, no
    ``status`` — pinned at the byte level so old parsers keep working."""

    async def scenario():
        server = LiveDirectoryServer(lambda client, query: [])
        address = await server.start()
        (line,) = await _raw_exchange(address, [
            '{"id": "q-1", "method": "ping", "params": {}}\n',
        ])
        server.stop()
        return json.loads(line.decode())

    response = asyncio.run(scenario())
    assert response == {"id": "q-1", "result": {"pong": True}}


def test_v1_writes_are_unknown_methods():
    """Writes arrived with v2; a v1 frame asking for one gets the v1
    error shape, not a crash or a silent execution."""

    async def scenario():
        backend = _Backend()
        server = LiveDirectoryServer(
            lambda client, query: [], backend=backend
        )
        address = await server.start()
        (line,) = await _raw_exchange(address, [
            '{"id": "q-1", "method": "register_host", '
            '"params": {"name": "h.region.net", "node": "n"}}\n',
        ])
        server.stop()
        return json.loads(line.decode()), backend.executions

    response, executions = asyncio.run(scenario())
    assert "error" in response
    assert executions == 0


# -- v2 typed protocol -----------------------------------------------------

def test_v2_client_round_trips_typed_success():
    async def scenario():
        backend = _Backend()
        server = LiveDirectoryServer(
            lambda client, query: [_route()], backend=backend
        )
        address = await server.start()
        client = LiveDirectoryClient("modern")  # v2 by default
        await client.connect(address)
        result = await client.register_host("h.region.net", "node-a")
        routes = await client.routes("server.region.net")
        client.close()
        server.stop()
        return result, routes, backend.names

    result, routes, names = asyncio.run(scenario())
    assert result == {"name": "h.region.net", "node": "node-a"}
    assert names == {"h.region.net": "node-a"}
    assert len(routes) == 1


def test_v2_conflict_is_typed_and_not_retried():
    async def scenario():
        backend = _Backend()
        backend.names["h.region.net"] = "node-a"
        server = LiveDirectoryServer(
            lambda client, query: [], backend=backend
        )
        address = await server.start()
        client = LiveDirectoryClient("modern")
        await client.connect(address)
        try:
            await client.register_host("h.region.net", "node-b")
            raise AssertionError("conflict did not raise")
        except DirectoryError as exc:
            code, retryable = exc.code, exc.retryable
        client.close()
        server.stop()
        return code, retryable, backend.executions

    code, retryable, executions = asyncio.run(scenario())
    assert code == "conflict"
    assert not retryable
    assert executions == 1  # the conflicting attempt itself, once


def test_unsupported_version_gets_a_named_error():
    async def scenario():
        server = LiveDirectoryServer(lambda client, query: [])
        address = await server.start()
        (line,) = await _raw_exchange(address, [
            '{"v": 9, "id": "q-1", "method": "ping", "params": {}}\n',
        ])
        server.stop()
        return json.loads(line.decode())

    response = asyncio.run(scenario())
    assert response["status"] == "failure"
    assert response["error"]["code"] == "version_unsupported"
    assert response["error"]["details"]["supported"] == [2]


def test_malformed_v2_frame_is_bad_request():
    async def scenario():
        server = LiveDirectoryServer(lambda client, query: [])
        address = await server.start()
        (line,) = await _raw_exchange(address, [
            '{"v": 2, "method": "ping"}\n',  # no id
        ])
        server.stop()
        return json.loads(line.decode())

    response = asyncio.run(scenario())
    assert response["status"] == "failure"
    assert response["error"]["code"] == "bad_request"


# -- write dedup -----------------------------------------------------------

def test_replayed_write_returns_byte_identical_bytes():
    frame = (
        '{"v": 2, "id": "c1-17", "method": "register_host", '
        '"params": {"name": "venus.cs.stanford.edu", "node": "venus"}}\n'
    )

    async def scenario():
        backend = _Backend()
        server = LiveDirectoryServer(
            lambda client, query: [], backend=backend
        )
        address = await server.start()
        first, replay = await _raw_exchange(address, [frame, frame])
        server.stop()
        return first, replay, backend.executions, server.dedup_hits

    first, replay, executions, dedup_hits = asyncio.run(scenario())
    assert first == replay  # byte-identical, not merely equivalent
    assert executions == 1  # the command body ran exactly once
    assert dedup_hits == 1


def test_dedup_caches_failures_too():
    """A retried conflicting write must replay the *same* failure, not
    re-litigate it (the first answer is the answer)."""
    frame = (
        '{"v": 2, "id": "c1-9", "method": "register_host", '
        '"params": {"name": "h.region.net", "node": "node-b"}}\n'
    )

    async def scenario():
        backend = _Backend()
        backend.names["h.region.net"] = "node-a"
        server = LiveDirectoryServer(
            lambda client, query: [], backend=backend
        )
        address = await server.start()
        first, replay = await _raw_exchange(address, [frame, frame])
        server.stop()
        return first, replay, backend.executions

    first, replay, executions = asyncio.run(scenario())
    assert first == replay
    assert json.loads(first.decode())["error"]["code"] == "conflict"
    assert executions == 1


def test_dedup_cache_is_bounded():
    async def scenario():
        backend = _Backend()
        server = LiveDirectoryServer(
            lambda client, query: [], backend=backend, dedup_capacity=4
        )
        address = await server.start()
        frames = [
            f'{{"v": 2, "id": "w-{n}", "method": "rebind", '
            f'"params": {{"name": "h{n}.region.net", "node": "n"}}}}\n'
            for n in range(10)
        ]
        await _raw_exchange(address, frames)
        size = len(server._dedup)
        server.stop()
        return size

    assert asyncio.run(scenario()) == 4


# -- the RTT floor, made explicit ------------------------------------------

def test_floored_rtt_is_labelled_not_silent():
    from repro.live.directory import (
        DEFAULT_BASE_RTT_S,
        route_from_json,
        route_to_json,
    )

    zero = Route(
        destination="loopback.region.net",
        segments=[HeaderSegment(port=0)],
        first_hop_port=0,
        first_hop_mac=None,
        bottleneck_bps=0.0,     # model predicts a 0s RTT (loopback)
        propagation_delay=0.0,
        hop_count=0,
    )
    wire = route_to_json(zero)
    assert wire["base_rtt_s"] == DEFAULT_BASE_RTT_S
    assert wire["measured_rtt_s"] == 0.0  # the real prediction survives
    assert wire["rtt_floor_applied"] is True
    assert route_from_json(wire).rtt_floor_applied is True


def test_measured_rtt_passes_through_unfloored():
    from repro.live.directory import route_from_json, route_to_json

    wire = route_to_json(_route())
    assert wire["rtt_floor_applied"] is False
    assert wire["base_rtt_s"] == wire["measured_rtt_s"] > 0.0
    parsed = route_from_json(wire)
    assert parsed.rtt_floor_applied is False
    assert parsed.base_rtt_s == wire["base_rtt_s"]


# -- concurrent in-flight commands -----------------------------------------

def test_slow_command_does_not_convoy_the_connection():
    """One connection, a deliberately stalled route computation, then a
    ping: the ping must complete *while* the slow command is stalled —
    in-flight commands are concurrent, correlated by id."""

    async def scenario():
        release = asyncio.Event()

        async def slow_query(client, query):
            if query.destination == "slow.region.net":
                await release.wait()
            return [_route(query.destination)]

        server = LiveDirectoryServer(slow_query)
        address = await server.start()
        client = LiveDirectoryClient("concurrent")
        await client.connect(address)
        slow = asyncio.get_running_loop().create_task(
            client.routes("slow.region.net", timeout_s=5.0)
        )
        # The ping overtakes the stalled routes call...
        assert await client.ping(timeout_s=2.0)
        assert not slow.done()
        release.set()  # ...which still completes once released.
        routes = await slow
        client.close()
        server.stop()
        return routes

    routes = asyncio.run(scenario())
    assert routes[0].destination == "slow.region.net"
