"""LiveDirectoryClient connection-loss handling: fail fast, reconnect.

Regression tests for the EOF-swallowing bug: a dropped TCP connection
used to leave every in-flight request hanging until its own timeout and
every later request writing into a dead writer.  Now loss fails pending
futures immediately and the next request reconnects behind a backoff.
"""

import asyncio

import pytest

from repro.directory.service import RouteQuery  # noqa: F401 (doc link)
from repro.live.directory import (
    DirectoryError,
    LiveDirectoryClient,
    LiveDirectoryServer,
)

pytestmark = pytest.mark.live


def _server(routes=()):
    return LiveDirectoryServer(lambda client, query: list(routes))


def test_eof_fails_pending_requests_immediately():
    """A request in flight when the server hangs up must fail *now*,
    not after its multi-second timeout."""

    async def scenario():
        received = asyncio.Event()

        async def mute_handler(reader, writer):
            await reader.readline()  # swallow the request, answer nothing
            received.set()
            writer.close()  # hang up with the request still pending

        server = await asyncio.start_server(
            mute_handler, host="127.0.0.1", port=0
        )
        sockname = server.sockets[0].getsockname()
        client = LiveDirectoryClient("impatient")
        await client.connect((sockname[0], sockname[1]))
        loop = asyncio.get_running_loop()
        started = loop.time()
        task = loop.create_task(client.ping(timeout_s=30.0))
        await received.wait()
        with pytest.raises(DirectoryError):
            await task
        elapsed = loop.time() - started
        client.close()
        server.close()
        return elapsed, client.disconnects

    elapsed, disconnects = asyncio.run(scenario())
    assert elapsed < 5.0, f"pending request hung {elapsed:.1f}s after EOF"
    assert disconnects == 1


def test_client_reconnects_after_directory_restart():
    """§6.3 directory outage: stop the listener, restart it on the same
    port, and the same client object resumes service transparently."""

    async def scenario():
        server = _server()
        address = await server.start()
        client = LiveDirectoryClient("phoenix")
        await client.connect(address)
        assert await client.ping()

        server.stop()  # outage: connection drops
        await asyncio.sleep(0.05)
        # During the outage requests fail fast with a named error.
        with pytest.raises(DirectoryError):
            await client.ping(timeout_s=0.5)

        # Wait out the reconnect backoff, then restart on the old port.
        restarted = _server()
        await restarted.start(port=address[1])
        await asyncio.sleep(client.reconnect_max_s)
        pong = await client.ping(timeout_s=1.0)
        reconnects = client.reconnects
        client.close()
        restarted.stop()
        return pong, reconnects

    pong, reconnects = asyncio.run(scenario())
    assert pong
    assert reconnects >= 1


def test_reconnect_attempts_are_backoff_gated():
    """With the directory gone entirely, back-to-back requests must not
    hammer connect(): the second attempt is refused by the backoff."""

    async def scenario():
        server = _server()
        address = await server.start()
        client = LiveDirectoryClient("hammer")
        await client.connect(address)
        server.stop()
        await asyncio.sleep(0.05)
        errors = []
        for _ in range(3):
            try:
                await client.ping(timeout_s=0.2)
            except DirectoryError as exc:
                errors.append(str(exc))
        client.close()
        return errors

    errors = asyncio.run(scenario())
    assert len(errors) == 3
    assert any("backing off" in message for message in errors)


def test_closed_client_refuses_requests():
    async def scenario():
        server = _server()
        address = await server.start()
        client = LiveDirectoryClient("done")
        await client.connect(address)
        client.close()
        with pytest.raises(DirectoryError):
            await client.ping(timeout_s=0.2)
        server.stop()

    asyncio.run(scenario())
