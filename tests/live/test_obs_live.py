"""Tracing and the /metrics endpoint over the live UDP overlay.

Marked ``live``: real loopback sockets plus the opt-in observability
HTTP server.  One traced transaction must be reconstructable end to
end — out over the source route, back over the reversed trailer — and
``GET /metrics`` must serve the same counter names the sim's
RouterStats/EndpointMetrics tables print.
"""

import asyncio
import json

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay
from repro.net.topology import Topology
from repro.obs.trace import Tracer
from repro.sim.engine import Simulator

pytestmark = pytest.mark.live


async def _eventually(predicate, timeout_s: float = 2.0) -> None:
    """Poll ``predicate`` until true or fail the test."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


def _line_topology():
    """client — r1 — r2 — server, point-to-point."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r2, server)
    return topo


async def _http_get(address, target):
    """Minimal HTTP/1.0 GET; returns (status_line, headers, body)."""
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"GET {target} HTTP/1.0\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    return lines[0], lines[1:], body


async def _traced_ping_pong(overlay):
    """One traced request/reply pair; returns the request packet."""
    client, server = overlay.hosts["client"], overlay.hosts["server"]
    replies = []
    client.bind(6, replies.append)
    server.bind(
        5, lambda d: server.send_return(d, b"pong", reply_socket=6)
    )
    route = overlay.routes("client", "server", dest_socket=5)[0]
    packet = client.send(route, b"ping")
    await _eventually(lambda: replies)
    assert replies[0].packet.trace_id == packet.trace_id
    return packet


def test_traced_transaction_end_to_end():
    """A traced frame's id rides the wire out and back; the record shows
    every hop of both directions."""

    async def scenario():
        tracer = Tracer()
        overlay = LiveOverlay(_line_topology(), tracer=tracer)
        await overlay.start()
        try:
            packet = await _traced_ping_pong(overlay)
            assert packet.trace_id != 0
            record = tracer.record(packet.trace_id)
            assert record is not None
            assert record.status == "delivered"
            names = [e.name for e in record.events]
            assert names.count("deliver") == 2
            assert "send_return" in names
            first_visit = list(
                dict.fromkeys(e.node for e in record.events)
            )
            assert first_visit == ["client", "r1", "r2", "server"]
            turn = names.index("send_return")
            back = list(
                dict.fromkeys(e.node for e in record.events[turn:])
            )
            assert back == ["server", "r2", "r1", "client"]
            for router in ("r1", "r2"):
                at_router = [
                    e.name for e in record.events if e.node == router
                ]
                assert at_router.count("strip_reverse_append") == 2
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())


def test_metrics_endpoint_serves_the_shared_counter_names():
    """GET /metrics exposes the exact names the sim benchmarks print,
    labeled per node."""

    async def scenario():
        overlay = LiveOverlay(_line_topology(), obs_port=0)
        await overlay.start()
        try:
            client, server = overlay.hosts["client"], overlay.hosts["server"]
            delivered = []
            server.bind(5, delivered.append)
            route = overlay.routes("client", "server", dest_socket=5)[0]
            client.send(route, b"ping")
            await _eventually(lambda: delivered)
            status, headers, body = await _http_get(
                overlay.obs_address, "/metrics"
            )
            assert status == "HTTP/1.0 200 OK"
            assert any("version=0.0.4" in h for h in headers)
            text = body.decode("utf-8")
            assert 'forwarded{node="r1"} 1' in text
            assert 'forwarded{node="r2"} 1' in text
            assert 'delivered_local{node="server"} 1' in text
            assert 'frames_out{node="client"} 1' in text
            # Scrapes are pull-time: the same overlay re-scraped after
            # more traffic shows the new counts without re-registering.
            client.send(route, b"ping2")
            await _eventually(lambda: len(delivered) == 2)
            _, _, body = await _http_get(overlay.obs_address, "/metrics")
            assert 'forwarded{node="r1"} 2' in body.decode("utf-8")
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())


def test_trace_endpoint_serves_span_json():
    """GET /trace indexes retained traces; ?id= returns events + spans."""

    async def scenario():
        tracer = Tracer()
        overlay = LiveOverlay(_line_topology(), tracer=tracer, obs_port=0)
        await overlay.start()
        try:
            packet = await _traced_ping_pong(overlay)
            status, _, body = await _http_get(overlay.obs_address, "/trace")
            assert status == "HTTP/1.0 200 OK"
            index = json.loads(body)
            assert packet.trace_id in [
                t["trace_id"] for t in index["traces"]
            ]
            status, _, body = await _http_get(
                overlay.obs_address, f"/trace?id={packet.trace_id:#x}"
            )
            assert status == "HTTP/1.0 200 OK"
            doc = json.loads(body)
            assert doc["status"] == "delivered"
            assert {e["node"] for e in doc["events"]} == {
                "client", "r1", "r2", "server",
            }
            assert doc["spans"][0]["node"] == "client"
            assert doc["total"] > 0
            status, _, _ = await _http_get(
                overlay.obs_address, "/trace?id=999"
            )
            assert status.startswith("HTTP/1.0 404")
            status, _, _ = await _http_get(
                overlay.obs_address, "/trace?id=zebra"
            )
            assert status.startswith("HTTP/1.0 400")
            status, _, _ = await _http_get(overlay.obs_address, "/nope")
            assert status.startswith("HTTP/1.0 404")
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())


def test_untraced_overlay_pays_nothing():
    """With no tracer installed, frames carry no trace id and the
    NULL_TRACER answers every hook without recording."""

    async def scenario():
        overlay = LiveOverlay(_line_topology())
        await overlay.start()
        try:
            client, server = overlay.hosts["client"], overlay.hosts["server"]
            delivered = []
            server.bind(5, delivered.append)
            route = overlay.routes("client", "server", dest_socket=5)[0]
            packet = client.send(route, b"ping")
            await _eventually(lambda: delivered)
            assert packet.trace_id == 0
            assert delivered[0].packet.trace_id == 0
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())
