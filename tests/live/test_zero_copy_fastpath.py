"""The zero-copy hop fast path is byte-exact against the slow codec.

``strip_and_append`` finds the strip boundary arithmetically
(:func:`repro.viper.wire.segment_span`) and memoryview-slices the
untouched middle bytes straight into the output frame; the bytes it
forwards are never decoded.  ``strip_and_append_slow`` round-trips the
whole frame through :class:`SirpentPacket` instead.  The acceptance
criterion is that the two are indistinguishable on the wire — for
every decodable frame shape, over multiple hops, including the traced
debug option and the 255 length-escape.
"""

import random

import pytest

from repro.live.frames import (
    decode_live_frame,
    encode_live_frame,
    hop_move_into,
    restamp_seq,
    restamp_seq_into,
    return_tail_of,
    strip_and_append,
    strip_and_append_slow,
)
from repro.live.router import LiveRouter
from repro.viper.errors import ViperDecodeError
from repro.viper.packet import SirpentPacket, TrailerElement
from repro.viper.ring import BufferRing
from repro.viper.wire import (
    HeaderSegment,
    PacketView,
    decode_segment,
    encode_segment,
    segment_span,
)


def frame(segments, payload=b"hello world", trailer=(), trace_id=0, seq=0):
    packet = SirpentPacket(
        segments=list(segments),
        payload_size=len(payload),
        payload=payload,
        trailer=list(trailer),
        trace_id=trace_id,
    )
    return encode_live_frame(packet, payload, seq=seq, trace_id=trace_id)


FRAME_SHAPES = {
    "plain": frame([HeaderSegment(port=1), HeaderSegment(port=0)]),
    "tokened": frame([
        HeaderSegment(port=1, token=b"T" * 32, priority=5),
        HeaderSegment(port=2, token=b"U" * 32),
        HeaderSegment(port=0),
    ]),
    "portinfo": frame([
        HeaderSegment(port=3, portinfo=bytes(range(14))),
        HeaderSegment(port=0),
    ]),
    "flags": frame([
        HeaderSegment(port=9, vnt=True, dib=True, rpf=True, priority=0xF),
        HeaderSegment(port=0),
    ]),
    "escape_token": frame([
        # 300 >= 255 forces the 32-bit extended-length escape (§5).
        HeaderSegment(port=1, token=b"E" * 300),
        HeaderSegment(port=0),
    ], payload=b"x" * 500),
    "empty_payload": frame([HeaderSegment(port=1), HeaderSegment(port=0)],
                           payload=b""),
    "existing_trailer": frame(
        [HeaderSegment(port=1), HeaderSegment(port=0)],
        trailer=[TrailerElement(HeaderSegment(port=4, token=b"rv"))],
    ),
    "traced": frame([HeaderSegment(port=1), HeaderSegment(port=0)],
                    trace_id=0xDEADBEEF_CAFE_0001),
}

RETURN_SEGMENTS = {
    "bare": HeaderSegment(port=7),
    "tokened": HeaderSegment(port=7, token=b"R" * 32, priority=5),
    "ethernet": HeaderSegment(port=7, portinfo=bytes(range(14))),
}


class TestByteExactness:
    @pytest.mark.parametrize("shape", sorted(FRAME_SHAPES))
    @pytest.mark.parametrize("ret", sorted(RETURN_SEGMENTS))
    def test_fast_path_equals_slow_path(self, shape, ret):
        datagram = FRAME_SHAPES[shape]
        return_segment = RETURN_SEGMENTS[ret]
        fast = strip_and_append(datagram, return_segment, seq=42)
        slow = strip_and_append_slow(datagram, return_segment, seq=42)
        assert fast == slow

    def test_exactness_holds_across_multiple_hops(self):
        datagram = FRAME_SHAPES["tokened"]
        fast = slow = datagram
        for hop_port in (7, 8):
            ret = HeaderSegment(port=hop_port, token=b"R" * 16)
            fast = strip_and_append(fast, ret, seq=hop_port)
            slow = strip_and_append_slow(slow, ret, seq=hop_port)
            assert fast == slow
        # And the result still decodes into a coherent packet.
        _, packet, payload = decode_live_frame(fast)
        assert [s.port for s in packet.segments] == [0]
        assert payload == b"hello world"
        assert [e.segment.port for e in packet.trailer] == [7, 8]

    def test_traced_frames_keep_their_trace_id(self):
        forwarded = strip_and_append(
            FRAME_SHAPES["traced"], HeaderSegment(port=7)
        )
        preamble, _, _ = decode_live_frame(forwarded)
        assert preamble.trace_id == 0xDEADBEEF_CAFE_0001

    def test_middle_bytes_are_copied_verbatim(self):
        """The forwarded frame contains the original middle region as-is."""
        datagram = FRAME_SHAPES["tokened"]
        first_len = len(encode_segment(
            HeaderSegment(port=1, token=b"T" * 32, priority=5)
        ))
        middle = datagram[11 + first_len:]
        forwarded = strip_and_append(datagram, HeaderSegment(port=7))
        assert middle in forwarded

    def test_no_leading_segment_refused(self):
        empty_route = frame([])
        with pytest.raises(ViperDecodeError):
            strip_and_append(empty_route, HeaderSegment(port=7))
        with pytest.raises(ViperDecodeError):
            strip_and_append_slow(empty_route, HeaderSegment(port=7))


class TestSegmentSpan:
    """segment_span is the arithmetic twin of decode_segment."""

    @pytest.mark.parametrize("segment", [
        HeaderSegment(port=1),
        HeaderSegment(port=1, token=b"t" * 8),
        HeaderSegment(port=1, portinfo=b"p" * 14),
        HeaderSegment(port=1, token=b"t" * 300),       # escape
        HeaderSegment(port=1, portinfo=b"p" * 260),     # escape
        HeaderSegment(port=1, token=b"t" * 255, portinfo=b"p" * 255),
        HeaderSegment(port=255, vnt=True, dib=True, rpf=True, priority=0xF),
    ])
    def test_agrees_with_decode_on_valid_segments(self, segment):
        buffer = b"\xAA" * 3 + encode_segment(segment) + b"\xBB" * 5
        _, next_offset = decode_segment(buffer, 3)
        assert segment_span(buffer, 3) == next_offset

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:3],                          # truncated fixed fields
        lambda b: b[:-1],                         # truncated portinfo
        lambda b: bytes([200]) + b[1:],           # overclaimed portinfo
        lambda b: bytes([255]) + b[1:],           # escape w/o extension
    ])
    def test_rejects_what_decode_rejects(self, mutate):
        good = encode_segment(HeaderSegment(port=1, portinfo=b"p" * 4))
        bad = mutate(good)
        with pytest.raises(ViperDecodeError):
            decode_segment(bad, 0)
        with pytest.raises(ViperDecodeError):
            segment_span(bad, 0)

    def test_rejects_non_canonical_extended_length(self):
        # A 255 length octet whose 32-bit extension says 4 (< 255) is
        # non-canonical; both parsers must refuse it identically.
        bad = bytes([0, 255, 1, 0]) + (4).to_bytes(4, "big") + b"tttt"
        with pytest.raises(ViperDecodeError):
            decode_segment(bad, 0)
        with pytest.raises(ViperDecodeError):
            segment_span(bad, 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ViperDecodeError):
            segment_span(b"\x00" * 8, -1)


def _slot_view(ring, datagram):
    slot = ring.acquire()
    slot.buffer[: len(datagram)] = datagram
    return PacketView.of_slot(slot, len(datagram))


class TestHopMoveInPlace:
    """hop_move_into is byte-exact against both materialising paths."""

    @pytest.mark.parametrize("shape", sorted(FRAME_SHAPES))
    @pytest.mark.parametrize("ret", sorted(RETURN_SEGMENTS))
    def test_in_place_move_equals_both_slow_paths(self, shape, ret):
        datagram = FRAME_SHAPES[shape]
        return_segment = RETURN_SEGMENTS[ret]
        ring = BufferRing(slots=2)
        view = _slot_view(ring, datagram)
        assert hop_move_into(view, return_tail_of(return_segment))
        moved = view.tobytes()
        view.release()
        assert moved == strip_and_append(datagram, return_segment)
        assert moved == strip_and_append_slow(datagram, return_segment)

    def test_fuzz_multi_hop_in_one_slot(self):
        """Random frames advance hop after hop inside one slot."""
        rng = random.Random(0xF457)

        def blob(choices):
            n = rng.choice(choices)
            return bytes(rng.randrange(256) for _ in range(n))

        for trial in range(120):
            hops = rng.randrange(1, 5)
            segments = [
                HeaderSegment(
                    port=rng.randrange(1, 256),
                    priority=rng.randrange(16),
                    vnt=rng.random() < 0.2,
                    dib=rng.random() < 0.2,
                    rpf=rng.random() < 0.2,
                    token=blob((0, 0, 8, 32, 300)),
                    portinfo=blob((0, 0, 14, 260)),
                )
                for _ in range(hops)
            ] + [HeaderSegment(port=0)]
            datagram = frame(
                segments,
                payload=blob((0, 1, 64, 500)),
                trace_id=rng.getrandbits(64) if rng.random() < 0.3 else 0,
            )
            ring = BufferRing(slots=1)
            view = _slot_view(ring, datagram)
            shadow = datagram
            for hop in range(hops):
                ret = HeaderSegment(
                    port=rng.randrange(1, 256), token=blob((0, 16)),
                    portinfo=blob((0, 14)),
                )
                tail = return_tail_of(ret)
                assert hop_move_into(view, tail)
                shadow = strip_and_append(shadow, ret)
                assert view.tobytes() == shadow
            view.release()

    def test_restamp_into_matches_restamp(self):
        datagram = FRAME_SHAPES["traced"]
        ring = BufferRing(slots=1)
        view = _slot_view(ring, datagram)
        restamp_seq_into(view.buffer, view.start, 0xDEAD)
        assert view.tobytes() == restamp_seq(datagram, 0xDEAD)
        view.release()

    def test_no_tailroom_returns_false_and_leaves_view_untouched(self):
        datagram = FRAME_SHAPES["plain"]
        ring = BufferRing(slots=1, slot_bytes=len(datagram) + 2)
        view = _slot_view(ring, datagram)
        tail = return_tail_of(HeaderSegment(port=7, token=b"R" * 32))
        assert not hop_move_into(view, tail)
        assert view.tobytes() == datagram
        view.release()

    def test_refuses_frames_with_no_leading_segment(self):
        ring = BufferRing(slots=1)
        view = _slot_view(ring, frame([]))
        with pytest.raises(ViperDecodeError):
            hop_move_into(view, return_tail_of(HeaderSegment(port=7)))
        view.release()


def _capture_router(name):
    """A LiveRouter whose endpoint transmits into a list, not a socket."""
    router = LiveRouter(name)
    sent = []

    def send_view(view, addr, reliable=False):
        sent.append((view.tobytes(), addr))
        view.release()
        return 0

    def send(datagram, addr, reliable=False):
        sent.append((bytes(datagram), addr))
        return 0

    router.endpoint.send_view = send_view
    router.endpoint.send = send
    router.connect_port(1, ("127.0.0.1", 9001))
    router.connect_port(2, ("127.0.0.1", 9002))
    return router, sent


class TestBatchedForwardingDifferential:
    """The batched view path forwards the same bytes as the bytes path.

    ``LiveRouter._on_batch`` (ring slots, in-place hop move, memoized
    return tails) against ``LiveRouter._on_frame`` (the materialising
    oracle) on two identically configured routers: every forwarded
    datagram, destination, and drop counter must agree — including
    warm flow-cache passes where the fast path appends a memoized
    ``Decision.return_tail`` it never re-encoded.
    """

    SOURCE = ("127.0.0.1", 9001)

    def _feed(self, datagrams):
        fast, fast_sent = _capture_router("fast")
        oracle, oracle_sent = _capture_router("oracle")
        ring = BufferRing(slots=8)
        views = []
        for datagram in datagrams:
            view = _slot_view(ring, datagram)
            views.append(view)
            fast._on_batch([(view, self.SOURCE)])
            oracle._on_frame(datagram, self.SOURCE)
        return fast, oracle, fast_sent, oracle_sent, ring, views

    def test_fuzz_forwarded_bytes_identical(self):
        rng = random.Random(0xBA7C4)
        datagrams = []
        for trial in range(150):
            route = [HeaderSegment(
                port=2,
                priority=rng.randrange(16),
                dib=rng.random() < 0.2,
                portinfo=(
                    bytes(rng.randrange(256) for _ in range(14))
                    if rng.random() < 0.4 else b""
                ),
            )]
            route += [
                HeaderSegment(port=rng.randrange(1, 256))
                for _ in range(rng.randrange(3))
            ]
            route.append(HeaderSegment(port=0))
            datagrams.append(frame(
                route,
                payload=bytes(
                    rng.randrange(256) for _ in range(rng.randrange(400))
                ),
                trace_id=rng.getrandbits(64) if rng.random() < 0.2 else 0,
            ))
        fast, oracle, fast_sent, oracle_sent, _, _ = self._feed(datagrams)
        assert fast_sent == oracle_sent
        assert len(fast_sent) == len(datagrams)
        assert all(addr == ("127.0.0.1", 9002) for _, addr in fast_sent)
        assert fast.metrics.forwarded == oracle.metrics.forwarded

    def test_warm_flow_reuses_memoized_tail_byte_exactly(self):
        # The same flow three times: pass 1 is the cold install, passes
        # 2-3 append FlowEntry.return_tail without re-encoding.
        datagram = frame(
            [HeaderSegment(port=2, portinfo=bytes(range(14))),
             HeaderSegment(port=0)],
        )
        fast, oracle, fast_sent, oracle_sent, _, _ = self._feed([datagram] * 3)
        assert fast.flow_cache.stats.hits == 2
        assert fast_sent == oracle_sent

    def test_drops_agree_and_release_slots(self):
        undecodable = b"\x00\x01garbage"
        unknown_peer = frame([HeaderSegment(port=2), HeaderSegment(port=0)])
        no_route = frame([HeaderSegment(port=99), HeaderSegment(port=0)])
        fast, fast_sent = _capture_router("fast")
        oracle, oracle_sent = _capture_router("oracle")
        ring = BufferRing(slots=4)
        cases = [
            (undecodable, self.SOURCE),
            (unknown_peer, ("10.9.9.9", 1)),  # unwired peer
            (no_route, self.SOURCE),
        ]
        views = []
        for datagram, source in cases:
            view = _slot_view(ring, datagram)
            views.append(view)
            fast._on_batch([(view, source)])
            oracle._on_frame(datagram, source)
        assert fast_sent == oracle_sent == []
        for reason in ("undecodable", "unknown_peer", "no_route"):
            assert fast.metrics.drops.get(reason) == oracle.metrics.drops.get(
                reason
            ), reason
        # Every slot came back to the ring; no escaped view is alive.
        assert ring.available() == 4
        assert all(not view.alive() for view in views)

    def test_every_batch_slot_is_recycled(self):
        """No view escapes its ring slot alive through the batch path."""
        datagram = frame([HeaderSegment(port=2), HeaderSegment(port=0)])
        fast, _, _, _, ring, views = self._feed([datagram] * 6)
        assert ring.available() == 8
        assert all(not view.alive() for view in views)
