"""The zero-copy hop fast path is byte-exact against the slow codec.

``strip_and_append`` finds the strip boundary arithmetically
(:func:`repro.viper.wire.segment_span`) and memoryview-slices the
untouched middle bytes straight into the output frame; the bytes it
forwards are never decoded.  ``strip_and_append_slow`` round-trips the
whole frame through :class:`SirpentPacket` instead.  The acceptance
criterion is that the two are indistinguishable on the wire — for
every decodable frame shape, over multiple hops, including the traced
debug option and the 255 length-escape.
"""

import pytest

from repro.live.frames import (
    decode_live_frame,
    encode_live_frame,
    strip_and_append,
    strip_and_append_slow,
)
from repro.viper.errors import ViperDecodeError
from repro.viper.packet import SirpentPacket, TrailerElement
from repro.viper.wire import (
    HeaderSegment,
    decode_segment,
    encode_segment,
    segment_span,
)


def frame(segments, payload=b"hello world", trailer=(), trace_id=0, seq=0):
    packet = SirpentPacket(
        segments=list(segments),
        payload_size=len(payload),
        payload=payload,
        trailer=list(trailer),
        trace_id=trace_id,
    )
    return encode_live_frame(packet, payload, seq=seq, trace_id=trace_id)


FRAME_SHAPES = {
    "plain": frame([HeaderSegment(port=1), HeaderSegment(port=0)]),
    "tokened": frame([
        HeaderSegment(port=1, token=b"T" * 32, priority=5),
        HeaderSegment(port=2, token=b"U" * 32),
        HeaderSegment(port=0),
    ]),
    "portinfo": frame([
        HeaderSegment(port=3, portinfo=bytes(range(14))),
        HeaderSegment(port=0),
    ]),
    "flags": frame([
        HeaderSegment(port=9, vnt=True, dib=True, rpf=True, priority=0xF),
        HeaderSegment(port=0),
    ]),
    "escape_token": frame([
        # 300 >= 255 forces the 32-bit extended-length escape (§5).
        HeaderSegment(port=1, token=b"E" * 300),
        HeaderSegment(port=0),
    ], payload=b"x" * 500),
    "empty_payload": frame([HeaderSegment(port=1), HeaderSegment(port=0)],
                           payload=b""),
    "existing_trailer": frame(
        [HeaderSegment(port=1), HeaderSegment(port=0)],
        trailer=[TrailerElement(HeaderSegment(port=4, token=b"rv"))],
    ),
    "traced": frame([HeaderSegment(port=1), HeaderSegment(port=0)],
                    trace_id=0xDEADBEEF_CAFE_0001),
}

RETURN_SEGMENTS = {
    "bare": HeaderSegment(port=7),
    "tokened": HeaderSegment(port=7, token=b"R" * 32, priority=5),
    "ethernet": HeaderSegment(port=7, portinfo=bytes(range(14))),
}


class TestByteExactness:
    @pytest.mark.parametrize("shape", sorted(FRAME_SHAPES))
    @pytest.mark.parametrize("ret", sorted(RETURN_SEGMENTS))
    def test_fast_path_equals_slow_path(self, shape, ret):
        datagram = FRAME_SHAPES[shape]
        return_segment = RETURN_SEGMENTS[ret]
        fast = strip_and_append(datagram, return_segment, seq=42)
        slow = strip_and_append_slow(datagram, return_segment, seq=42)
        assert fast == slow

    def test_exactness_holds_across_multiple_hops(self):
        datagram = FRAME_SHAPES["tokened"]
        fast = slow = datagram
        for hop_port in (7, 8):
            ret = HeaderSegment(port=hop_port, token=b"R" * 16)
            fast = strip_and_append(fast, ret, seq=hop_port)
            slow = strip_and_append_slow(slow, ret, seq=hop_port)
            assert fast == slow
        # And the result still decodes into a coherent packet.
        _, packet, payload = decode_live_frame(fast)
        assert [s.port for s in packet.segments] == [0]
        assert payload == b"hello world"
        assert [e.segment.port for e in packet.trailer] == [7, 8]

    def test_traced_frames_keep_their_trace_id(self):
        forwarded = strip_and_append(
            FRAME_SHAPES["traced"], HeaderSegment(port=7)
        )
        preamble, _, _ = decode_live_frame(forwarded)
        assert preamble.trace_id == 0xDEADBEEF_CAFE_0001

    def test_middle_bytes_are_copied_verbatim(self):
        """The forwarded frame contains the original middle region as-is."""
        datagram = FRAME_SHAPES["tokened"]
        first_len = len(encode_segment(
            HeaderSegment(port=1, token=b"T" * 32, priority=5)
        ))
        middle = datagram[11 + first_len:]
        forwarded = strip_and_append(datagram, HeaderSegment(port=7))
        assert middle in forwarded

    def test_no_leading_segment_refused(self):
        empty_route = frame([])
        with pytest.raises(ViperDecodeError):
            strip_and_append(empty_route, HeaderSegment(port=7))
        with pytest.raises(ViperDecodeError):
            strip_and_append_slow(empty_route, HeaderSegment(port=7))


class TestSegmentSpan:
    """segment_span is the arithmetic twin of decode_segment."""

    @pytest.mark.parametrize("segment", [
        HeaderSegment(port=1),
        HeaderSegment(port=1, token=b"t" * 8),
        HeaderSegment(port=1, portinfo=b"p" * 14),
        HeaderSegment(port=1, token=b"t" * 300),       # escape
        HeaderSegment(port=1, portinfo=b"p" * 260),     # escape
        HeaderSegment(port=1, token=b"t" * 255, portinfo=b"p" * 255),
        HeaderSegment(port=255, vnt=True, dib=True, rpf=True, priority=0xF),
    ])
    def test_agrees_with_decode_on_valid_segments(self, segment):
        buffer = b"\xAA" * 3 + encode_segment(segment) + b"\xBB" * 5
        _, next_offset = decode_segment(buffer, 3)
        assert segment_span(buffer, 3) == next_offset

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:3],                          # truncated fixed fields
        lambda b: b[:-1],                         # truncated portinfo
        lambda b: b[:3] + bytes([b[3] | 0x10]) + b[4:],  # reserved flag
        lambda b: bytes([255]) + b[1:],           # escape w/o extension
    ])
    def test_rejects_what_decode_rejects(self, mutate):
        good = encode_segment(HeaderSegment(port=1, portinfo=b"p" * 4))
        bad = mutate(good)
        with pytest.raises(ViperDecodeError):
            decode_segment(bad, 0)
        with pytest.raises(ViperDecodeError):
            segment_span(bad, 0)

    def test_rejects_non_canonical_extended_length(self):
        # A 255 length octet whose 32-bit extension says 4 (< 255) is
        # non-canonical; both parsers must refuse it identically.
        bad = bytes([0, 255, 1, 0]) + (4).to_bytes(4, "big") + b"tttt"
        with pytest.raises(ViperDecodeError):
            decode_segment(bad, 0)
        with pytest.raises(ViperDecodeError):
            segment_span(bad, 0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ViperDecodeError):
            segment_span(b"\x00" * 8, -1)
