"""The live overlay's byte framing, without any sockets.

The live datagram must carry the *byte-exact* VIPER packet behind its
preamble, survive the router's strip/reverse/append performed on raw
bytes, and reject malformed input with a single exception type — the
same totality contract the wire codec's fuzz suite enforces.
"""

import pytest

from repro.live.frames import (
    FRAME_ACK,
    FRAME_DATA,
    PREAMBLE_BYTES,
    SEQ_NONE,
    decode_live_frame,
    decode_preamble,
    encode_ack,
    encode_live_frame,
    encode_preamble,
    peek_leading_segment,
    strip_and_append,
)
from repro.viper.errors import ViperDecodeError
from repro.viper.packet import SirpentPacket, TrailerElement, build_return_route
from repro.viper.wire import HeaderSegment


def _packet(payload: bytes) -> SirpentPacket:
    segments = [
        HeaderSegment(port=7, priority=3, token=b"T" * 28, portinfo=b"\x01\x02"),
        HeaderSegment(port=2),
        HeaderSegment(port=1, rpf=True),
    ]
    trailer = [TrailerElement(HeaderSegment(port=9, rpf=True))]
    return SirpentPacket(
        segments=segments,
        payload_size=len(payload),
        payload=payload,
        trailer=trailer,
    )


def test_preamble_roundtrip():
    raw = encode_preamble(FRAME_DATA, 0xDEADBEEF, 5, 1234)
    assert len(raw) == PREAMBLE_BYTES
    preamble = decode_preamble(raw)
    assert preamble.kind == FRAME_DATA
    assert preamble.seq == 0xDEADBEEF
    assert preamble.seg_count == 5
    assert preamble.payload_len == 1234


def test_ack_frame_roundtrip():
    preamble = decode_preamble(encode_ack(42))
    assert preamble.kind == FRAME_ACK
    assert preamble.seq == 42


def test_live_frame_roundtrip():
    payload = b"the quick brown fox"
    packet = _packet(payload)
    datagram = encode_live_frame(packet, payload)
    preamble, decoded, decoded_payload = decode_live_frame(datagram)
    assert preamble.seg_count == 3
    assert decoded_payload == payload
    assert decoded.segments == packet.segments
    assert [e.segment for e in decoded.trailer] == [
        e.segment for e in packet.trailer
    ]


def test_peek_matches_full_decode():
    payload = b"x" * 64
    packet = _packet(payload)
    datagram = encode_live_frame(packet, payload)
    preamble, leading = peek_leading_segment(datagram)
    assert leading == packet.segments[0]
    assert preamble.payload_len == len(payload)


def test_strip_and_append_is_the_router_move():
    payload = b"payload-bytes"
    packet = _packet(payload)
    datagram = encode_live_frame(packet, payload)
    return_hop = HeaderSegment(port=4, priority=3, rpf=True)
    forwarded = strip_and_append(datagram, return_hop)
    preamble, decoded, decoded_payload = decode_live_frame(forwarded)
    # One segment consumed, payload untouched, return hop appended last.
    assert preamble.seg_count == 2
    assert decoded.segments == packet.segments[1:]
    assert decoded_payload == payload
    assert decoded.trailer[-1].segment == return_hop
    # The receiver's reversal yields the hops in return-send order.
    assert build_return_route(decoded)[0].port == 4


def test_strip_and_append_restamps_sequence():
    payload = b"p"
    packet = _packet(payload)
    datagram = encode_live_frame(packet, payload, seq=77)
    forwarded = strip_and_append(datagram, HeaderSegment(port=4), seq=SEQ_NONE)
    assert decode_preamble(forwarded).seq == SEQ_NONE


@pytest.mark.parametrize(
    "mutant",
    [
        b"",
        b"V",
        b"XX" + b"\x00" * 9,                     # bad magic
        b"VL\x09\x00" + b"\x00" * 7,             # bad version
        b"VL\x01\x07" + b"\x00" * 7,             # unknown kind
        encode_preamble(FRAME_DATA, 0, 2, 0),    # promises 2 segments, has 0
        encode_preamble(FRAME_DATA, 0, 0, 50),   # payload overruns datagram
        encode_preamble(FRAME_DATA, 0, 0, 0) + b"\x01",  # junk trailer
    ],
)
def test_decoder_is_total(mutant):
    with pytest.raises(ViperDecodeError):
        decode_live_frame(mutant)


def test_exhausted_frame_cannot_be_forwarded():
    payload = b"z"
    packet = SirpentPacket(
        segments=[HeaderSegment(port=1)], payload_size=1, payload=payload,
    )
    datagram = encode_live_frame(packet, payload)
    stripped = strip_and_append(datagram, HeaderSegment(port=2))
    with pytest.raises(ViperDecodeError):
        strip_and_append(stripped, HeaderSegment(port=3))
