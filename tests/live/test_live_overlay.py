"""The live overlay over real loopback sockets.

Marked ``live``: these tests bind UDP/TCP sockets on 127.0.0.1 and run
an asyncio loop.  They are fast (sub-second waits) but environment-
dependent, so CI runs them in a dedicated job.
"""

import asyncio

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import (
    LiveDirectoryClient,
    LiveEndpoint,
    LiveOverlay,
    LiveTransactor,
    WallClock,
    encode_live_frame,
)
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.transport.rebind import RouteManager
from repro.viper.packet import SirpentPacket
from repro.viper.wire import HeaderSegment

pytestmark = pytest.mark.live


async def _eventually(predicate, timeout_s: float = 2.0) -> None:
    """Poll ``predicate`` until true or fail the test."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.005)


def _line_topology():
    """client — r1 — r2 — server, point-to-point."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r2, server)
    return topo


def _diamond_topology():
    """client — r1 — {r2 | r4} — r3 — server: two disjoint mid paths."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    r3 = SirpentRouter(sim, "r3")
    r4 = SirpentRouter(sim, "r4")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r1, r4)
    topo.connect(r2, r3)
    topo.connect(r4, r3)
    topo.connect(r3, server)
    return topo


def test_udp_socketpair_roundtrip():
    """A live frame crosses a real UDP socketpair byte-for-byte."""

    async def scenario():
        sender = LiveEndpoint("a")
        receiver = LiveEndpoint("b")
        received = []
        receiver.on_frame = lambda data, addr: received.append(data)
        await sender.open()
        addr = await receiver.open()
        payload = b"over a real socket"
        packet = SirpentPacket(
            segments=[HeaderSegment(port=3, token=b"t" * 28),
                      HeaderSegment(port=0)],
            payload_size=len(payload),
            payload=payload,
        )
        datagram = encode_live_frame(packet, payload)
        sender.send(datagram, addr)
        await _eventually(lambda: received)
        assert received[0] == datagram
        # Line noise on the same socket is dropped and counted, not raised.
        sender.send(b"\xde\xad\xbe\xef", addr)
        await _eventually(lambda: receiver.metrics.dropped("undecodable") == 1)
        sender.close()
        receiver.close()

    asyncio.run(scenario())


def test_reliable_send_acks_and_dead_peer():
    """Nonzero-seq frames are acked; a dead peer is detected via retries."""

    async def scenario():
        sender = LiveEndpoint("a")
        sender.reliability.ack_timeout_s = 0.02
        receiver = LiveEndpoint("b")
        receiver.on_frame = lambda data, addr: None
        await sender.open()
        addr = await receiver.open()
        payload = b"x"
        packet = SirpentPacket(
            segments=[HeaderSegment(port=0)], payload_size=1, payload=payload,
        )
        sender.send(encode_live_frame(packet, payload), addr, reliable=True)
        await _eventually(lambda: sender.metrics.acks_in == 1)
        dead = []
        sender.on_peer_dead = dead.append
        receiver.close()
        sender.send(encode_live_frame(packet, payload), addr, reliable=True)
        await _eventually(lambda: dead, timeout_s=3.0)
        assert sender.metrics.retries >= 1
        assert sender.metrics.dropped("peer_dead") == 1
        sender.close()

    asyncio.run(scenario())


def test_two_router_e2e_return_route_works():
    """A delivered frame's trailer reverses into a *working* return route."""

    async def scenario():
        overlay = LiveOverlay(_line_topology())
        await overlay.start()
        try:
            client, server = overlay.hosts["client"], overlay.hosts["server"]
            requests, replies = [], []
            client.bind(6, replies.append)

            def on_request(delivered):
                requests.append(delivered)
                server.send_return(delivered, b"pong", reply_socket=6)

            server.bind(5, on_request)
            route = overlay.routes("client", "server", dest_socket=5)[0]
            client.send(route, b"ping")
            await _eventually(lambda: replies)
            assert requests[0].payload == b"ping"
            # The return route the server used is the reversed hop list.
            return_ports = [s.port for s in requests[0].return_segments]
            assert len(return_ports) == 2  # one per router crossed
            assert all(s.rpf for s in requests[0].return_segments)
            assert replies[0].payload == b"pong"
            assert replies[0].socket == 6
            # Both routers forwarded once per direction, dropped nothing.
            for name in ("r1", "r2"):
                assert overlay.routers[name].metrics.forwarded == 2
                assert overlay.routers[name].metrics.total_drops() == 0
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())


def test_directory_over_tcp_matches_in_process():
    """The NDJSON TCP directory serves byte-identical routes."""

    async def scenario():
        overlay = LiveOverlay(_diamond_topology())
        await overlay.start()
        try:
            local = overlay.routes("client", "server", k=2, with_tokens=True)
            dir_client = LiveDirectoryClient("client")
            await dir_client.connect(overlay.directory_address)
            assert await dir_client.ping()
            over_tcp = await dir_client.routes("server", k=2, with_tokens=True)
            assert [r.segments for r in over_tcp] == [
                r.segments for r in local
            ]
            assert [r.first_hop_port for r in over_tcp] == [
                r.first_hop_port for r in local
            ]
            dir_client.close()
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())


def test_transactor_survives_router_kill():
    """Killing the mid-path router rebinds the client to the alternate."""

    async def scenario():
        overlay = LiveOverlay(_diamond_topology())
        await overlay.start()
        try:
            client_tx = LiveTransactor(overlay.hosts["client"])
            server_tx = LiveTransactor(overlay.hosts["server"])
            server_tx.serve(lambda payload: b"echo:" + payload)
            routes = overlay.routes(
                "client", "server", k=2,
                dest_socket=client_tx.config.socket, with_tokens=True,
            )
            manager = RouteManager(WallClock(), routes)
            first = await client_tx.transact(manager, b"before")
            assert first.ok and first.payload == b"echo:before"
            # Kill whichever mid router the current route traverses.
            port_to_mid = {
                e.port_id: e.dst for e in overlay.topology.all_edges()
                if e.src == "r1" and e.dst in ("r2", "r4")
            }
            overlay.kill(port_to_mid[manager.current().segments[0].port])
            second = await client_tx.transact(manager, b"after")
            assert second.ok and second.payload == b"echo:after"
            assert manager.switches.count == 1
            assert second.retries >= 1
        finally:
            overlay.stop()
        await asyncio.sleep(0.05)

    asyncio.run(scenario())
