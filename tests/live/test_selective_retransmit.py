"""Selective retransmission in :class:`LiveTransactor` (§4).

Regression for the blind full-group resend: a timed-out transaction
used to replay every request member.  Now the client sends one PROBE
carrying its response mask; the server answers with either the missing
response members (already processed) or a STATUS naming the request
members it holds — and only the gap crosses the wire again.
"""

import asyncio

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay, LiveTransactor, WallClock
from repro.live.host import (
    _KIND_REQUEST,
    _KIND_RESPONSE,
    _TX_HEADER,
    TransactorConfig,
)
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.transport.rebind import RouteManager

pytestmark = pytest.mark.live


def _line_topology():
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    topo.connect(client, r1)
    topo.connect(r1, server)
    return topo


class _Dropper:
    """Wraps ``host.send`` to drop chosen transactor PDUs once each."""

    def __init__(self, host, doomed):
        #: (kind, member) pairs to drop on first sight.
        self.doomed = set(doomed)
        self.dropped = []
        self._original = host.send
        host.send = self._send
        self._host = host

    def _send(self, route, payload, **kwargs):
        if len(payload) >= _TX_HEADER.size:
            kind, _f, _c, _tx, member, _n, _s, _r = _TX_HEADER.unpack_from(
                payload
            )
            if (kind, member) in self.doomed:
                self.doomed.discard((kind, member))
                self.dropped.append((kind, member))
                return None  # the datagram "vanishes"
        return self._original(route, payload, **kwargs)


async def _transact_with_drops(client_drops=(), server_drops=()):
    overlay = LiveOverlay(_line_topology())
    await overlay.start()
    try:
        client = overlay.hosts["client"]
        server = overlay.hosts["server"]
        served = []
        server_tx = LiveTransactor(server)
        server_tx.serve(lambda request: served.append(request) or b"echo:" + request)
        client_tx = LiveTransactor(
            client,
            TransactorConfig(base_timeout_s=0.08, max_member_payload=32),
        )
        client_dropper = _Dropper(client, client_drops)
        server_dropper = _Dropper(server, server_drops)
        routes = overlay.routes(
            "client", "server", k=1, dest_socket=client_tx.config.socket,
        )
        manager = RouteManager(WallClock(), routes)
        payload = bytes(range(64))  # two 32-byte members
        result = await client_tx.transact(manager, payload)
        return result, served, client_dropper, server_dropper, payload
    finally:
        overlay.stop()


def test_lost_request_member_is_resent_selectively():
    """Drop one of two request members: after the timeout the client
    probes, learns the server holds member 0, and resends only member 1
    — not the whole group."""
    result, served, dropper, _sd, payload = asyncio.run(
        _transact_with_drops(client_drops=[(_KIND_REQUEST, 1)])
    )
    assert result.ok
    assert result.payload == b"echo:" + payload
    assert len(served) == 1, "handler must run exactly once"
    assert dropper.dropped == [(_KIND_REQUEST, 1)]
    assert result.probes >= 1
    assert result.members_resent == 1, (
        f"resent {result.members_resent} members for a single gap"
    )


def test_fully_lost_group_is_resent_in_full_via_status():
    """Both members lost: the STATUS mask is empty and the whole group
    is (correctly) resent — selectivity degrades to the old behavior
    exactly when the old behavior was right."""
    result, served, _cd, _sd, payload = asyncio.run(
        _transact_with_drops(
            client_drops=[(_KIND_REQUEST, 0), (_KIND_REQUEST, 1)]
        )
    )
    assert result.ok
    assert result.payload == b"echo:" + payload
    assert len(served) == 1
    assert result.members_resent == 2


def test_lost_response_member_is_replayed_without_reexecution():
    """Drop one response member: the probe carries the client's
    response mask and the server replays only the missing member from
    its cache — the handler never runs twice (§4 exactly-once)."""
    result, served, _cd, server_dropper, payload = asyncio.run(
        _transact_with_drops(server_drops=[(_KIND_RESPONSE, 0)])
    )
    assert result.ok
    assert result.payload == b"echo:" + payload
    assert len(served) == 1, "a lost response must not re-run the handler"
    assert server_dropper.dropped == [(_KIND_RESPONSE, 0)]
    assert result.probes >= 1
    assert result.members_resent == 0, "no request member needed resending"
