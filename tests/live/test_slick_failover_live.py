"""Slick-Packets failover on the live substrate (ARCHITECTURE §16).

Three layers, matching the zero-copy fastpath suite's discipline:

* **byte differential** — the in-place reroute
  (:func:`~repro.live.frames.slick_reroute_into`) is byte-exact against
  the materialising reference (:func:`~repro.live.frames.
  slick_reroute_slow`) over every slick frame shape, including fuzzed
  ones, and :func:`~repro.live.frames.leading_alt_block` is *total*
  over hostile bytes;
* **driver e2e** — a LiveRouter whose egress peer stopped acking
  forwards slick frames out the in-band alternate (counting
  ``slick_reroutes``), drops exhausted ones cleanly, and the batch and
  frame paths agree byte-for-byte;
* **sim ↔ live parity** — the same diamond topology with the same dead
  link reroutes identically on both substrates: same delivered
  payload, same reversed return route, same reroute/forward counters.
"""

import asyncio
import random
from dataclasses import replace

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.directory.routes import slickify_route
from repro.directory.service import DirectoryService, RouteQuery
from repro.live import LiveOverlay
from repro.live.frames import (
    decode_live_frame,
    encode_live_frame,
    leading_alt_block,
    return_tail_of,
    slick_reroute_into,
    slick_reroute_slow,
)
from repro.live.host import LiveRoute
from repro.live.router import LiveRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.errors import ViperDecodeError
from repro.viper.packet import SirpentPacket
from repro.viper.ring import BufferRing
from repro.viper.wire import HeaderSegment, PacketView


def slick_frame(
    segments, alternates, payload=b"hello world", trace_id=0, seq=0
):
    packet = SirpentPacket(
        segments=list(segments),
        payload_size=len(payload),
        payload=payload,
        alternates=[list(b) for b in alternates],
        trace_id=trace_id,
    )
    return encode_live_frame(packet, payload, seq=seq, trace_id=trace_id)


SLICK_SHAPES = {
    "plain": slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=0)]],
    ),
    "deep_route": slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=9),
         HeaderSegment(port=4), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=8),
          HeaderSegment(port=0)]],
    ),
    "two_blocks": slick_frame(
        # A later hop is protected too: the reroute must drop BOTH
        # blocks, not just the one it splices.
        [HeaderSegment(port=2, slick=True),
         HeaderSegment(port=9, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=0)],
         [HeaderSegment(port=5), HeaderSegment(port=0)]],
    ),
    "tokened_alt": slick_frame(
        [HeaderSegment(port=2, slick=True, token=b"T" * 32),
         HeaderSegment(port=0)],
        [[HeaderSegment(port=3, token=b"A" * 32, priority=5),
          HeaderSegment(port=0)]],
    ),
    "escape_alt": slick_frame(
        # 300 >= 255 forces the 32-bit length escape inside the block.
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3, token=b"E" * 300), HeaderSegment(port=0)]],
        payload=b"x" * 400,
    ),
    "portinfo_alt": slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3, portinfo=bytes(range(14))),
          HeaderSegment(port=0)]],
    ),
    "empty_payload": slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=0)]],
        payload=b"",
    ),
    "traced": slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=0)]],
        trace_id=0xDEADBEEF_CAFE_0002,
    ),
}

RETURN_SEGMENTS = {
    "bare": HeaderSegment(port=7),
    "tokened": HeaderSegment(port=7, token=b"R" * 32, priority=5),
    "ethernet": HeaderSegment(port=7, portinfo=bytes(range(14))),
}


def _slot_view(ring, datagram):
    slot = ring.acquire()
    slot.buffer[: len(datagram)] = datagram
    return PacketView.of_slot(slot, len(datagram))


class TestRerouteByteExactness:
    """slick_reroute_into == slick_reroute_slow on every decodable shape."""

    @pytest.mark.parametrize("shape", sorted(SLICK_SHAPES))
    @pytest.mark.parametrize("ret", sorted(RETURN_SEGMENTS))
    def test_in_place_reroute_equals_slow_path(self, shape, ret):
        datagram = SLICK_SHAPES[shape]
        return_segment = RETURN_SEGMENTS[ret]
        ring = BufferRing(slots=2)
        view = _slot_view(ring, datagram)
        assert slick_reroute_into(view, return_tail_of(return_segment))
        moved = view.tobytes()
        view.release()
        assert moved == slick_reroute_slow(datagram, return_segment)

    def test_rerouted_frame_decodes_into_the_alternate_route(self):
        rerouted = slick_reroute_slow(
            SLICK_SHAPES["deep_route"], HeaderSegment(port=7)
        )
        preamble, packet, payload = decode_live_frame(rerouted)
        # The alternate [3, 8, 0] replaced the whole route; its first
        # hop (3) was taken, the blocks are gone, the payload survived.
        assert [s.port for s in packet.segments] == [8, 0]
        assert packet.alternates == []
        assert not any(s.slick for s in packet.segments)
        assert payload == b"hello world"
        assert [e.segment.port for e in packet.trailer] == [7]

    def test_both_blocks_are_discarded(self):
        rerouted = slick_reroute_slow(
            SLICK_SHAPES["two_blocks"], HeaderSegment(port=7)
        )
        _, packet, _ = decode_live_frame(rerouted)
        assert [s.port for s in packet.segments] == [0]
        assert packet.alternates == []

    def test_traced_reroute_keeps_the_trace_id(self):
        rerouted = slick_reroute_slow(
            SLICK_SHAPES["traced"], HeaderSegment(port=7)
        )
        preamble, _, _ = decode_live_frame(rerouted)
        assert preamble.trace_id == 0xDEADBEEF_CAFE_0002

    def test_non_slick_frame_is_refused_by_both(self):
        packet = SirpentPacket(
            segments=[HeaderSegment(port=2), HeaderSegment(port=0)],
            payload_size=2, payload=b"ab",
        )
        datagram = encode_live_frame(packet, b"ab")
        with pytest.raises(ViperDecodeError):
            slick_reroute_slow(datagram, HeaderSegment(port=7))
        ring = BufferRing(slots=1)
        view = _slot_view(ring, datagram)
        with pytest.raises(ViperDecodeError):
            slick_reroute_into(view, return_tail_of(HeaderSegment(port=7)))
        view.release()

    def test_no_tailroom_returns_false_and_leaves_view_untouched(self):
        datagram = SLICK_SHAPES["plain"]
        ring = BufferRing(slots=1, slot_bytes=len(datagram) + 2)
        view = _slot_view(ring, datagram)
        tail = return_tail_of(HeaderSegment(port=7, token=b"R" * 32))
        assert not slick_reroute_into(view, tail)
        assert view.tobytes() == datagram
        view.release()

    def test_fuzz_random_slick_frames_stay_byte_exact(self):
        rng = random.Random(0x51106)

        def blob(choices):
            n = rng.choice(choices)
            return bytes(rng.randrange(256) for _ in range(n))

        for trial in range(120):
            hops = rng.randrange(1, 4)
            segments = [HeaderSegment(
                port=rng.randrange(1, 256),
                priority=rng.randrange(16),
                token=blob((0, 8, 300)),
                portinfo=blob((0, 14)),
            ) for _ in range(hops)] + [HeaderSegment(port=0)]
            slick_at = sorted(rng.sample(
                range(len(segments)), rng.randrange(1, len(segments) + 1)
            ))
            alternates = []
            for i in slick_at:
                segments[i] = segments[i].copy(slick=True)
                alternates.append([
                    HeaderSegment(
                        port=rng.randrange(1, 256), token=blob((0, 16))
                    )
                    for _ in range(rng.randrange(1, 4))
                ] + [HeaderSegment(port=0)])
            datagram = slick_frame(
                segments, alternates, payload=blob((0, 1, 64, 400)),
                trace_id=rng.getrandbits(64) if rng.random() < 0.3 else 0,
            )
            if not segments[0].slick:
                continue  # the reroute needs a slick LEADING segment
            ret = HeaderSegment(
                port=rng.randrange(1, 256), token=blob((0, 16)),
            )
            ring = BufferRing(slots=1)
            view = _slot_view(ring, datagram)
            assert slick_reroute_into(view, return_tail_of(ret)), trial
            moved = view.tobytes()
            view.release()
            assert moved == slick_reroute_slow(datagram, ret), trial


class TestLeadingAltBlockTotality:
    """The block thunk never raises — malformed bytes become None."""

    def test_decodes_the_leading_block(self):
        datagram = SLICK_SHAPES["deep_route"]
        preamble, packet, _ = decode_live_frame(datagram)
        block = leading_alt_block(
            datagram, preamble.header_len, preamble.seg_count
        )
        assert block == packet.alternates[0]

    def test_non_slick_frame_yields_none_not_a_crash(self):
        packet = SirpentPacket(
            segments=[HeaderSegment(port=2), HeaderSegment(port=0)],
            payload_size=5, payload=b"hello",
        )
        datagram = encode_live_frame(packet, b"hello")
        preamble, _, _ = decode_live_frame(datagram)
        block = leading_alt_block(
            datagram, preamble.header_len, preamble.seg_count
        )
        # Whatever sits after the route (payload bytes) either fails to
        # parse (None) or parses as garbage segments — but never raises.
        assert block is None or isinstance(block, list)

    def test_totality_under_mutation_and_truncation(self):
        rng = random.Random(0xA17B)
        base = SLICK_SHAPES["plain"]
        preamble, _, _ = decode_live_frame(base)
        for _ in range(2000):
            mutated = bytearray(base)
            for _ in range(rng.randint(1, 4)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            if rng.random() < 0.3:
                mutated = mutated[: rng.randrange(len(mutated))]
            block = leading_alt_block(
                bytes(mutated), preamble.header_len, preamble.seg_count
            )
            assert block is None or isinstance(block, list)


def _capture_router(name):
    """A LiveRouter whose endpoint transmits into a list, not a socket."""
    router = LiveRouter(name)
    sent = []

    def send_view(view, addr, reliable=False):
        sent.append((view.tobytes(), addr))
        view.release()
        return 0

    def send(datagram, addr, reliable=False):
        sent.append((bytes(datagram), addr))
        return 0

    router.endpoint.send_view = send_view
    router.endpoint.send = send
    router.connect_port(1, ("127.0.0.1", 9001))
    router.connect_port(2, ("127.0.0.1", 9002))
    router.connect_port(3, ("127.0.0.1", 9003))
    return router, sent


class TestLiveRouterFailover:
    """Driver-level e2e: dead peer -> in-band reroute, both frame paths."""

    SOURCE = ("127.0.0.1", 9001)
    FRAME = slick_frame(
        [HeaderSegment(port=2, slick=True), HeaderSegment(port=0)],
        [[HeaderSegment(port=3), HeaderSegment(port=0)]],
    )

    def test_dead_peer_reroutes_out_the_alternate(self):
        router, sent = _capture_router("r")
        router._on_peer_dead(("127.0.0.1", 9002))
        assert router.dead_ports == {2}
        router._on_frame(self.FRAME, self.SOURCE)
        assert router.metrics.slick_reroutes == 1
        assert router.metrics.forwarded == 1
        assert len(sent) == 1
        forwarded, dest = sent[0]
        assert dest == ("127.0.0.1", 9003)
        _, packet, payload = decode_live_frame(forwarded)
        assert [s.port for s in packet.segments] == [0]
        assert packet.alternates == []
        assert payload == b"hello world"

    def test_batch_and_frame_paths_agree_byte_for_byte(self):
        fast, fast_sent = _capture_router("fast")
        oracle, oracle_sent = _capture_router("oracle")
        for router in (fast, oracle):
            router._on_peer_dead(("127.0.0.1", 9002))
        ring = BufferRing(slots=4)
        for _ in range(3):  # cold install + two warm cache passes
            view = _slot_view(ring, self.FRAME)
            fast._on_batch([(view, self.SOURCE)])
            oracle._on_frame(self.FRAME, self.SOURCE)
        assert fast_sent == oracle_sent
        assert len(fast_sent) == 3
        assert fast.metrics.slick_reroutes == oracle.metrics.slick_reroutes
        assert ring.available() == 4

    def test_exhausted_alternate_drops_cleanly(self):
        router, sent = _capture_router("r")
        router._on_peer_dead(("127.0.0.1", 9002))
        router._on_peer_dead(("127.0.0.1", 9003))  # the alternate too
        router._on_frame(self.FRAME, self.SOURCE)
        assert sent == []
        assert router.metrics.dropped("slick_fallback_exhausted") == 1
        assert router.metrics.slick_reroutes == 0

    def test_healthy_egress_never_reroutes(self):
        router, sent = _capture_router("r")
        router._on_frame(self.FRAME, self.SOURCE)
        assert router.metrics.slick_reroutes == 0
        assert len(sent) == 1
        assert sent[0][1] == ("127.0.0.1", 9002)


# -- sim <-> live parity -----------------------------------------------------


def _diamond_world():
    """client — r1 — {r2 | r4} — r3 — server: two disjoint mid paths."""
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    r2 = SirpentRouter(sim, "r2")
    r3 = SirpentRouter(sim, "r3")
    r4 = SirpentRouter(sim, "r4")
    topo.connect(client, r1)
    topo.connect(r1, r2)
    topo.connect(r1, r4)
    topo.connect(r2, r3)
    topo.connect(r4, r3)
    topo.connect(r3, server)
    directory = DirectoryService(
        sim, topo, refresh_interval=None, advisory_interval=None,
    )
    directory.register_host("client", "client")
    directory.register_host("server", "server")
    return sim, topo, directory


def _slick_route_via_r2(topo, directory):
    """Primary via r2 (slick-protected at r1), alternate via r4."""
    routes = directory.query("client", RouteQuery("server", dest_socket=5, k=2))
    assert len(routes) >= 2, "diamond must yield two disjoint routes"
    r1 = topo.node("r1")
    to_r2 = next(
        pid for pid, att in r1.ports.items() if att.peer_name == "r2"
    )
    primary = next(r for r in routes if r.segments[0].port == to_r2)
    alternate = next(r for r in routes if r.segments[0].port != to_r2)
    segments, blocks = slickify_route(
        primary.segments, {0: alternate.segments}
    )
    return replace(primary, segments=segments, alternates=blocks), to_r2


def _run_sim_failover(payload):
    sim, topo, directory = _diamond_world()
    route, _ = _slick_route_via_r2(topo, directory)
    outcome = {"delivered": [], "return_ports": []}

    def on_delivered(delivered):
        outcome["delivered"].append(delivered.payload)
        outcome["return_ports"] = [
            s.port for s in delivered.return_segments
        ]

    topo.node("server").bind(route.segments[-1].port, on_delivered)
    topo.fail_link("r1--r2")
    topo.node("client").send(route, payload, len(payload))
    sim.run(until=1.0)
    outcome["slick_reroutes"] = topo.node("r1").stats.slick_reroutes.count
    outcome["mid_forwarded"] = {
        name: topo.node(name).stats.forwarded.count for name in ("r2", "r4")
    }
    return outcome


def _run_live_failover(payload):
    sim, topo, directory = _diamond_world()
    route, to_r2 = _slick_route_via_r2(topo, directory)
    outcome = {"delivered": [], "return_ports": []}

    async def scenario():
        overlay = LiveOverlay(topo)
        await overlay.start()
        try:
            def on_delivered(delivered):
                outcome["delivered"].append(delivered.payload)
                outcome["return_ports"] = [
                    s.port for s in delivered.return_segments
                ]

            overlay.hosts["server"].bind(
                route.segments[-1].port, on_delivered
            )
            r1 = overlay.routers["r1"]
            r1._on_peer_dead(r1.ports[to_r2])  # ack-timeout link health
            overlay.hosts["client"].send(
                LiveRoute(
                    destination="server",
                    segments=list(route.segments),
                    first_hop_port=route.first_hop_port,
                    alternates=[list(b) for b in route.alternates],
                ),
                payload,
            )
            deadline = asyncio.get_running_loop().time() + 2.0
            while not outcome["delivered"]:
                if asyncio.get_running_loop().time() > deadline:
                    break
                await asyncio.sleep(0.005)
            await asyncio.sleep(0.02)  # let trailing acks settle
            outcome["slick_reroutes"] = r1.metrics.slick_reroutes
            outcome["mid_forwarded"] = {
                name: overlay.routers[name].metrics.forwarded
                for name in ("r2", "r4")
            }
        finally:
            overlay.stop()
        await asyncio.sleep(0.01)

    asyncio.run(scenario())
    return outcome


@pytest.mark.live
def test_parity_slick_failover_reroutes_identically():
    """Dead r1->r2 hop: both substrates deliver via r4 with one reroute."""
    payload = b"slick-parity"
    sim_outcome = _run_sim_failover(payload)
    live_outcome = _run_live_failover(payload)
    assert sim_outcome["delivered"] == [payload]
    assert sim_outcome["slick_reroutes"] == 1
    assert sim_outcome["mid_forwarded"] == {"r2": 0, "r4": 1}
    assert live_outcome["delivered"] == sim_outcome["delivered"]
    assert live_outcome["return_ports"] == sim_outcome["return_ports"]
    assert live_outcome["slick_reroutes"] == sim_outcome["slick_reroutes"]
    assert live_outcome["mid_forwarded"] == sim_outcome["mid_forwarded"]
