"""``GET /slo`` and ``GET /dump`` on the live obs endpoint, plus the
``repro.obs.top`` console against a real server.

Marked ``live``: binds real loopback sockets.  The overlay's SLO engine
must report burn rates for the default objectives over genuinely
scraped metrics (a v2 directory command feeds ``directory_command_ms``),
``/dump`` must serve the flight recorder's NDJSON window, and
``python -m repro.obs.top --once`` must render the report.
"""

import asyncio
import json

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.live import LiveOverlay
from repro.live.directory import LiveDirectoryClient
from repro.net.topology import Topology
from repro.obs import top
from repro.obs.recorder import load_dump
from repro.sim.engine import Simulator

pytestmark = pytest.mark.live


def _line_topology():
    sim = Simulator()
    topo = Topology(sim)
    client = SirpentHost(sim, "client")
    server = SirpentHost(sim, "server")
    r1 = SirpentRouter(sim, "r1")
    topo.connect(client, r1)
    topo.connect(r1, server)
    return topo


async def _http_get(address, target):
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"GET {target} HTTP/1.0\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    return lines[0], body


def test_slo_endpoint_reports_burn_rates(capsys):
    async def scenario():
        overlay = LiveOverlay(_line_topology(), obs_port=0)
        await overlay.start()
        directory_client = LiveDirectoryClient("client")
        try:
            # Feed directory_command_ms with real served commands.
            await directory_client.connect(overlay.directory_address)
            for _ in range(3):
                assert await directory_client.ping()
            status, body = await _http_get(overlay.obs_address, "/slo")
            assert status.endswith("200 OK")
            payload = json.loads(body)
            # top --once against the live endpoint, same event loop off.
            url = (
                f"http://{overlay.obs_address[0]}:"
                f"{overlay.obs_address[1]}/slo"
            )
            return payload, url
        finally:
            directory_client.close()
            overlay.stop()

    payload, _url = asyncio.run(scenario())
    assert payload["type"] == "slo_report"
    statuses = {s["slo"]: s for s in payload["statuses"]}
    assert len(statuses) >= 3
    assert {
        "delivery_latency", "directory_command_latency",
        "rebind_recovery", "retry_budget",
    } <= set(statuses)
    # The served pings actually landed in the latency objective.
    directory = statuses["directory_command_latency"]
    assert directory["total"] >= 3
    for status in statuses.values():
        assert status["status"] in ("ok", "burn", "page")
        for window in status["windows"].values():
            assert "burn" in window
    # The pure renderer draws every objective.
    frame = top.render_report(payload)
    for name in statuses:
        assert name in frame


def test_top_once_renders_live_endpoint(capsys):
    async def scenario():
        overlay = LiveOverlay(_line_topology(), obs_port=0)
        await overlay.start()
        host, port = overlay.obs_address
        # top.main is synchronous urllib; run it off-loop.
        code = await asyncio.get_running_loop().run_in_executor(
            None, top.main, ["--url", f"http://{host}:{port}/slo", "--once"],
        )
        overlay.stop()
        return code

    assert asyncio.run(scenario()) == 0
    out = capsys.readouterr().out
    assert "delivery_latency" in out
    assert "status" in out


def test_top_unreachable_endpoint_fails_cleanly(capsys):
    code = top.main(["--url", "http://127.0.0.1:1/slo", "--once"])
    assert code == 1
    assert "cannot reach" in capsys.readouterr().err


def test_dump_endpoint_serves_flight_recorder_window():
    async def scenario():
        overlay = LiveOverlay(_line_topology(), obs_port=0)
        await overlay.start()
        try:
            overlay.recorder.record("frame_delivered", node="server")
            overlay.recorder.record(
                "frame_dropped", node="r1", reason="route_exhausted"
            )
            status, body = await _http_get(overlay.obs_address, "/dump")
            bad, _ = await _http_get(overlay.obs_address, "/dump?last_s=zz")
            return status, body, bad
        finally:
            overlay.stop()

    status, body, bad = asyncio.run(scenario())
    assert status.endswith("200 OK")
    header, events = load_dump(body.decode("utf-8"))
    assert header["reason"] == "http_trigger"
    assert [e["event"] for e in events] == [
        "frame_delivered", "frame_dropped",
    ]
    assert bad.endswith("400 Bad Request")
