"""Make the tools/ directory importable for the perfgate tests."""

import os
import sys

TOOLS_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
if TOOLS_ROOT not in sys.path:
    sys.path.insert(0, TOOLS_ROOT)
