"""The perf-regression gate: direction-aware compare, CLI, baselines.

perfgate guards the PR 8 fastpath numbers: it must fail on a real
regression (in either direction convention), stay quiet inside the
tolerance band, treat a *vanished* metric as a failure, and never gate
on informational metrics.  The committed baselines for the two guarded
benchmarks must exist and be internally consistent.
"""

from __future__ import annotations

import json
import os

import pytest

import perfgate


def _spec(metrics, higher=(), lower=()):
    return {
        "metrics": dict(metrics),
        "higher_is_better": list(higher),
        "lower_is_better": list(lower),
    }


class TestCompare:
    def test_within_tolerance_passes_both_directions(self):
        baseline = _spec(
            {"tx_s": 1000.0, "us_op": 10.0}, higher=["tx_s"], lower=["us_op"]
        )
        fresh = _spec({"tx_s": 850.0, "us_op": 11.5})
        rows = perfgate.compare("b", baseline, fresh, tolerance=0.20)
        assert [r.verdict for r in rows] == ["ok", "ok"]
        assert not any(r.failed for r in rows)

    def test_higher_is_better_regression_fails(self):
        baseline = _spec({"tx_s": 1000.0}, higher=["tx_s"])
        fresh = _spec({"tx_s": 799.0})
        (row,) = perfgate.compare("b", baseline, fresh, tolerance=0.20)
        assert row.failed and row.verdict == "regressed"
        assert row.change == pytest.approx(-0.201)

    def test_lower_is_better_regression_fails(self):
        baseline = _spec({"alloc": 300.0}, lower=["alloc"])
        fresh = _spec({"alloc": 400.0})
        (row,) = perfgate.compare("b", baseline, fresh, tolerance=0.20)
        assert row.failed and row.direction == "lower"

    def test_improvements_never_fail(self):
        baseline = _spec(
            {"tx_s": 1000.0, "us_op": 10.0}, higher=["tx_s"], lower=["us_op"]
        )
        fresh = _spec({"tx_s": 5000.0, "us_op": 1.0})
        rows = perfgate.compare("b", baseline, fresh)
        assert not any(r.failed for r in rows)

    def test_missing_directional_metric_is_a_failure(self):
        # Deleting a gated metric must not silently delete the gate.
        baseline = _spec({"tx_s": 1000.0}, higher=["tx_s"])
        (row,) = perfgate.compare("b", baseline, _spec({}))
        assert row.failed and row.verdict == "missing"

    def test_informational_metric_never_gates(self):
        baseline = _spec({"note_count": 5.0})  # in neither direction list
        (row,) = perfgate.compare("b", baseline, _spec({"note_count": 50.0}))
        assert not row.failed
        (row,) = perfgate.compare("b", baseline, _spec({}))
        assert not row.failed and row.direction == "info"

    def test_absent_fresh_file_marks_all_missing(self):
        baseline = _spec(
            {"a": 1.0, "b": 2.0}, higher=["a"], lower=["b"]
        )
        rows = perfgate.compare("b", baseline, None)
        assert [r.verdict for r in rows] == ["missing", "missing"]


class TestGateAndCli:
    @pytest.fixture()
    def dirs(self, tmp_path):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        baselines.mkdir()
        results.mkdir()
        spec = _spec({"tx_s": 1000.0}, higher=["tx_s"])
        (baselines / "BENCH_demo.json").write_text(json.dumps(spec))
        return str(baselines), str(results)

    def _publish(self, results_dir, value):
        spec = _spec({"tx_s": value}, higher=["tx_s"])
        path = os.path.join(results_dir, "BENCH_demo.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(spec, handle)

    def test_gate_passes_then_fails(self, dirs):
        baselines, results = dirs
        self._publish(results, 990.0)
        rows, failed = perfgate.gate(baselines, results)
        assert not failed and len(rows) == 1
        self._publish(results, 500.0)
        _, failed = perfgate.gate(baselines, results)
        assert failed

    def test_cli_exit_codes(self, dirs, capsys):
        baselines, results = dirs
        self._publish(results, 990.0)
        argv = ["--baselines", baselines, "--results", results]
        assert perfgate.main(argv) == 0
        self._publish(results, 500.0)
        assert perfgate.main(argv) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "regression" in out

    def test_cli_tolerance_flag_widens_the_band(self, dirs):
        baselines, results = dirs
        self._publish(results, 500.0)
        argv = ["--baselines", baselines, "--results", results]
        assert perfgate.main(argv + ["--tolerance", "0.6"]) == 0

    def test_only_filter_rejects_unknown_names(self, dirs):
        baselines, results = dirs
        with pytest.raises(SystemExit):
            perfgate.gate(baselines, results, only=["nope"])

    def test_update_bootstraps_and_refreshes_baselines(self, dirs):
        baselines, results = dirs
        self._publish(results, 2000.0)
        # Bootstrap a brand-new name straight from fresh results.
        spec = _spec({"fill": 16.0}, higher=["fill"])
        with open(
            os.path.join(results, "BENCH_new.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(spec, handle)
        written = perfgate.update_baselines(baselines, results, ["new"])
        assert len(written) == 1
        with open(written[0], encoding="utf-8") as handle:
            assert json.load(handle)["metrics"] == {"fill": 16.0}
        # Refresh-all rewrites every existing baseline from results.
        perfgate.update_baselines(baselines, results, [])
        rows, failed = perfgate.gate(baselines, results)
        assert not failed and len(rows) == 2


class TestCommittedBaselines:
    """The floors this PR committed must stay present and coherent."""

    def test_guarded_benchmarks_have_baselines(self):
        for name in ("f02_dataplane", "l01_live_loopback"):
            path = os.path.join(
                perfgate.BASELINE_DIR, f"BENCH_{name}.json"
            )
            assert os.path.exists(path), f"missing committed floor: {name}"
            with open(path, encoding="utf-8") as handle:
                spec = json.load(handle)
            directional = set(spec["higher_is_better"]) | set(
                spec["lower_is_better"]
            )
            assert directional, f"{name}: no gated metrics"
            assert directional <= set(spec["metrics"]), (
                f"{name}: direction lists name unknown metrics"
            )
            assert all(
                isinstance(v, (int, float)) and v > 0
                for v in spec["metrics"].values()
            )

    def test_committed_baselines_gate_cleanly_against_themselves(self):
        rows, failed = perfgate.gate(
            perfgate.BASELINE_DIR, perfgate.BASELINE_DIR
        )
        assert rows and not failed
