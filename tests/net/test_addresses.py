"""Unit tests for MAC addresses and the allocator."""

import pytest

from repro.net.addresses import BROADCAST, MacAddress, MacAllocator


def test_roundtrip_string():
    mac = MacAddress.parse("02:51:9e:00:01:0a")
    assert str(mac) == "02:51:9e:00:01:0a"
    assert MacAddress.parse(str(mac)) == mac


def test_roundtrip_bytes():
    mac = MacAddress(0x0251_9E00_010A)
    assert MacAddress.from_bytes(mac.to_bytes()) == mac
    assert len(mac.to_bytes()) == 6


def test_equality_and_hash():
    a = MacAddress(42)
    b = MacAddress(42)
    c = MacAddress(43)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != 42  # no cross-type equality


def test_immutable():
    mac = MacAddress(1)
    with pytest.raises(AttributeError):
        mac.value = 2


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        MacAddress(1 << 48)
    with pytest.raises(ValueError):
        MacAddress(-1)


def test_malformed_parse_rejected():
    with pytest.raises(ValueError):
        MacAddress.parse("aa:bb:cc")
    with pytest.raises(ValueError):
        MacAddress.from_bytes(b"\x00" * 5)


def test_broadcast_flag():
    assert MacAddress(BROADCAST).is_broadcast
    assert not MacAddress(7).is_broadcast


def test_allocator_unique_across_segments():
    allocator = MacAllocator()
    macs = {allocator.allocate(segment_id=s) for s in range(4) for _ in range(8)}
    # re-run allocations: 4 segments x 8 = 32 unique
    assert len(macs) == 32


def test_allocator_segment_encoded_in_address():
    allocator = MacAllocator()
    mac = allocator.allocate(segment_id=0x1234)
    assert (mac.value >> 8) & 0xFFFF == 0x1234


def test_allocator_exhaustion():
    allocator = MacAllocator()
    for _ in range(256):
        allocator.allocate(segment_id=1)
    with pytest.raises(ValueError):
        allocator.allocate(segment_id=1)
