"""Unit tests for topology wiring and the graph view."""

import pytest

from repro.net.node import Node
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def make_topology():
    sim = Simulator()
    topo = Topology(sim)
    a = topo.add_node(Node(sim, "a"))
    b = topo.add_node(Node(sim, "b"))
    c = topo.add_node(Node(sim, "c"))
    return sim, topo, a, b, c


def test_connect_assigns_ports_and_edges():
    _, topo, a, b, _ = make_topology()
    link, port_a, port_b = topo.connect(a, b, rate_bps=1e6)
    assert port_a in a.ports and port_b in b.ports
    edges = topo.edges()
    directed = {(e.src, e.dst) for e in edges}
    assert ("a", "b") in directed and ("b", "a") in directed


def test_connect_auto_registers_nodes():
    sim = Simulator()
    topo = Topology(sim)
    a, b = Node(sim, "x"), Node(sim, "y")
    topo.connect(a, b)
    assert "x" in topo.nodes and "y" in topo.nodes


def test_duplicate_node_name_rejected():
    sim, topo, a, _, _ = make_topology()
    with pytest.raises(ValueError):
        topo.add_node(Node(sim, "a"))


def test_duplicate_link_name_rejected():
    _, topo, a, b, c = make_topology()
    topo.connect(a, b, name="l1")
    with pytest.raises(ValueError):
        topo.connect(a, c, name="l1")


def test_channels_wired_to_receivers():
    _, topo, a, b, _ = make_topology()
    link, port_a, port_b = topo.connect(a, b)
    assert link.a_to_b.dst_attachment is b.ports[port_b]
    assert link.b_to_a.dst_attachment is a.ports[port_a]


def test_failed_link_excluded_from_edges():
    _, topo, a, b, c = make_topology()
    topo.connect(a, b, name="ab")
    topo.connect(b, c, name="bc")
    assert len(topo.edges()) == 4
    topo.fail_link("ab")
    live = {(e.src, e.dst) for e in topo.edges()}
    assert ("a", "b") not in live and ("b", "c") in live
    assert len(topo.all_edges()) == 4
    topo.restore_link("ab")
    assert len(topo.edges()) == 4


def test_fail_unknown_link_raises():
    _, topo, _, _, _ = make_topology()
    with pytest.raises(KeyError):
        topo.fail_link("nope")


def test_ethernet_attachment_creates_full_mesh_edges():
    sim, topo, a, b, c = make_topology()
    segment = topo.add_ethernet("eth0")
    topo.attach_to_ethernet(a, segment)
    topo.attach_to_ethernet(b, segment)
    topo.attach_to_ethernet(c, segment)
    ether_edges = [e for e in topo.edges() if e.medium == "ethernet"]
    directed = {(e.src, e.dst) for e in ether_edges}
    assert directed == {
        ("a", "b"), ("b", "a"), ("a", "c"), ("c", "a"), ("b", "c"), ("c", "b"),
    }
    for edge in ether_edges:
        assert edge.dst_mac is not None
        assert edge.src_mac is not None
        assert edge.dst_mac != edge.src_mac


def test_ethernet_edge_macs_are_consistent():
    sim, topo, a, b, _ = make_topology()
    segment = topo.add_ethernet("eth0")
    att_a = topo.attach_to_ethernet(a, segment)
    att_b = topo.attach_to_ethernet(b, segment)
    edge_ab = next(
        e for e in topo.edges() if e.src == "a" and e.dst == "b"
    )
    assert edge_ab.dst_mac == att_b.mac
    assert edge_ab.src_mac == att_a.mac
    assert edge_ab.port_id == att_a.port_id


def test_neighbors():
    _, topo, a, b, c = make_topology()
    topo.connect(a, b)
    topo.connect(a, c)
    assert sorted(topo.neighbors("a")) == ["b", "c"]
    assert topo.neighbors("b") == ["a"]


def test_node_lookup():
    _, topo, a, _, _ = make_topology()
    assert topo.node("a") is a
    with pytest.raises(KeyError):
        topo.node("missing")


def test_edge_attributes_propagate():
    _, topo, a, b, _ = make_topology()
    topo.connect(
        a, b, rate_bps=2e6, propagation_delay=3e-3, mtu=900,
        cost=7.0, secure=False,
    )
    edge = next(iter(topo.edges_from("a")))
    assert edge.rate_bps == 2e6
    assert edge.propagation_delay == 3e-3
    assert edge.mtu == 900
    assert edge.cost == 7.0
    assert edge.secure is False
