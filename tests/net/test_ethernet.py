"""Unit tests for the shared Ethernet segment."""

import pytest

from repro.net.addresses import BROADCAST, MacAddress
from repro.net.ethernet import EthernetSegment
from repro.net.node import EthernetAttachment, Node
from repro.sim.engine import Simulator


class RecordingNode(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.headers = []
        self.packets = []
        self.aborts = []

    def on_header(self, packet, inport, tx):
        self.headers.append((self.sim.now, packet, tx))

    def on_packet(self, packet, inport, tx):
        self.packets.append((self.sim.now, packet, tx))

    def on_abort(self, packet, inport):
        self.aborts.append((self.sim.now, packet))


def make_segment(sim, n_stations=3, rate=10e6, prop=5e-6):
    segment = EthernetSegment(sim, rate_bps=rate, propagation_delay=prop, name="eth")
    stations = []
    for index in range(n_stations):
        node = RecordingNode(sim, f"n{index}")
        attachment = EthernetAttachment(node, 1, segment, MacAddress(100 + index))
        node.attach(1, attachment)
        segment.register(attachment)
        stations.append((node, attachment))
    return segment, stations


def test_unicast_reaches_only_destination():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (n0, a0), (n1, a1), (n2, a2) = stations
    segment.transmit(a0, a1.mac, "pkt", 500, 50)
    sim.run()
    assert len(n1.packets) == 1
    assert n2.packets == [] and n0.packets == []


def test_timing_matches_channel_model():
    sim = Simulator()
    segment, stations = make_segment(sim, rate=10e6, prop=5e-6)
    (_, a0), (n1, a1), _ = stations
    segment.transmit(a0, a1.mac, "pkt", 1250, 125)
    sim.run()
    assert n1.headers[0][0] == pytest.approx(125 * 8 / 10e6 + 5e-6)
    assert n1.packets[0][0] == pytest.approx(1250 * 8 / 10e6 + 5e-6)


def test_transmission_carries_frame_macs():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (_, a0), (n1, a1), _ = stations
    segment.transmit(a0, a1.mac, "pkt", 100, 10)
    sim.run()
    _, _, tx = n1.packets[0]
    assert tx.src_mac == a0.mac
    assert tx.dst_mac == a1.mac


def test_broadcast_reaches_everyone_but_sender():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (n0, a0), (n1, _), (n2, _) = stations
    segment.transmit(a0, MacAddress(BROADCAST), "pkt", 100, 10)
    sim.run()
    assert len(n1.packets) == 1 and len(n2.packets) == 1
    assert n0.packets == []


def test_medium_serializes_contending_frames():
    sim = Simulator()
    segment, stations = make_segment(sim, rate=10e6, prop=0.0)
    (_, a0), (n1, a1), (_, a2) = stations
    segment.transmit(a0, a1.mac, "first", 1250, 1250)   # 1ms
    segment.transmit(a2, a1.mac, "second", 1250, 1250)  # queued behind
    sim.run()
    times = [t for t, _, _ in n1.packets]
    assert times[0] == pytest.approx(1e-3)
    assert times[1] == pytest.approx(2e-3)


def test_busy_reflects_backlog():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (_, a0), (_, a1), (_, a2) = stations
    assert not segment.busy
    segment.transmit(a0, a1.mac, "a", 1000, 100)
    segment.transmit(a2, a1.mac, "b", 1000, 100)
    assert segment.busy


def test_abort_by_sender_only():
    sim = Simulator()
    segment, stations = make_segment(sim, prop=0.0)
    (n0, a0), (n1, a1), (_, a2) = stations
    segment.transmit(a0, a1.mac, "victim", 1250, 10)
    segment.abort_current(a2)  # not the sender: no-op
    assert segment.current_priority(a0) == 0
    segment.abort_current(a0)
    sim.run()
    assert n1.packets == []
    assert len(n1.aborts) == 1


def test_unknown_destination_vanishes():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (_, a0), _, _ = stations
    segment.transmit(a0, MacAddress(0xDEAD), "pkt", 100, 10)
    sim.run()  # no receiver: nothing delivered, nothing crashes
    assert segment.frames_sent.count == 1


def test_failed_segment_drops_everything():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (_, a0), (n1, a1), _ = stations
    segment.fail()
    segment.transmit(a0, a1.mac, "pkt", 100, 10)
    sim.run()
    assert n1.packets == []


def test_duplicate_mac_rejected():
    sim = Simulator()
    segment, stations = make_segment(sim)
    node = RecordingNode(sim, "dup")
    attachment = EthernetAttachment(node, 1, segment, stations[0][1].mac)
    with pytest.raises(ValueError):
        segment.register(attachment)


def test_station_node_name_lookup():
    sim = Simulator()
    segment, stations = make_segment(sim)
    (_, a0), _, _ = stations
    assert segment.station_node_name(a0.mac) == "n0"
    assert segment.station_node_name(MacAddress(1)) is None
