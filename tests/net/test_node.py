"""Unit tests for the Node base class and port management."""

import pytest

from repro.net.node import LOCAL_PORT, MAX_PORT, Node
from repro.net.link import Channel
from repro.net.node import P2PAttachment
from repro.sim.engine import Simulator


def make_attachment(sim, node, port_id):
    channel = Channel(sim, 1e6, 0.0)
    return P2PAttachment(node, port_id, channel, peer_name="peer")


def test_port_zero_is_reserved():
    sim = Simulator()
    node = Node(sim, "n")
    with pytest.raises(ValueError):
        node.attach(LOCAL_PORT, make_attachment(sim, node, LOCAL_PORT))


def test_port_range_enforced():
    sim = Simulator()
    node = Node(sim, "n")
    with pytest.raises(ValueError):
        node.attach(MAX_PORT + 1, make_attachment(sim, node, MAX_PORT + 1))
    node.attach(MAX_PORT, make_attachment(sim, node, MAX_PORT))  # ok


def test_duplicate_port_rejected():
    sim = Simulator()
    node = Node(sim, "n")
    node.attach(3, make_attachment(sim, node, 3))
    with pytest.raises(ValueError):
        node.attach(3, make_attachment(sim, node, 3))


def test_free_port_id_skips_used():
    sim = Simulator()
    node = Node(sim, "n")
    assert node.free_port_id() == 1
    node.attach(1, make_attachment(sim, node, 1))
    node.attach(2, make_attachment(sim, node, 2))
    node.attach(4, make_attachment(sim, node, 4))
    assert node.free_port_id() == 3


def test_port_lookup():
    sim = Simulator()
    node = Node(sim, "n")
    attachment = make_attachment(sim, node, 7)
    node.attach(7, attachment)
    assert node.port(7) is attachment
    with pytest.raises(KeyError):
        node.port(8)


def test_port_exhaustion():
    sim = Simulator()
    node = Node(sim, "n")
    for port_id in range(1, MAX_PORT + 1):
        node.attach(port_id, make_attachment(sim, node, port_id))
    with pytest.raises(RuntimeError):
        node.free_port_id()


def test_default_hooks_are_noops():
    sim = Simulator()
    node = Node(sim, "n")
    attachment = make_attachment(sim, node, 1)
    node.attach(1, attachment)
    node.on_header("pkt", attachment, None)
    node.on_packet("pkt", attachment, None)
    node.on_abort("pkt", attachment)
