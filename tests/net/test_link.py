"""Unit tests for the bit-timed channel model.

These pin down the arithmetic the whole reproduction rests on: header
events precede completion events by exactly the remaining serialization
time, and preemption aborts cleanly.
"""

import pytest

from repro.net.link import Channel, ChannelBusyError, Link
from repro.net.node import Node, P2PAttachment
from repro.sim.engine import Simulator


class RecordingNode(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.headers = []
        self.packets = []
        self.aborts = []

    def on_header(self, packet, inport, tx):
        self.headers.append((self.sim.now, packet))

    def on_packet(self, packet, inport, tx):
        self.packets.append((self.sim.now, packet))

    def on_abort(self, packet, inport):
        self.aborts.append((self.sim.now, packet))


def make_channel(sim, rate=1e6, prop=1e-3):
    receiver = RecordingNode(sim, "rx")
    channel = Channel(sim, rate_bps=rate, propagation_delay=prop, name="ch")
    attachment = P2PAttachment(receiver, 1, channel, peer_name="tx")
    receiver.attach(1, attachment)
    channel.dst_attachment = attachment
    return channel, receiver


def test_header_and_completion_times():
    sim = Simulator()
    channel, receiver = make_channel(sim, rate=1e6, prop=1e-3)
    # 1000 bytes at 1 Mbps = 8 ms serialization; header = 100 bytes = 0.8 ms
    channel.transmit("pkt", size=1000, header_bytes=100)
    sim.run()
    header_time = receiver.headers[0][0]
    complete_time = receiver.packets[0][0]
    assert header_time == pytest.approx(0.8e-3 + 1e-3)
    assert complete_time == pytest.approx(8e-3 + 1e-3)


def test_channel_frees_at_end_of_serialization():
    sim = Simulator()
    channel, _ = make_channel(sim, rate=1e6, prop=1e-3)
    freed = []
    channel.transmit("pkt", 1000, 100, on_done=lambda: freed.append(sim.now))
    sim.run()
    # Free at serialization end, NOT at arrival (propagation excluded).
    assert freed == [pytest.approx(8e-3)]


def test_busy_channel_rejects_transmit():
    sim = Simulator()
    channel, _ = make_channel(sim)
    channel.transmit("a", 100, 10)
    with pytest.raises(ChannelBusyError):
        channel.transmit("b", 100, 10)


def test_header_bytes_clamped_to_size():
    sim = Simulator()
    channel, receiver = make_channel(sim, rate=1e6, prop=0.0)
    channel.transmit("tiny", size=50, header_bytes=500)
    sim.run()
    assert receiver.headers[0][0] == pytest.approx(50 * 8 / 1e6)


def test_abort_cancels_delivery_and_notifies():
    sim = Simulator()
    channel, receiver = make_channel(sim, rate=1e6, prop=1e-3)
    aborted_at_sender = []
    channel.transmit(
        "pkt", 1000, 100, on_abort=lambda p: aborted_at_sender.append(p)
    )
    sim.after(2e-3, channel.abort)
    sim.run()
    assert receiver.packets == []
    assert aborted_at_sender == ["pkt"]
    # Receiver learns of the truncated tail one propagation later.
    assert receiver.aborts[0][0] == pytest.approx(3e-3)
    assert channel.packets_aborted.count == 1
    assert not channel.busy


def test_header_may_arrive_before_abort():
    sim = Simulator()
    channel, receiver = make_channel(sim, rate=1e6, prop=0.0)
    channel.transmit("pkt", 1000, 100)  # header at 0.8ms
    sim.after(2e-3, channel.abort)
    sim.run()
    assert len(receiver.headers) == 1
    assert receiver.packets == []


def test_failed_channel_swallows_traffic():
    sim = Simulator()
    channel, receiver = make_channel(sim)
    channel.fail()
    channel.transmit("pkt", 100, 10)
    sim.run()
    assert receiver.packets == []
    assert receiver.headers == []


def test_restore_after_failure():
    sim = Simulator()
    channel, receiver = make_channel(sim)
    channel.fail()
    channel.restore()
    channel.transmit("pkt", 100, 10)
    sim.run()
    assert len(receiver.packets) == 1


def test_utilization_accounting():
    sim = Simulator()
    channel, _ = make_channel(sim, rate=1e6, prop=0.0)
    channel.transmit("pkt", 1000, 10)  # busy 8ms
    sim.run(until=16e-3)
    assert channel.utilization.utilization(16e-3) == pytest.approx(0.5)


def test_stats_counters():
    sim = Simulator()
    channel, _ = make_channel(sim)

    def send_next():
        if channel.packets_sent.count < 3 and not channel.busy:
            channel.transmit("p", 100, 10, on_done=send_next)

    send_next()
    sim.run()
    assert channel.packets_sent.count == 3
    assert channel.bytes_sent.count == 300


def test_link_fail_hits_both_directions():
    sim = Simulator()
    link = Link(sim, 1e6, 1e-3, name="l")
    assert link.up
    link.fail()
    assert not link.up and not link.a_to_b.up and not link.b_to_a.up
    link.restore()
    assert link.up


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, rate_bps=0, propagation_delay=0)
    with pytest.raises(ValueError):
        Channel(sim, rate_bps=1e6, propagation_delay=-1)
    channel, _ = make_channel(sim)
    with pytest.raises(ValueError):
        channel.transmit("p", 0, 0)
