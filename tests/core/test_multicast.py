"""Unit tests for the three multicast mechanisms (§2)."""

import pytest

from repro.core.multicast import (
    BROADCAST_PORT,
    GROUP_PORT_BASE,
    GroupPortMap,
    MulticastAgent,
    TREE_PORT,
    TreeBranch,
    decode_tree_info,
    encode_tree_info,
)
from repro.viper.errors import DecodeError
from repro.viper.wire import HeaderSegment


class TestGroupPorts:
    def test_group_membership(self):
        groups = GroupPortMap()
        groups.add_group(240, [1, 2, 3])
        assert groups.is_group(240)
        assert groups.members(240) == [1, 2, 3]
        assert groups.members(241) == []

    def test_group_port_range_enforced(self):
        groups = GroupPortMap()
        with pytest.raises(ValueError):
            groups.add_group(10, [1])  # ordinary port range
        with pytest.raises(ValueError):
            groups.add_group(BROADCAST_PORT, [1])
        with pytest.raises(ValueError):
            groups.add_group(GROUP_PORT_BASE, [])

    def test_members_returns_copy(self):
        groups = GroupPortMap()
        groups.add_group(240, [1, 2])
        groups.members(240).append(99)
        assert groups.members(240) == [1, 2]


class TestTreeEncoding:
    def test_roundtrip(self):
        branches = [
            TreeBranch([HeaderSegment(port=1), HeaderSegment(port=0)]),
            TreeBranch([HeaderSegment(port=2, token=b"tk"),
                        HeaderSegment(port=0)]),
            TreeBranch([HeaderSegment(port=3)]),
        ]
        decoded = decode_tree_info(encode_tree_info(branches))
        assert len(decoded) == 3
        for original, parsed in zip(branches, decoded):
            assert parsed.segments == original.segments

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_tree_info([])
        with pytest.raises(DecodeError):
            decode_tree_info(b"")

    def test_trailing_garbage_rejected(self):
        data = encode_tree_info([TreeBranch([HeaderSegment(port=1)])])
        with pytest.raises(DecodeError):
            decode_tree_info(data + b"\x00")

    def test_truncated_rejected(self):
        data = encode_tree_info([TreeBranch([HeaderSegment(port=1)])])
        with pytest.raises(DecodeError):
            decode_tree_info(data[:-1])

    def test_branch_needs_segments(self):
        with pytest.raises(ValueError):
            TreeBranch([])


class TestMulticastAgent:
    def test_explosion_to_all_members(self):
        sent = []
        agent = MulticastAgent(lambda route, payload, size: sent.append(route))
        agent.add_member("route-a")
        agent.add_member("route-b")
        agent.add_member("route-c")
        agent.on_payload(b"data", 100)
        assert sent == ["route-a", "route-b", "route-c"]
        assert agent.exploded == 1

    def test_no_members_is_fine(self):
        agent = MulticastAgent(lambda *a: None)
        agent.on_payload(b"data", 10)
        assert agent.exploded == 1


class TestRouterIntegration:
    """Mechanisms 1 and 2 exercised through a real router."""

    def _star(self):
        from repro.core.host import SirpentHost
        from repro.core.router import SirpentRouter
        from repro.net.topology import Topology
        from repro.sim.engine import Simulator

        sim = Simulator()
        topo = Topology(sim)
        router = topo.add_node(SirpentRouter(sim, "hub"))
        src = topo.add_node(SirpentHost(sim, "src"))
        leaves = [topo.add_node(SirpentHost(sim, f"leaf{i}")) for i in range(3)]
        _, src_port, _ = topo.connect(src, router)
        leaf_ports = []
        for leaf in leaves:
            _, router_port, _ = topo.connect(router, leaf)
            leaf_ports.append(router_port)
        inboxes = []
        for leaf in leaves:
            box = []
            leaf.bind(0, box.append)
            inboxes.append(box)
        return sim, router, src, src_port, leaf_ports, inboxes

    def _route(self, segments, first_hop_port):
        class R:
            pass

        route = R()
        route.segments = segments
        route.first_hop_port = first_hop_port
        route.first_hop_mac = None
        return route

    def test_group_port_duplicates_packet(self):
        sim, router, src, src_port, leaf_ports, inboxes = self._star()
        router.groups.add_group(240, leaf_ports)
        route = self._route(
            [HeaderSegment(port=240), HeaderSegment(port=0)], src_port
        )
        src.send(route, b"mc", 200)
        sim.run(until=1.0)
        assert all(len(box) == 1 for box in inboxes)
        assert router.stats.multicast_copies.count == 3

    def test_broadcast_port_floods_other_ports(self):
        sim, router, src, src_port, leaf_ports, inboxes = self._star()
        route = self._route(
            [HeaderSegment(port=BROADCAST_PORT), HeaderSegment(port=0)],
            src_port,
        )
        src.send(route, b"bc", 200)
        sim.run(until=1.0)
        # Delivered to the three leaves, not looped back to the source.
        assert all(len(box) == 1 for box in inboxes)

    def test_tree_segment_clones_per_branch(self):
        sim, router, src, src_port, leaf_ports, inboxes = self._star()
        branches = [
            TreeBranch([HeaderSegment(port=p), HeaderSegment(port=0)])
            for p in leaf_ports[:2]
        ]
        route = self._route(
            [HeaderSegment(port=TREE_PORT,
                           portinfo=encode_tree_info(branches))],
            src_port,
        )
        src.send(route, b"tree", 200)
        sim.run(until=1.0)
        assert len(inboxes[0]) == 1 and len(inboxes[1]) == 1
        assert len(inboxes[2]) == 0

    def test_malformed_tree_counted(self):
        sim, router, src, src_port, _lp, inboxes = self._star()
        route = self._route(
            [HeaderSegment(port=TREE_PORT, portinfo=b"\xff\x00")], src_port
        )
        src.send(route, b"bad", 50)
        sim.run(until=1.0)
        assert router.stats.dropped_bad_portinfo.count == 1
        assert all(len(box) == 0 for box in inboxes)
