"""Unit tests for the Sirpent router pipeline (§2, §2.1)."""

import pytest

from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.packet import SirpentPacket
from repro.viper.wire import HeaderSegment


def build_line(n_routers=1, config=None, rate=10e6, prop=10e-6, mtu=1500):
    """src -- r1 .. rn -- dst; returns (sim, topo, src, routers, dst, ports).

    ``ports[i]`` is the port on router i leading toward the destination.
    """
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    routers = [
        topo.add_node(SirpentRouter(sim, f"r{i + 1}", config=config))
        for i in range(n_routers)
    ]
    _, src_port, _ = topo.connect(src, routers[0], rate_bps=rate,
                                  propagation_delay=prop, mtu=mtu)
    forward_ports = []
    for a, b in zip(routers, routers[1:]):
        _, pa, _ = topo.connect(a, b, rate_bps=rate,
                                propagation_delay=prop, mtu=mtu)
        forward_ports.append(pa)
    _, last_port, _ = topo.connect(routers[-1], dst, rate_bps=rate,
                                   propagation_delay=prop, mtu=mtu)
    forward_ports.append(last_port)
    return sim, topo, src, routers, dst, src_port, forward_ports


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def route_through(forward_ports, src_port, dest_socket=0, token=b""):
    segments = [
        HeaderSegment(port=p, token=token) for p in forward_ports
    ] + [HeaderSegment(port=dest_socket)]
    return StaticRoute(segments, src_port)


def test_forwarding_strips_segment_and_builds_trailer():
    sim, _topo, src, routers, dst, src_port, fwd = build_line(2)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port), b"data", 400)
    sim.run(until=1.0)
    assert len(got) == 1
    delivered = got[0]
    # Both routers consumed their segment; only the final one remains.
    assert len(delivered.packet.segments) == 1
    assert len(delivered.packet.trailer) == 2
    # The return route walks back through both routers in reverse; on a
    # line each router's inbound port toward the source is port 1.
    assert len(delivered.return_segments) == 2
    assert all(s.rpf for s in delivered.return_segments)


def test_cut_through_beats_store_and_forward():
    """§6.1: per-hop serialization disappears with cut-through."""
    results = {}
    for label, config in (
        ("cut", RouterConfig(cut_through=True, decision_delay=0.5e-6)),
        ("sf", RouterConfig(cut_through=False,
                            store_forward_process_delay=50e-6)),
    ):
        sim, _t, src, _r, dst, src_port, fwd = build_line(3, config=config)
        got = []
        dst.bind(0, got.append)
        src.send(route_through(fwd, src_port), b"x", 1000)
        sim.run(until=1.0)
        results[label] = got[0].one_way_delay
    serialization = 1000 * 8 / 10e6  # 0.8 ms
    # Store-and-forward pays ~3 extra serializations (+ processing).
    assert results["sf"] - results["cut"] > 2.5 * serialization
    assert results["cut"] < 1.5 * serialization


def test_router_counts_cut_through():
    sim, _t, src, routers, dst, src_port, fwd = build_line(1)
    dst.bind(0, lambda d: None)
    src.send(route_through(fwd, src_port), b"x", 500)
    sim.run(until=1.0)
    assert routers[0].stats.cut_through_forwards.count == 1
    assert routers[0].stats.store_forwards.count == 0


def test_store_forward_mode_counted():
    config = RouterConfig(cut_through=False)
    sim, _t, src, routers, dst, src_port, fwd = build_line(1, config=config)
    dst.bind(0, lambda d: None)
    src.send(route_through(fwd, src_port), b"x", 500)
    sim.run(until=1.0)
    assert routers[0].stats.store_forwards.count == 1
    assert routers[0].stats.cut_through_forwards.count == 0


def test_rate_mismatch_falls_back_to_store_forward():
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    router = topo.add_node(SirpentRouter(sim, "r1"))
    _, src_port, _ = topo.connect(src, router, rate_bps=10e6)
    _, out_port, _ = topo.connect(router, dst, rate_bps=100e6)  # faster out
    got = []
    dst.bind(0, got.append)
    src.send(route_through([out_port], src_port), b"x", 500)
    sim.run(until=1.0)
    assert got
    assert router.stats.store_forwards.count == 1


def test_no_route_dropped():
    sim, _t, src, routers, dst, src_port, fwd = build_line(1)
    bad = StaticRoute([HeaderSegment(port=99), HeaderSegment(port=0)], src_port)
    src.send(bad, b"x", 100)
    sim.run(until=1.0)
    assert routers[0].stats.dropped_no_route.count == 1


def test_route_exhausted_counted():
    sim, _t, src, routers, _d, src_port, fwd = build_line(1)
    empty = StaticRoute([], src_port)
    packet = SirpentPacket(segments=[], payload_size=50)
    src.output_ports[src_port].submit(packet, 50, 50)
    sim.run(until=1.0)
    assert routers[0].stats.route_exhausted.count == 1


def test_local_delivery_port_zero():
    sim, _t, src, routers, _d, src_port, fwd = build_line(1)
    received = []
    routers[0].local_handler = lambda packet, inport: received.append(packet)
    local = StaticRoute([HeaderSegment(port=0)], src_port)
    src.send(local, b"to-router", 100)
    sim.run(until=1.0)
    assert len(received) == 1
    assert routers[0].stats.delivered_local.count == 1


def test_token_rejection_with_require_tokens():
    config = RouterConfig(require_tokens=True)
    sim, _t, src, routers, dst, src_port, fwd = build_line(1, config=config)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port), b"x", 100)  # no token
    sim.run(until=1.0)
    assert got == []
    assert routers[0].stats.dropped_token.count == 1


def test_valid_token_admitted_and_charged():
    config = RouterConfig(require_tokens=True)
    sim, _t, src, routers, dst, src_port, fwd = build_line(1, config=config)
    token = routers[0].mint.mint(port=fwd[0], account=55)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port, token=token), b"x", 100)
    sim.run(until=1.0)
    assert len(got) == 1
    assert routers[0].token_cache.ledger.usage(55).packets == 1


def test_reverse_authorized_token_survives_into_trailer():
    sim, _t, src, routers, dst, src_port, fwd = build_line(1)
    token = routers[0].mint.mint(port=fwd[0], account=1, reverse_ok=True)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port, token=token), b"x", 100)
    sim.run(until=1.0)
    assert got[0].return_segments[0].token == token


def test_non_reverse_token_stripped_from_trailer():
    sim, _t, src, routers, dst, src_port, fwd = build_line(1)
    token = routers[0].mint.mint(port=fwd[0], account=1, reverse_ok=False)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port, token=token), b"x", 100)
    sim.run(until=1.0)
    assert got[0].return_segments[0].token == b""


def test_mtu_truncation_on_forward():
    """Oversized packets are truncated, never fragmented (§2)."""
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    router = topo.add_node(SirpentRouter(sim, "r1"))
    _, src_port, _ = topo.connect(src, router, mtu=3000)
    _, out_port, _ = topo.connect(router, dst, mtu=576)
    got = []
    dst.bind(0, got.append)
    src.send(route_through([out_port], src_port), b"big", 2000)
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0].truncated
    assert got[0].packet.wire_size() <= 576
    assert router.stats.truncated.count == 1


def test_decision_delay_charged():
    config = RouterConfig(decision_delay=100e-6)
    sim, _t, src, routers, dst, src_port, fwd = build_line(1, config=config)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port), b"x", 1000)
    sim.run(until=1.0)
    delay = routers[0].stats.router_delay
    assert delay.count == 1
    assert delay.mean == pytest.approx(100e-6, rel=0.01)


def test_hop_log_records_path():
    sim, _t, src, _r, dst, src_port, fwd = build_line(3)
    got = []
    dst.bind(0, got.append)
    src.send(route_through(fwd, src_port), b"x", 100)
    sim.run(until=1.0)
    assert got[0].packet.hop_log == ["r1", "r2", "r3"]
    assert got[0].packet.hops_taken == 3
