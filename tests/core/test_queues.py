"""Unit tests for output-port scheduling, preemption and blocked policies."""


from repro.core.blocked import BlockedPolicy
from repro.core.queues import OutputPort, SubmitResult
from repro.net.link import Channel
from repro.net.node import Node, P2PAttachment
from repro.sim.engine import Simulator
from repro.viper.flags import PRIORITY_PREEMPT_HIGH


class Sink(Node):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.packets = []
        self.aborts = []

    def on_packet(self, packet, inport, tx):
        self.packets.append((self.sim.now, packet))

    def on_abort(self, packet, inport):
        self.aborts.append((self.sim.now, packet))


def make_port(sim, rate=1e6, prop=0.0, **kwargs):
    """An OutputPort feeding a recording sink over a p2p channel."""
    sink = Sink(sim)
    channel = Channel(sim, rate_bps=rate, propagation_delay=prop, name="ch")
    rx = P2PAttachment(sink, 1, Channel(sim, rate, prop), peer_name="src")
    sink.attach(1, rx)
    channel.dst_attachment = rx

    sender = Node(sim, "sender")
    tx_attachment = P2PAttachment(sender, 1, channel, peer_name="sink")
    sender.attach(1, tx_attachment)
    port = OutputPort(sim, tx_attachment, **kwargs)
    return port, sink


def test_idle_port_sends_immediately():
    sim = Simulator()
    port, sink = make_port(sim)
    result = port.submit("p1", 125, 10)
    assert result is SubmitResult.SENT
    sim.run()
    assert [p for _, p in sink.packets] == ["p1"]


def test_busy_port_queues_fifo_within_priority():
    sim = Simulator()
    port, sink = make_port(sim)
    port.submit("a", 125, 10)
    assert port.submit("b", 125, 10) is SubmitResult.QUEUED
    assert port.submit("c", 125, 10) is SubmitResult.QUEUED
    sim.run()
    assert [p for _, p in sink.packets] == ["a", "b", "c"]


def test_higher_priority_jumps_queue():
    sim = Simulator()
    port, sink = make_port(sim)
    port.submit("first", 125, 10, priority=0)
    port.submit("normal", 125, 10, priority=0)
    port.submit("urgent", 125, 10, priority=5)
    sim.run()
    assert [p for _, p in sink.packets] == ["first", "urgent", "normal"]


def test_low_band_priority_sorts_below_normal():
    sim = Simulator()
    port, sink = make_port(sim)
    port.submit("first", 125, 10)
    port.submit("background", 125, 10, priority=0xF)
    port.submit("normal", 125, 10, priority=0)
    sim.run()
    assert [p for _, p in sink.packets] == ["first", "normal", "background"]


def test_preemptive_priority_aborts_current():
    """§2.1/§5: priorities 6-7 abort a lower-priority packet
    mid-transmission."""
    sim = Simulator()
    port, sink = make_port(sim)
    port.submit("victim", 1250, 10, priority=0)  # 10 ms at 1 Mbps
    fired = []
    sim.at(1e-3, lambda: fired.append(
        port.submit("preemptor", 125, 10, priority=PRIORITY_PREEMPT_HIGH)
    ))
    sim.run()
    assert fired == [SubmitResult.PREEMPTED]
    delivered = [p for _, p in sink.packets]
    assert delivered == ["preemptor"]
    assert [p for _, p in sink.aborts] == ["victim"]
    assert port.preemptions.count == 1


def test_preemptor_does_not_abort_equal_priority():
    sim = Simulator()
    port, sink = make_port(sim)
    port.submit("a", 1250, 10, priority=PRIORITY_PREEMPT_HIGH)
    result = port.submit("b", 125, 10, priority=PRIORITY_PREEMPT_HIGH)
    assert result is SubmitResult.QUEUED
    sim.run()
    assert [p for _, p in sink.packets] == ["a", "b"]


def test_dib_dropped_only_when_blocked():
    """The DIB flag means drop *if blocked* — an idle port still sends."""
    sim = Simulator()
    port, sink = make_port(sim)
    assert port.submit("sent", 125, 10, dib=True) is SubmitResult.SENT
    assert port.submit("dropped", 125, 10, dib=True) is SubmitResult.DROPPED_DIB
    sim.run()
    assert [p for _, p in sink.packets] == ["sent"]
    assert port.drops.count == 1


def test_buffer_overflow_drops():
    sim = Simulator()
    port, _ = make_port(sim, buffer_bytes=250)
    port.submit("inflight", 125, 10)
    assert port.submit("q1", 125, 10) is SubmitResult.QUEUED
    assert port.submit("q2", 125, 10) is SubmitResult.QUEUED
    assert port.submit("q3", 125, 10) is SubmitResult.DROPPED_OVERFLOW


def test_bufferless_policy_drops_blocked():
    sim = Simulator()
    port, _ = make_port(sim, blocked_policy=BlockedPolicy.DROP)
    port.submit("a", 125, 10)
    assert port.submit("b", 125, 10) is SubmitResult.DROPPED_POLICY


def test_delay_line_retries_and_delivers():
    """Blazenet-style delay-line deferral (§2.1)."""
    sim = Simulator()
    port, sink = make_port(
        sim, blocked_policy=BlockedPolicy.DELAY_LINE, delay_line_s=0.5e-3,
    )
    port.submit("a", 125, 10)  # 1 ms
    assert port.submit("b", 125, 10) is SubmitResult.DELAY_LOOPED
    sim.run()
    assert [p for _, p in sink.packets] == ["a", "b"]
    # b looped twice (at 0.5 ms and 1.0 ms the port is busy until 1 ms).


def test_delay_line_gives_up_after_max_loops():
    sim = Simulator()
    port, sink = make_port(
        sim, blocked_policy=BlockedPolicy.DELAY_LINE,
        delay_line_s=0.1e-3, max_delay_loops=3,
    )
    port.submit("hog", 12500, 10)  # 100 ms: outlives every loop
    assert port.submit("b", 125, 10) is SubmitResult.DELAY_LOOPED
    sim.run()
    assert [p for _, p in sink.packets] == ["hog"]
    assert port.drops.count == 1


def test_queue_statistics():
    sim = Simulator()
    port, _ = make_port(sim)
    port.submit("a", 125, 10)
    port.submit("b", 125, 10)
    port.submit("c", 125, 10)
    assert port.queue_depth == 2
    assert port.queued_bytes == 250
    assert len(port.backlog_packets()) == 2
    sim.run()
    assert port.queue_depth == 0
    assert port.sent.count == 3


def test_transmit_start_hook_runs():
    sim = Simulator()
    port, _ = make_port(sim)
    seen = []
    port.on_transmit_start = lambda entry: seen.append(entry.packet)
    port.submit("a", 125, 10)
    port.submit("b", 125, 10)
    sim.run()
    assert seen == ["a", "b"]
