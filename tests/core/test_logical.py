"""Unit tests for logical ports/links and load balancing (§2.2)."""

import random

import pytest

from repro.core.logical import LogicalPortMap, SelectionPolicy
from repro.viper.portinfo import LogicalInfo
from repro.viper.wire import HeaderSegment


class _FakeAttachment:
    def __init__(self, busy):
        self.busy = busy


class _FakePort:
    def __init__(self, busy=False, depth=0):
        self.attachment = _FakeAttachment(busy)
        self.queue_depth = depth


def test_trunk_least_loaded_prefers_idle_member():
    ports = {1: _FakePort(busy=True, depth=0),
             2: _FakePort(busy=False, depth=3),
             3: _FakePort(busy=True, depth=1)}
    logical = LogicalPortMap()
    logical.add_trunk(100, [1, 2, 3])
    port, spliced = logical.resolve(100, ports)
    assert port == 2 and spliced is None


def test_trunk_least_loaded_breaks_ties_by_queue():
    ports = {1: _FakePort(busy=True, depth=5), 2: _FakePort(busy=True, depth=1)}
    logical = LogicalPortMap()
    logical.add_trunk(100, [1, 2])
    port, _ = logical.resolve(100, ports)
    assert port == 2


def test_trunk_round_robin_cycles():
    ports = {1: _FakePort(), 2: _FakePort(), 3: _FakePort()}
    logical = LogicalPortMap()
    logical.add_trunk(100, [1, 2, 3], policy=SelectionPolicy.ROUND_ROBIN)
    picks = [logical.resolve(100, ports)[0] for _ in range(6)]
    assert picks == [1, 2, 3, 1, 2, 3]


def test_trunk_flow_hash_is_stable_per_flow():
    ports = {1: _FakePort(), 2: _FakePort()}
    logical = LogicalPortMap()
    logical.add_trunk(100, [1, 2], policy=SelectionPolicy.FLOW_HASH)
    a = [logical.resolve(100, ports, flow_hint=5)[0] for _ in range(4)]
    b = [logical.resolve(100, ports, flow_hint=6)[0] for _ in range(4)]
    assert len(set(a)) == 1 and len(set(b)) == 1
    assert a[0] != b[0]


def test_trunk_random_needs_rng():
    logical = LogicalPortMap()
    logical.add_trunk(100, [1, 2], policy=SelectionPolicy.RANDOM)
    with pytest.raises(RuntimeError):
        logical.resolve(100, {1: _FakePort(), 2: _FakePort()})
    seeded = LogicalPortMap(rng=random.Random(1))
    seeded.add_trunk(100, [1, 2], policy=SelectionPolicy.RANDOM)
    picks = {seeded.resolve(100, {1: _FakePort(), 2: _FakePort()})[0]
             for _ in range(20)}
    assert picks == {1, 2}


def test_transit_expansion_returns_spliced_route():
    """§2.2: 'replace the logical hop destination by a … source route as
    the packet enters the network'."""
    logical = LogicalPortMap()
    transit = [HeaderSegment(port=4), HeaderSegment(port=9),
               HeaderSegment(port=2)]
    logical.add_transit(150, transit)
    port, spliced = logical.resolve(150, {})
    assert port == 4
    assert [s.port for s in spliced] == [4, 9, 2]
    # Copies, not aliases: mutating the result must not corrupt the map.
    spliced[0] = spliced[0].copy(port=77)
    assert logical.resolve(150, {})[1][0].port == 4


def test_unknown_port_resolves_to_none():
    logical = LogicalPortMap()
    assert logical.resolve(42, {}) == (None, None)
    assert not logical.is_logical(42)


def test_duplicate_definition_rejected():
    logical = LogicalPortMap()
    logical.add_trunk(100, [1])
    with pytest.raises(ValueError):
        logical.add_transit(100, [HeaderSegment(port=1)])
    with pytest.raises(ValueError):
        logical.add_trunk(100, [2])


def test_empty_definitions_rejected():
    logical = LogicalPortMap()
    with pytest.raises(ValueError):
        logical.add_trunk(100, [])
    with pytest.raises(ValueError):
        logical.add_transit(101, [])


def test_flow_hint_extraction():
    info = LogicalInfo(label=1, flow_hint=9)
    segment = HeaderSegment(port=100, portinfo=info.to_bytes())
    assert LogicalPortMap.flow_hint_of(segment) == 9
    assert LogicalPortMap.flow_hint_of(HeaderSegment(port=1)) == 0
