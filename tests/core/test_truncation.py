"""Unit tests for truncation-instead-of-fragmentation (§2)."""

import pytest

from repro.core.truncation import fits, truncate_to_mtu
from repro.viper.packet import SirpentPacket, TRUNCATION_MARK
from repro.viper.wire import HeaderSegment


def make_packet(payload, n_segments=2):
    return SirpentPacket(
        segments=[HeaderSegment(port=i + 1) for i in range(n_segments)],
        payload_size=payload,
    )


def test_fits():
    packet = make_packet(100)  # 2*4 + 100 = 108
    assert fits(packet, 108)
    assert not fits(packet, 107)


def test_truncate_cuts_payload_to_fit():
    packet = make_packet(1000)
    removed = truncate_to_mtu(packet, mtu=500)
    assert packet.wire_size() <= 500
    assert packet.truncated
    assert removed == 1000 - packet.payload_size


def test_truncate_reserves_room_for_mark():
    packet = make_packet(1000)
    truncate_to_mtu(packet, mtu=500)
    # header 8 + payload + mark 2 == 500 exactly
    assert packet.wire_size() == 500


def test_double_truncation_adds_one_mark():
    packet = make_packet(1000)
    truncate_to_mtu(packet, mtu=500)
    truncate_to_mtu(packet, mtu=300)
    marks = sum(1 for e in packet.trailer if e is TRUNCATION_MARK)
    assert marks == 1
    assert packet.wire_size() <= 300


def test_untruncatable_packet_raises():
    """If even the headers do not fit, the source route was invalid —
    the directory's MTU attribute exists to prevent this (§3)."""
    packet = make_packet(10, n_segments=4)  # 16 bytes of headers
    with pytest.raises(ValueError):
        truncate_to_mtu(packet, mtu=10)


def test_exact_fit_needs_no_cut():
    packet = make_packet(100)
    removed = truncate_to_mtu(packet, mtu=packet.wire_size() + 2)
    assert removed == 0
    assert packet.truncated  # still marked: the router decided to truncate
