"""Unit tests for the §2.2 "feed forward" load hint.

"we are also exploring providing 'feed forward' load information on
packets transiting rate-controlled links.  That is, packets include
information on the number of packets queued behind them at their
previous router."
"""


from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build():
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    router = topo.add_node(SirpentRouter(
        sim, "r1", config=RouterConfig(congestion_enabled=False),
    ))
    # Fast access, slow egress: packets pile up at the router.
    _, src_port, _ = topo.connect(src, router, rate_bps=100e6)
    _, out_port, _ = topo.connect(router, dst, rate_bps=10e6)
    return sim, src, dst, src_port, out_port


def test_queued_packets_carry_backlog_hint():
    sim, src, dst, src_port, out_port = build()
    got = []
    dst.bind(0, got.append)
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], src_port
    )
    for _ in range(5):  # burst: egress 10x slower than ingress
        src.send(route, b"x", 1000)
    sim.run(until=1.0)
    hints = [d.packet.feed_forward_load for d in got]
    assert len(hints) == 5
    # The first packet saw an empty queue; later ones report the
    # backlog shrinking behind them as the queue drains.
    assert hints[0] == 0
    assert max(hints) >= 1
    assert hints[1:] == sorted(hints[1:], reverse=True)


def test_unloaded_path_reports_zero():
    sim, src, dst, src_port, out_port = build()
    got = []
    dst.bind(0, got.append)
    route = StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], src_port
    )
    for index in range(3):
        sim.at(index * 10e-3, lambda: src.send(route, b"x", 500))
    sim.run(until=1.0)
    assert all(d.packet.feed_forward_load == 0 for d in got)
