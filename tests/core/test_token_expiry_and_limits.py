"""Router-level token lifetime and transport-level size limits."""

import pytest

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_line
from repro.transport import RouteManager


def test_expired_token_rejected_at_the_router():
    """Tokens can carry an expiry; packets after it are rejected.

    Under the BLOCKING policy the check is synchronous — with OPTIMISTIC
    the first packet per (re-learned) token value is admitted by design.
    """
    from repro.tokens.cache import CachePolicy

    config = RouterConfig(require_tokens=True,
                          token_policy=CachePolicy.BLOCKING)
    scenario = build_sirpent_line(n_routers=1, router_config=config)
    router = scenario.routers["r1"]
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    base = scenario.routes("src", "dst")[0]
    out_port = base.segments[0].port
    token = router.mint.mint(port=out_port, account=1, expiry_ms=50)

    class Tokened:
        segments = [base.segments[0].copy(token=token), base.segments[1]]
        first_hop_port = base.first_hop_port
        first_hop_mac = base.first_hop_mac

    scenario.hosts["src"].send(Tokened, b"fresh", 100)
    scenario.sim.run(until=0.2)  # clock now past 50 ms
    # Flush the cache so the router re-verifies (cached entries do not
    # re-check expiry; soft state would age out in deployment).
    router.token_cache.flush()
    scenario.hosts["src"].send(Tokened, b"stale", 100)
    scenario.sim.run(until=0.5)
    assert [d.payload for d in got] == [b"fresh"]
    assert router.stats.dropped_token.count >= 1


def test_oversized_message_rejected_at_the_transport():
    """A logical message beyond the 32-member group limit fails fast."""
    scenario = build_sirpent_line(n_routers=1)
    client = scenario.transport("src")
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"ok", 8))
    manager = RouteManager(scenario.sim, scenario.vmtp_routes("src", "dst"))
    too_big = 33 * 1024 + 1  # > 32 x 1KB members
    with pytest.raises(ValueError):
        client.transact(manager, entity, b"huge", too_big, lambda r: None)


def test_byte_limited_token_cuts_off_mid_stream():
    """'optionally a limit on resource usage authorized by this token'
    (§2.2): the budget runs out and later packets are rejected."""
    config = RouterConfig(require_tokens=True)
    scenario = build_sirpent_line(n_routers=1, router_config=config)
    router = scenario.routers["r1"]
    got = []
    scenario.hosts["dst"].bind(0, got.append)
    base = scenario.routes("src", "dst")[0]
    out_port = base.segments[0].port
    # Budget for roughly two 500-byte packets (plus headers).
    token = router.mint.mint(port=out_port, account=2, byte_limit=1200)

    class Tokened:
        segments = [base.segments[0].copy(token=token), base.segments[1]]
        first_hop_port = base.first_hop_port
        first_hop_mac = base.first_hop_mac

    for index in range(4):
        scenario.sim.at(index * 5e-3,
                        lambda: scenario.hosts["src"].send(Tokened, b"x", 500))
    scenario.sim.run(until=0.5)
    assert len(got) == 2
    assert router.stats.dropped_token.count == 2
    # Accounting matches what was admitted.
    assert router.token_cache.ledger.usage(2).packets == 2
