"""Tests for abort propagation through cut-through chains (§2.1).

When a preemptive packet aborts a lower-priority transmission whose
head is already being cut-through forwarded downstream, the abort must
ripple down the chain — the truncated tail never arrives, so every
downstream hop's copy dies too.
"""


from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.flags import PRIORITY_PREEMPT_HIGH
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build_chain(n_routers=2, rate=1e6):
    """Slow links so packets are in flight long enough to preempt."""
    sim = Simulator()
    topo = Topology(sim)
    src = topo.add_node(SirpentHost(sim, "src"))
    dst = topo.add_node(SirpentHost(sim, "dst"))
    routers = [
        topo.add_node(SirpentRouter(
            sim, f"r{i + 1}", config=RouterConfig(congestion_enabled=False),
        ))
        for i in range(n_routers)
    ]
    _, src_port, _ = topo.connect(src, routers[0], rate_bps=rate)
    ports = []
    for a, b in zip(routers, routers[1:]):
        _, pa, _ = topo.connect(a, b, rate_bps=rate)
        ports.append(pa)
    _, last, _ = topo.connect(routers[-1], dst, rate_bps=rate)
    ports.append(last)
    return sim, src, dst, routers, src_port, ports


def test_preemption_aborts_the_whole_cut_through_chain():
    sim, src, dst, routers, src_port, ports = build_chain()
    got = []
    dst.bind(0, got.append)
    route = StaticRoute(
        [HeaderSegment(port=p) for p in ports] + [HeaderSegment(port=0)],
        src_port,
    )
    # 5000B at 1 Mb/s = 40 ms on the wire; r1 starts cutting through at
    # ~0.1 ms.  Preempt at 10 ms: every downstream copy must die.
    src.send(route, b"victim", 5000, priority=0)
    sim.at(10e-3, lambda: src.send(route, b"urgent", 200,
                                   priority=PRIORITY_PREEMPT_HIGH))
    sim.run(until=1.0)
    payloads = [d.payload for d in got]
    assert payloads == [b"urgent"]
    # Nothing stale remains in the routers' cut-through tracking.
    for router in routers:
        assert router._forwarding_out == {}


def test_abort_does_not_disturb_unrelated_traffic():
    sim, src, dst, routers, src_port, ports = build_chain()
    got = []
    dst.bind(0, got.append)
    route = StaticRoute(
        [HeaderSegment(port=p) for p in ports] + [HeaderSegment(port=0)],
        src_port,
    )
    src.send(route, b"victim", 5000, priority=0)
    sim.at(10e-3, lambda: src.send(route, b"urgent", 200,
                                   priority=PRIORITY_PREEMPT_HIGH))
    # A later normal packet flows normally after the dust settles.
    sim.at(100e-3, lambda: src.send(route, b"later", 300, priority=0))
    sim.run(until=1.0)
    assert [d.payload for d in got] == [b"urgent", b"later"]


def test_router_forwarding_records_cleaned_on_normal_delivery():
    sim, src, dst, routers, src_port, ports = build_chain(n_routers=1)
    dst.bind(0, lambda d: None)
    route = StaticRoute(
        [HeaderSegment(port=ports[0]), HeaderSegment(port=0)], src_port
    )
    for _ in range(3):
        src.send(route, b"x", 500)
    sim.run(until=1.0)
    # The cut-through tracking map must not leak.
    assert routers[0]._forwarding_out == {}
