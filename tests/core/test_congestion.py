"""Unit tests for rate-based congestion control (§2.2)."""

import pytest

from repro.core.congestion import (
    ControlPlane,
    FlowLimiter,
    RateControlManager,
    RateSignal,
    _previous_hop,
)
from repro.sim.engine import Simulator
from repro.viper.packet import SirpentPacket
from repro.viper.wire import HeaderSegment


def make_packet(hop_log, source="src"):
    packet = SirpentPacket(segments=[HeaderSegment(port=0)], payload_size=10)
    packet.hop_log = list(hop_log)
    packet.source = source
    return packet


class TestPreviousHop:
    def test_middle_of_path(self):
        packet = make_packet(["r1", "r2", "r3"])
        assert _previous_hop(packet, "r2") == "r1"
        assert _previous_hop(packet, "r3") == "r2"

    def test_first_router_sees_source(self):
        packet = make_packet(["r1"], source="hostA")
        assert _previous_hop(packet, "r1") == "hostA"

    def test_empty_log_falls_back_to_source(self):
        packet = make_packet([], source="hostA")
        assert _previous_hop(packet, "r9") == "hostA"


class TestControlPlane:
    def test_delivery_with_link_latency(self):
        from repro.net.node import Node
        from repro.net.topology import Topology

        sim = Simulator()
        topo = Topology(sim)
        a, b = Node(sim, "a"), Node(sim, "b")
        topo.connect(a, b, propagation_delay=2e-3)
        plane = ControlPlane(sim, topo)
        inbox = []
        plane.register("b", lambda src, msg: inbox.append((sim.now, src, msg)))
        plane.send("a", "b", "hello")
        sim.run()
        assert inbox == [(2e-3, "a", "hello")]

    def test_down_link_loses_messages(self):
        from repro.net.node import Node
        from repro.net.topology import Topology

        sim = Simulator()
        topo = Topology(sim)
        a, b = Node(sim, "a"), Node(sim, "b")
        topo.connect(a, b, name="ab")
        plane = ControlPlane(sim, topo)
        inbox = []
        plane.register("b", lambda src, msg: inbox.append(msg))
        topo.fail_link("ab")
        plane.send("a", "b", "lost")
        sim.run()
        assert inbox == []

    def test_non_adjacent_uses_default_delay(self):
        sim = Simulator()
        plane = ControlPlane(sim, None)
        inbox = []
        plane.register("far", lambda src, msg: inbox.append(sim.now))
        plane.send("here", "far", "msg")
        sim.run()
        assert inbox == [ControlPlane.DEFAULT_DELAY]

    def test_unknown_recipient_ignored(self):
        sim = Simulator()
        plane = ControlPlane(sim, None)
        plane.send("a", "nobody", "msg")
        sim.run()  # nothing scheduled, nothing crashes


class TestFlowLimiter:
    def test_consume_within_burst(self):
        sim = Simulator()
        limiter = FlowLimiter(sim, ("rX", 1), rate_bps=8000.0,
                              burst_bytes=1000, expiry=10.0)
        assert limiter.try_consume(500)
        assert limiter.try_consume(500)
        assert not limiter.try_consume(500)  # bucket empty

    def test_tokens_refill_over_time(self):
        sim = Simulator()
        limiter = FlowLimiter(sim, ("rX", 1), rate_bps=8000.0,
                              burst_bytes=1000, expiry=10.0)
        assert limiter.try_consume(1000)
        sim.at(0.5, lambda: None)
        sim.run()
        # 0.5 s at 8 kbps = 500 bytes of budget.
        assert limiter.try_consume(500)
        assert not limiter.try_consume(100)

    def test_held_packets_release_in_order(self):
        sim = Simulator()
        limiter = FlowLimiter(sim, ("rX", 1), rate_bps=80000.0,
                              burst_bytes=100, expiry=10.0)
        released = []
        limiter.try_consume(100)  # drain burst
        limiter.hold(100, lambda: released.append(("a", sim.now)))
        limiter.hold(100, lambda: released.append(("b", sim.now)))
        sim.run()
        assert [tag for tag, _ in released] == ["a", "b"]
        # 100 bytes at 80 kbps = 10 ms apart.
        assert released[1][1] - released[0][1] == pytest.approx(10e-3, rel=0.2)

    def test_fifo_blocks_fresh_consumers(self):
        sim = Simulator()
        limiter = FlowLimiter(sim, ("rX", 1), rate_bps=8.0,
                              burst_bytes=1000, expiry=10.0)
        limiter.try_consume(1000)
        limiter.hold(100, lambda: None)
        assert not limiter.try_consume(1)  # held packets go first

    def test_ramp_up_raises_rate(self):
        sim = Simulator()
        limiter = FlowLimiter(sim, ("rX", 1), rate_bps=1000.0,
                              burst_bytes=100, expiry=0.0)
        limiter.ramp_up(2.0)
        assert limiter.rate_bps == 2000.0


class _FakeAttachment:
    def __init__(self, rate):
        self.rate_bps = rate
        self.busy = False


class _FakePort:
    def __init__(self, rate=1e6):
        self.attachment = _FakeAttachment(rate)
        self.queue_depth = 0
        self._backlog = []

    def backlog_packets(self):
        return self._backlog


class TestRateControlManager:
    def make(self, sim, name="rC", **kwargs):
        plane = ControlPlane(sim, None)
        manager = RateControlManager(sim, name, plane, check_interval=1e-3,
                                     queue_high_watermark=2, **kwargs)
        return manager, plane

    def test_congestion_signals_feeders(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        received = []
        plane.register("rA", lambda src, msg: received.append(msg))
        port = _FakePort()
        port.queue_depth = 5
        port._backlog = [make_packet(["rA", "rC"]) for _ in range(5)]
        manager.watch_port(7, port)
        sim.run(until=5e-3)
        assert received
        signal = received[0]
        assert isinstance(signal, RateSignal)
        assert signal.congested_node == "rC"
        assert signal.port_id == 7
        assert signal.advised_rate_bps == pytest.approx(0.9e6)

    def test_advised_rate_split_among_feeders(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        got = {}
        plane.register("rA", lambda s, m: got.setdefault("rA", m))
        plane.register("rB", lambda s, m: got.setdefault("rB", m))
        port = _FakePort()
        port.queue_depth = 4
        port._backlog = [
            make_packet(["rA", "rC"]), make_packet(["rB", "rC"]),
            make_packet(["rA", "rC"]), make_packet(["rB", "rC"]),
        ]
        manager.watch_port(1, port)
        sim.run(until=5e-3)
        assert set(got) == {"rA", "rB"}
        assert got["rA"].advised_rate_bps == pytest.approx(0.45e6)

    def test_short_queue_stays_silent(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        received = []
        plane.register("rA", lambda s, m: received.append(m))
        port = _FakePort()
        port.queue_depth = 1
        port._backlog = [make_packet(["rA", "rC"])]
        manager.watch_port(1, port)
        sim.run(until=5e-3)
        assert received == []

    def test_receiving_signal_installs_soft_state(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        signal = RateSignal("rX", 3, advised_rate_bps=1e5, hold_time=20e-3)
        plane.send("rX", "rC", signal)
        sim.run(until=5e-3)
        assert ("rX", 3) in manager.limits

    def test_admit_or_hold_limits_matching_flow(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        plane.send("rX", "rC", RateSignal("rX", 3, 800.0, hold_time=10.0))
        sim.run(until=2e-3)
        limiter = manager.limits[("rX", 3)]
        limiter.tokens = 0.0  # exhaust the burst allowance
        forwarded = []
        done_now = manager.admit_or_hold(
            make_packet(["rC"]), "rX", 3, 100, lambda: forwarded.append(sim.now)
        )
        assert not done_now
        sim.run(until=sim.now + 5.0)
        assert forwarded  # released later at the advised rate

    def test_admit_or_hold_passes_unrelated_flow(self):
        sim = Simulator()
        manager, plane = self.make(sim)
        plane.send("rX", "rC", RateSignal("rX", 3, 800.0, hold_time=10.0))
        sim.run(until=2e-3)
        forwarded = []
        assert manager.admit_or_hold(
            make_packet(["rC"]), "rOTHER", 3, 100, lambda: forwarded.append(1)
        )
        assert manager.admit_or_hold(
            make_packet(["rC"]), "rX", 9, 100, lambda: forwarded.append(2)
        )
        assert forwarded == [1, 2]

    def test_stale_limits_ramp_and_evaporate(self):
        """Soft state: expired limits push the rate up until gone."""
        sim = Simulator()
        manager, plane = self.make(sim, hold_time=2e-3)
        plane.send("rX", "rC", RateSignal("rX", 3, 1e6, hold_time=2e-3))
        sim.run(until=1.5e-3)
        assert ("rX", 3) in manager.limits
        sim.run(until=0.2)  # many check intervals: x2 each, then gone
        assert ("rX", 3) not in manager.limits

    def test_disabled_manager_forwards_everything(self):
        sim = Simulator()
        plane = ControlPlane(sim, None)
        manager = RateControlManager(sim, "rC", plane, enabled=False)
        forwarded = []
        assert manager.admit_or_hold(
            make_packet([]), "rX", 1, 100, lambda: forwarded.append(1)
        )
        assert forwarded == [1]
