"""Unit tests for the Sirpent host stack."""

import pytest

from repro.core.host import SirpentHost
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class StaticRoute:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def direct_pair():
    """Two hosts joined by one router on p2p links."""
    sim = Simulator()
    topo = Topology(sim)
    a = topo.add_node(SirpentHost(sim, "a"))
    b = topo.add_node(SirpentHost(sim, "b"))
    router = topo.add_node(SirpentRouter(sim, "r"))
    _, a_port, _ = topo.connect(a, router)
    _, out_port, _ = topo.connect(router, b)
    return sim, a, b, router, a_port, out_port


def test_socket_demultiplexing():
    sim, a, b, _r, a_port, out_port = direct_pair()
    box_default, box_seven = [], []
    b.bind(0, box_default.append)
    b.bind(7, box_seven.append)
    a.send(StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=7)], a_port
    ), b"to-seven", 100)
    a.send(StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], a_port
    ), b"to-default", 100)
    sim.run(until=1.0)
    assert len(box_seven) == 1 and box_seven[0].socket == 7
    assert len(box_default) == 1 and box_default[0].socket == 0


def test_unbound_socket_counted_undeliverable():
    sim, a, b, _r, a_port, out_port = direct_pair()
    a.send(StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=42)], a_port
    ), b"nowhere", 100)
    sim.run(until=1.0)
    assert b.undeliverable.count == 1
    assert b.received.count == 1  # received, just not deliverable


def test_double_bind_rejected():
    sim, _a, b, _r, _ap, _op = direct_pair()
    b.bind(5, lambda d: None)
    with pytest.raises(ValueError):
        b.bind(5, lambda d: None)
    b.unbind(5)
    b.bind(5, lambda d: None)  # rebindable after unbind


def test_priority_stamped_on_all_segments():
    sim, a, b, _r, a_port, out_port = direct_pair()
    got = []
    b.bind(0, got.append)
    a.send(StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], a_port
    ), b"urgent", 100, priority=6)
    sim.run(until=1.0)
    # The final segment still carries the priority at delivery.
    assert got[0].packet.segments[0].priority == 6
    assert got[0].return_segments[0].priority == 6


def test_send_return_reaches_reply_socket():
    sim, a, b, _r, a_port, out_port = direct_pair()
    delivered_at_b = []
    replies_at_a = []
    b.bind(0, delivered_at_b.append)
    a.bind(9, replies_at_a.append)
    a.send(StaticRoute(
        [HeaderSegment(port=out_port), HeaderSegment(port=0)], a_port
    ), b"request", 300)
    sim.run(until=0.5)
    b.send_return(delivered_at_b[0], b"reply", 150, reply_socket=9)
    sim.run(until=1.0)
    assert len(replies_at_a) == 1
    assert replies_at_a[0].socket == 9
    assert replies_at_a[0].payload == b"reply"


def test_delivery_statistics():
    sim, a, b, _r, a_port, out_port = direct_pair()
    b.bind(0, lambda d: None)
    for _ in range(3):
        a.send(StaticRoute(
            [HeaderSegment(port=out_port), HeaderSegment(port=0)], a_port
        ), b"x", 100)
    sim.run(until=1.0)
    assert a.sent.count == 3
    assert b.received.count == 3
    assert b.delivery_delay.count == 3


def test_send_on_missing_port_raises():
    sim, a, _b, _r, _ap, out_port = direct_pair()
    with pytest.raises(KeyError):
        a.send(StaticRoute([HeaderSegment(port=0)], first_hop_port=99),
               b"x", 10)


def test_ethernet_host_return_path_uses_frame_macs():
    """Hosts on an Ethernet learn the first return hop from the arrival
    frame (§2's reversal of enetHdr)."""
    sim = Simulator()
    topo = Topology(sim)
    a = topo.add_node(SirpentHost(sim, "a"))
    b = topo.add_node(SirpentHost(sim, "b"))
    segment = topo.add_ethernet("eth")
    att_a = topo.attach_to_ethernet(a, segment)
    att_b = topo.attach_to_ethernet(b, segment)
    got = []
    b.bind(0, got.append)
    # Direct host-to-host on one Ethernet: a single final segment.
    a.send(StaticRoute([HeaderSegment(port=0)], att_a.port_id,
                       first_hop_mac=att_b.mac), b"hello", 64)
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0].return_first_hop_mac == att_a.mac
    assert got[0].arrival_port == att_b.port_id
