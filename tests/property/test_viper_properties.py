"""Property-based tests (hypothesis) for the VIPER codec and algebra.

These check the invariants the design leans on: codec roundtrips for
arbitrary field contents, wire-size arithmetic, the trailer walk, and
the end-to-end return-route reversal property from §2.
"""

from hypothesis import given, settings, strategies as st

from repro.viper.flags import effective_priority, outranks
from repro.viper.packet import (
    SirpentPacket,
    TrailerElement,
    build_return_route,
    decode_packet,
    encode_packet,
)
from repro.viper.wire import HeaderSegment, decode_segment, encode_segment

segments = st.builds(
    HeaderSegment,
    port=st.integers(0, 255),
    priority=st.integers(0, 15),
    vnt=st.booleans(),
    dib=st.booleans(),
    rpf=st.booleans(),
    token=st.binary(max_size=300),
    portinfo=st.binary(max_size=300),
)


@given(segments)
def test_segment_roundtrip(segment):
    encoded = encode_segment(segment)
    decoded, consumed = decode_segment(encoded)
    assert decoded == segment
    assert consumed == len(encoded) == segment.wire_size()


@given(st.lists(segments, min_size=1, max_size=48))
def test_stacked_segments_roundtrip(route):
    buffer = b"".join(encode_segment(s) for s in route)
    offset = 0
    decoded = []
    for _ in route:
        segment, offset = decode_segment(buffer, offset)
        decoded.append(segment)
    assert decoded == route
    assert offset == len(buffer)


@given(segments, st.binary(min_size=1, max_size=64))
def test_segment_decoding_ignores_trailing_bytes(segment, junk):
    encoded = encode_segment(segment)
    decoded, consumed = decode_segment(encoded + junk)
    assert decoded == segment
    assert consumed == len(encoded)


@given(st.integers(0, 15), st.integers(0, 15))
def test_priority_order_total_and_antisymmetric(a, b):
    assert (effective_priority(a) == effective_priority(b)) == (a == b)
    if a != b:
        assert outranks(a, b) != outranks(b, a)


@given(
    st.lists(segments, min_size=1, max_size=8),
    st.lists(segments, min_size=0, max_size=8),
    st.integers(0, 2000),
)
@settings(max_examples=60)
def test_whole_packet_roundtrip(header, trailer_segments, payload_size):
    packet = SirpentPacket(
        segments=list(header),
        payload_size=payload_size,
        trailer=[TrailerElement(s) for s in trailer_segments],
    )
    encoded = encode_packet(packet)
    assert len(encoded) == packet.wire_size()
    decoded, payload = decode_packet(encoded, segment_count=len(header))
    assert decoded.segments == list(header)
    assert len(payload) >= payload_size  # zero payload may absorb a
    # trailer-walk ambiguity only when trailer elements are themselves
    # decodable from payload bytes; with zero-filled payloads the walk
    # is exact:
    if payload_size == len(payload):
        assert [e.segment for e in decoded.trailer
                if isinstance(e, TrailerElement)] == list(trailer_segments)


@given(
    st.lists(st.integers(1, 255), min_size=1, max_size=20),
    st.lists(st.integers(1, 255), min_size=1, max_size=20),
)
@settings(max_examples=100)
def test_return_route_reversal(forward_ports, return_ports)  :
    """Whatever the routers appended, the receiver's return route is the
    exact reverse, with RPF set."""
    n = min(len(forward_ports), len(return_ports))
    packet = SirpentPacket(
        segments=[HeaderSegment(port=p) for p in forward_ports[:n]] + [
            HeaderSegment(port=0)
        ],
        payload_size=10,
    )
    for rp in return_ports[:n]:
        packet.advance(HeaderSegment(port=rp))
    route = build_return_route(packet)
    assert [s.port for s in route] == list(reversed(return_ports[:n]))
    assert all(s.rpf for s in route)


@given(segments)
def test_copy_is_faithful(segment):
    assert segment.copy() == segment
    assert segment.copy(port=(segment.port + 1) % 256) != segment
