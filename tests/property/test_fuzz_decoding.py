"""Fuzzing the decoders: arbitrary bytes must never crash, only raise
DecodeError or produce a structure that re-encodes consistently."""

from hypothesis import given, settings, strategies as st

from repro.baselines.ip.header import IPV4_HEADER_BYTES, IpHeader
from repro.core.multicast import decode_tree_info
from repro.viper.errors import DecodeError
from repro.viper.packet import decode_trailer
from repro.viper.portinfo import CompressedEthernetInfo, EthernetInfo
from repro.viper.wire import decode_segment, encode_segment


@given(st.binary(max_size=600))
@settings(max_examples=300)
def test_segment_decoder_total(data):
    try:
        segment, consumed = decode_segment(data)
    except DecodeError:
        return
    assert 0 < consumed <= len(data)
    # What decoded must re-encode to exactly the bytes consumed.
    assert encode_segment(segment) == data[:consumed]


@given(st.binary(max_size=400))
@settings(max_examples=200)
def test_tree_decoder_total(data):
    try:
        branches = decode_tree_info(data)
    except DecodeError:
        return
    assert branches
    assert all(branch.segments for branch in branches)


@given(st.binary(max_size=300))
@settings(max_examples=200)
def test_trailer_walk_never_crashes(data):
    elements, boundary = decode_trailer(data)
    assert 0 <= boundary <= len(data)


@given(st.binary(max_size=40))
@settings(max_examples=200)
def test_portinfo_decoders_total(data):
    for decoder in (EthernetInfo.from_bytes, CompressedEthernetInfo.from_bytes):
        try:
            decoder(data)
        except DecodeError:
            pass


@given(st.binary(min_size=IPV4_HEADER_BYTES, max_size=IPV4_HEADER_BYTES))
@settings(max_examples=300)
def test_ip_header_decoder_total(data):
    try:
        header = IpHeader.from_bytes(data)
    except ValueError:
        return
    # Decoded headers re-encode to the same bytes.
    assert header.to_bytes() == data


@given(st.binary(max_size=19))
def test_short_ip_header_rejected(data):
    try:
        IpHeader.from_bytes(data)
        assert False, "short buffer accepted"
    except ValueError:
        pass
