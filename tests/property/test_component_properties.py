"""Property-based tests on core component invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.queues import OutputPort, SubmitResult
from repro.net.link import Channel
from repro.net.node import Node, P2PAttachment
from repro.sim.engine import Simulator
from repro.tokens.capability import InvalidTokenError, TOKEN_BYTES, TokenMint
from repro.transport.flowcontrol import DeliveryMask
from repro.viper.flags import effective_priority


class _Sink(Node):
    def __init__(self, sim):
        super().__init__(sim, "sink")
        self.delivered = []

    def on_packet(self, packet, inport, tx):
        self.delivered.append(packet)


def _make_port(sim, buffer_bytes=10**9):
    sink = _Sink(sim)
    channel = Channel(sim, rate_bps=1e6, propagation_delay=0.0, name="ch")
    rx = P2PAttachment(sink, 1, Channel(sim, 1e6, 0.0), peer_name="tx")
    sink.attach(1, rx)
    channel.dst_attachment = rx
    sender = Node(sim, "sender")
    attachment = P2PAttachment(sender, 1, channel, peer_name="sink")
    sender.attach(1, attachment)
    return OutputPort(sim, attachment, buffer_bytes=buffer_bytes), sink


@given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_queue_conservation_and_priority_order(priorities):
    """Every submitted packet is delivered exactly once (no preemptive
    priorities, huge buffer) and queued packets leave in priority order."""
    sim = Simulator()
    port, sink = _make_port(sim)
    for index, priority in enumerate(priorities):
        result = port.submit((index, priority), 125, 10, priority=priority)
        assert result in (SubmitResult.SENT, SubmitResult.QUEUED)
    sim.run()
    assert len(sink.delivered) == len(priorities)
    assert sorted(i for i, _p in sink.delivered) == list(range(len(priorities)))
    # After the first (immediately transmitted) packet, deliveries are
    # sorted by effective priority, FIFO within a priority.
    rest = sink.delivered[1:]
    keys = [(-effective_priority(p), i) for i, p in rest]
    assert keys == sorted(keys)


@given(st.binary(min_size=1, max_size=32), st.integers(0, 255),
       st.integers(0, 7), st.integers(0, (1 << 32) - 1))
@settings(max_examples=100)
def test_minted_tokens_always_verify(secret, port, priority, account):
    mint = TokenMint(secret, issuer="prop")
    token = mint.mint(port=port, account=account, max_priority=priority)
    claims = mint.verify(token)
    assert claims.port == port
    assert claims.account == account


@given(st.integers(0, TOKEN_BYTES - 1), st.integers(1, 255))
@settings(max_examples=100)
def test_any_single_byte_mutation_breaks_the_seal(position, xor):
    """Flipping any byte of a token invalidates it — body bytes change
    the claims out from under the seal, seal bytes break the MAC."""
    mint = TokenMint(b"prop-secret", issuer="prop")
    token = bytearray(mint.mint(port=3, account=9, max_priority=5))
    token[position] ^= xor
    try:
        mint.verify(bytes(token))
        verified = True
    except InvalidTokenError:
        verified = False
    assert not verified


@given(st.integers(1, 32), st.sets(st.integers(0, 31)))
@settings(max_examples=100)
def test_delivery_mask_partition(count, marks):
    mask = DeliveryMask(count)
    valid_marks = {m for m in marks if m < count}
    for m in valid_marks:
        mask.mark(m)
    received, missing = set(mask.received()), set(mask.missing())
    assert received == valid_marks
    assert received | missing == set(range(count))
    assert received & missing == set()
    assert mask.complete == (len(valid_marks) == count)


@given(st.lists(st.tuples(st.integers(100, 2000), st.integers(0, 5)),
                min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_flow_limiter_releases_everything_once(holds):
    """Held packets are released exactly once, in FIFO order."""
    from repro.core.congestion import FlowLimiter

    sim = Simulator()
    limiter = FlowLimiter(sim, ("x", 1), rate_bps=1e6,
                          burst_bytes=500, expiry=1e9)
    released = []
    for index, (size, _junk) in enumerate(holds):
        if not limiter.try_consume(size):
            limiter.hold(size, lambda i=index: released.append(i))
    sim.run(until=60.0)
    assert released == sorted(released)
    assert len(released) == len(set(released))
    assert limiter.backlog == 0
