"""Unit tests for the §4.3 host-cost (NAB) model."""

import pytest

from repro.analysis.hostcost import HostCostModel


@pytest.fixture
def model():
    return HostCostModel(per_packet=100e-6, per_group=150e-6,
                         copy_per_byte=10e-9)


def test_packet_count(model):
    assert model.packets_for(1024, 1024) == 1
    assert model.packets_for(1025, 1024) == 2
    assert model.packets_for(16 * 1024, 1024) == 16
    with pytest.raises(ValueError):
        model.packets_for(0, 1024)


def test_single_packet_message_nab_is_slightly_worse(model):
    """For one packet the NAB's group setup exceeds the per-packet cost
    — the paper's 'this optimization seems unwarranted in general' for
    small messages."""
    assert model.send_cost(512, 1024, nab=True) > \
        model.send_cost(512, 1024, nab=False)


def test_group_send_nab_wins_and_grows(model):
    sixteen = model.nab_speedup(16 * 1024, 1024)
    four = model.nab_speedup(4 * 1024, 1024)
    assert sixteen > four > 1.0
    # 16 packets: ~1600us vs ~150us+copy -> order-of-magnitude win.
    assert sixteen > 5.0


def test_receive_cost_includes_trailer_copy(model):
    without_nab = model.receive_cost(16 * 1024, 1024, trailer_bytes_per_packet=40,
                                     nab=False)
    nab = model.receive_cost(16 * 1024, 1024, trailer_bytes_per_packet=40,
                             nab=True)
    assert nab < without_nab
    # The trailer copy is visible: zero-trailer reception is cheaper.
    no_trailer = model.receive_cost(16 * 1024, 1024,
                                    trailer_bytes_per_packet=0, nab=False)
    assert no_trailer < without_nab


def test_max_message_rate_inverse_of_cost(model):
    cost = model.send_cost(8 * 1024, 1024, nab=True)
    assert model.max_message_rate(8 * 1024, 1024, nab=True) == \
        pytest.approx(1.0 / cost)


def test_copy_cost_scales_with_bytes(model):
    small = model.send_cost(1024, 1024, nab=True)
    large = model.send_cost(32 * 1024, 1024, nab=True)
    # Same single group cost; the difference is pure copy.
    assert large - small == pytest.approx(31 * 1024 * 10e-9)
