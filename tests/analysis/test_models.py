"""Unit tests for the §6 closed-form models."""

import pytest

from repro.analysis.delay import (
    cut_through_delay,
    store_and_forward_delay,
    store_forward_penalty,
)
from repro.analysis.overhead import (
    crossover_hops,
    ip_overhead_fraction,
    mixture_mean_size,
    paper_example_overhead,
    sirpent_overhead_fraction,
)
from repro.analysis.queueing import (
    md1_mean_queue,
    md1_mean_sojourn,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_queue,
    mm1_mean_wait,
)


class TestQueueing:
    def test_md1_wait_at_half_load_is_half_service(self):
        """The paper's 'transmission time for half of an average
        packet' claim holds exactly at rho = 0.5."""
        assert md1_mean_wait(0.5, service_time=1.0) == pytest.approx(0.5)

    def test_md1_queue_at_70_percent(self):
        """§6.1: about one packet in system at 70% utilization."""
        assert md1_mean_queue(0.7) == pytest.approx(0.7 + 0.49 / 0.6)
        assert md1_mean_queue(0.5) < 1.0  # 'one packet or less' band

    def test_md1_is_half_of_mm1(self):
        for rho in (0.1, 0.5, 0.9):
            assert md1_mean_wait(rho, 1.0) == pytest.approx(
                mm1_mean_wait(rho, 1.0) / 2
            )

    def test_mg1_interpolates(self):
        rho, service = 0.6, 1.0
        deterministic = mg1_mean_wait(rho, service, service_cv2=0.0)
        exponential = mg1_mean_wait(rho, service, service_cv2=1.0)
        assert deterministic == pytest.approx(md1_mean_wait(rho, service))
        assert exponential == pytest.approx(mm1_mean_wait(rho, service))
        middle = mg1_mean_wait(rho, service, service_cv2=0.5)
        assert deterministic < middle < exponential

    def test_sojourn_adds_service(self):
        assert md1_mean_sojourn(0.5, 2.0) == pytest.approx(
            md1_mean_wait(0.5, 2.0) + 2.0
        )

    def test_mm1_queue(self):
        assert mm1_mean_queue(0.5) == pytest.approx(1.0)

    def test_utilization_validated(self):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                md1_mean_wait(bad, 1.0)
        with pytest.raises(ValueError):
            mg1_mean_wait(0.5, 1.0, service_cv2=-1)


class TestOverhead:
    def test_three_eighths_rule(self):
        """§6.2: 'the average packet size is roughly 3/8 of the maximum'."""
        assert mixture_mean_size(0, 2048) == pytest.approx(3 / 8 * 2048)

    def test_nonzero_minimum(self):
        mean = mixture_mean_size(64, 1500)
        assert mean == pytest.approx(0.5 * 64 + 0.25 * 1500 + 0.25 * 782)

    def test_paper_example_near_half_percent(self):
        """The headline §6.2 number: ~0.5% VIPER header overhead."""
        example = paper_example_overhead()
        assert 0.004 < example["sirpent_overhead_paper"] < 0.006
        assert 0.004 < example["sirpent_overhead_3_8"] < 0.006
        # IP's fixed header costs 5-6x more on the same traffic.
        assert example["ip_overhead_paper"] > 5 * example["sirpent_overhead_paper"]

    def test_overhead_scales_with_hops(self):
        low = sirpent_overhead_fraction(18, 0.2, 633)
        high = sirpent_overhead_fraction(18, 5.0, 633)
        assert high == pytest.approx(low * 25)

    def test_crossover_hops(self):
        """Routes shorter than ~1.1 hops make VIPER cheaper than IP."""
        assert crossover_hops() == pytest.approx(20 / 18)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixture_mean_size(100, 50)
        with pytest.raises(ValueError):
            sirpent_overhead_fraction(18, 1, 0)
        with pytest.raises(ValueError):
            ip_overhead_fraction(0)


class TestDelay:
    def test_store_forward_grows_per_hop(self):
        base = dict(size_bytes=1000, rate_bps=10e6, total_propagation=1e-3)
        one = store_and_forward_delay(hops=1, **base)
        four = store_and_forward_delay(hops=4, **base)
        serialization = 1000 * 8 / 10e6
        assert four - one == pytest.approx(3 * serialization)

    def test_cut_through_is_flat_in_hops(self):
        base = dict(size_bytes=1000, rate_bps=10e6, total_propagation=1e-3,
                    decision_delay_per_hop=0.5e-6)
        one = cut_through_delay(hops=1, **base)
        four = cut_through_delay(hops=4, **base)
        assert four - one == pytest.approx(3 * 0.5e-6)

    def test_penalty_identity(self):
        """SF delay = CT delay + penalty (zero decision/queueing)."""
        kwargs = dict(size_bytes=800, rate_bps=10e6)
        sf = store_and_forward_delay(
            hops=3, total_propagation=2e-3, process_delay_per_hop=1e-4, **kwargs
        )
        ct = cut_through_delay(
            hops=3, total_propagation=2e-3, decision_delay_per_hop=0.0, **kwargs
        )
        assert sf - ct == pytest.approx(
            store_forward_penalty(hops=3, process_delay_per_hop=1e-4, **kwargs)
        )

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            cut_through_delay(100, 1e6, -1, 0.0)
        with pytest.raises(ValueError):
            store_and_forward_delay(100, 1e6, -1, 0.0)
