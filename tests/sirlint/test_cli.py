"""CLI contract: exit codes, JSON shape, rule listing, speed budget."""

import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "tools"))
    return subprocess.run(
        [sys.executable, "-m", "sirlint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def test_clean_tree_exits_zero_with_json():
    proc = run_cli("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["checked_files"] > 50


def test_violation_exits_one(tmp_path):
    bad = tmp_path / "src" / "repro" / "dataplane" / "impure.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Fixture."""\nimport socket\n')
    proc = run_cli(str(bad), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "SIR001"
    assert payload["findings"][0]["symbol"] == "import:socket"


def test_syntax_error_exits_two(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    proc = run_cli(str(bad))
    assert proc.returncode == 2
    assert "parse error" in proc.stdout


def test_list_rules_names_all_eleven():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in (
        "SIR001", "SIR002", "SIR003", "SIR004", "SIR005", "SIR006",
        "SIR007", "SIR008", "SIR009", "SIR010", "SIR011",
    ):
        assert rule_id in proc.stdout


def test_text_format_reports_location_and_symbol(tmp_path):
    bad = tmp_path / "src" / "repro" / "tokens" / "impure.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Fixture."""\nimport random\n')
    proc = run_cli(str(bad))
    assert proc.returncode == 1
    assert "SIR001" in proc.stdout
    assert "import:random" in proc.stdout
    assert f"{bad}:2:" in proc.stdout


def test_sarif_output_is_valid_2_1_0(tmp_path):
    bad = tmp_path / "src" / "repro" / "dataplane" / "impure.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Fixture."""\nimport socket\n')
    proc = run_cli(str(bad), "--format", "sarif")
    assert proc.returncode == 1
    sarif = json.loads(proc.stdout)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "sirlint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"SIR001", "SIR009", "SIR010", "SIR011", "SIR000"} <= rule_ids
    results = run["results"]
    assert results and results[0]["ruleId"] == "SIR001"
    assert results[0]["level"] == "error"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 2
    # ruleIndex must point back into the driver's rule array.
    index = results[0]["ruleIndex"]
    assert run["tool"]["driver"]["rules"][index]["id"] == "SIR001"
    assert "sirlintKey/v1" in results[0]["partialFingerprints"]


def test_sarif_clean_run_has_empty_results():
    proc = run_cli("src", "--format", "sarif")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    sarif = json.loads(proc.stdout)
    assert sarif["runs"][0]["results"] == []


def _git(repo, *args):
    subprocess.run(
        [
            "git", "-c", "user.name=fixture", "-c",
            "user.email=fixture@example.invalid", *args,
        ],
        cwd=repo, check=True, capture_output=True,
    )


def _seed_repo(tmp_path):
    repo = tmp_path / "repo"
    clean = repo / "src" / "repro" / "dataplane" / "mod.py"
    clean.parent.mkdir(parents=True)
    clean.write_text('"""Fixture."""\nVALUE = 1\n')
    _git(repo, "init", "-q")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "seed")
    return repo, clean


def test_changed_mode_lints_only_the_diff(tmp_path):
    repo, clean = _seed_repo(tmp_path)
    untouched = clean.with_name("other.py")
    untouched.write_text('"""Fixture."""\nOTHER = 2\n')
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "more")
    clean.write_text('"""Fixture."""\nimport socket\n')
    proc = run_cli("src", "--changed", "--format", "json", cwd=repo)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["checked_files"] == 1  # other.py was not analyzed
    assert payload["findings"][0]["rule"] == "SIR001"


def test_changed_mode_with_no_diff_is_clean(tmp_path):
    repo, _clean = _seed_repo(tmp_path)
    proc = run_cli("src", "--changed", "--format", "json", cwd=repo)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["checked_files"] == 0


def test_changed_mode_picks_up_untracked_files(tmp_path):
    repo, clean = _seed_repo(tmp_path)
    fresh = clean.with_name("fresh.py")
    fresh.write_text('"""Fixture."""\nimport random\n')
    proc = run_cli("src", "--changed", "--format", "json", cwd=repo)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["findings"][0]["path"].endswith("fresh.py")


def test_changed_mode_outside_git_exits_two(tmp_path):
    lone = tmp_path / "src" / "repro" / "dataplane"
    lone.mkdir(parents=True)
    (lone / "mod.py").write_text('"""Fixture."""\n')
    proc = run_cli("src", "--changed", cwd=tmp_path)
    assert proc.returncode == 2
    assert "--changed" in proc.stderr


def test_changed_mode_one_file_diff_is_subsecond(tmp_path):
    """The pre-push path must feel instant: < 1 s on a one-file diff."""
    repo, clean = _seed_repo(tmp_path)
    clean.write_text('"""Fixture."""\nVALUE = 3\n')
    started = time.monotonic()
    proc = run_cli("src", "--changed", "--format", "json", cwd=repo)
    elapsed = time.monotonic() - started
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert elapsed < 1.0, f"--changed took {elapsed:.2f}s (budget 1s)"


def test_full_src_run_is_fast():
    """The whole-repo lint must stay interactive: < 10 s wall clock."""
    started = time.monotonic()
    proc = run_cli("src", "--format", "json")
    elapsed = time.monotonic() - started
    assert proc.returncode == 0
    assert elapsed < 10.0, f"sirlint src took {elapsed:.1f}s (budget 10s)"
    payload = json.loads(proc.stdout)
    assert payload["elapsed_seconds"] < 10.0
