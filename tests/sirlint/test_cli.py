"""CLI contract: exit codes, JSON shape, rule listing, speed budget."""

import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "tools"))
    return subprocess.run(
        [sys.executable, "-m", "sirlint", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


def test_clean_tree_exits_zero_with_json():
    proc = run_cli("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["checked_files"] > 50


def test_violation_exits_one(tmp_path):
    bad = tmp_path / "src" / "repro" / "dataplane" / "impure.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Fixture."""\nimport socket\n')
    proc = run_cli(str(bad), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "SIR001"
    assert payload["findings"][0]["symbol"] == "import:socket"


def test_syntax_error_exits_two(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    proc = run_cli(str(bad))
    assert proc.returncode == 2
    assert "parse error" in proc.stdout


def test_list_rules_names_all_seven():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in (
        "SIR001", "SIR002", "SIR003", "SIR004", "SIR005", "SIR006",
        "SIR007",
    ):
        assert rule_id in proc.stdout


def test_text_format_reports_location_and_symbol(tmp_path):
    bad = tmp_path / "src" / "repro" / "tokens" / "impure.py"
    bad.parent.mkdir(parents=True)
    bad.write_text('"""Fixture."""\nimport random\n')
    proc = run_cli(str(bad))
    assert proc.returncode == 1
    assert "SIR001" in proc.stdout
    assert "import:random" in proc.stdout
    assert f"{bad}:2:" in proc.stdout


def test_full_src_run_is_fast():
    """The whole-repo lint must stay interactive: < 10 s wall clock."""
    started = time.monotonic()
    proc = run_cli("src", "--format", "json")
    elapsed = time.monotonic() - started
    assert proc.returncode == 0
    assert elapsed < 10.0, f"sirlint src took {elapsed:.1f}s (budget 10s)"
    payload = json.loads(proc.stdout)
    assert payload["elapsed_seconds"] < 10.0
