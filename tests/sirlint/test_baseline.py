"""Baseline semantics: justified-only entries, staleness, minimality."""

import os

import pytest

from sirlint.baseline import BaselineError, apply_baseline, parse_baseline
from sirlint.engine import run
from sirlint.model import Finding

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "sirlint", "baseline.txt")


def finding(rule="SIR004", path="src/repro/x.py", symbol="metric-name:bad"):
    return Finding(rule=rule, path=path, line=1, col=0,
                   message="m", symbol=symbol)


def test_parse_requires_justification():
    with pytest.raises(BaselineError):
        parse_baseline("SIR004 src/repro/x.py metric-name:bad\n")


def test_parse_rejects_malformed_key():
    with pytest.raises(BaselineError):
        parse_baseline("SIR004 src/repro/x.py  # missing the symbol\n")


def test_parse_skips_comments_and_blanks():
    assert parse_baseline("# header\n\n   \n# more\n") == []


def test_apply_splits_matched_and_stale():
    entries = parse_baseline(
        "SIR004 src/repro/x.py metric-name:bad  # legacy dashboards\n"
        "SIR006 src/repro/y.py adhoc-drop:gone  # fixed long ago\n"
    )
    remaining, stale = apply_baseline([finding()], entries)
    assert remaining == []
    assert [e.key for e in stale] == ["SIR006 src/repro/y.py adhoc-drop:gone"]


def test_unbaselined_findings_remain():
    entries = parse_baseline(
        "SIR004 src/repro/x.py metric-name:other  # different symbol\n"
    )
    remaining, stale = apply_baseline([finding()], entries)
    assert len(remaining) == 1
    assert len(stale) == 1


def test_committed_baseline_is_minimal_and_current():
    """Every committed entry must match a real finding (no stale fat),
    and src/ must be clean once the baseline is applied."""
    with open(BASELINE_PATH) as handle:
        baseline_text = handle.read()
    # Parses (every entry justified) even when empty.
    parse_baseline(baseline_text)
    result = run(
        [os.path.join(REPO_ROOT, "src")], baseline_text=baseline_text
    )
    assert result.parse_errors == []
    assert result.stale_baseline == [], (
        "stale baseline entries: "
        f"{[e.key for e in result.stale_baseline]}"
    )
    assert result.findings == [], (
        "unbaselined findings: "
        f"{[f.key for f in result.findings]}"
    )
