"""Fixtures for the dataflow rules (SIR009/SIR010/SIR011) and the
suppression audit (SIR000).

Each rule gets the full triple: a positive snippet it must flag, a
negative it must stay silent on, and a suppressed variant.  The
SIR009 use-after-release fixture deliberately mirrors the runtime
contract pinned by ``tests/viper/test_ring_views.py`` (a released
slot's memory is the next datagram's) so the static rule and the
differential fuzz guard the same invariant from both sides.
"""

import textwrap

from sirlint.engine import analyze_source


def analyze(source, module_name, path="src/repro/live/fixture.py"):
    return analyze_source(textwrap.dedent(source), module_name, path=path)


def rules_fired(findings):
    return sorted({f.rule for f in findings})


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# -- SIR009: ring-slot lifetime ----------------------------------------------


def test_sir009_fires_on_slot_leak_on_early_return():
    findings = analyze(
        """
        class Pump:
            def dispatch(self, wire):
                slot = self.ring.acquire()
                if not wire:
                    return None
                slot.write(wire)
                slot.release()
                return True
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR009"]
    leak = by_rule(findings, "SIR009")[0]
    assert "leak" in leak.symbol
    assert "some path" in leak.message


def test_sir009_fires_on_leak_on_exception_path():
    findings = analyze(
        """
        class Pump:
            def dispatch(self, wire):
                slot = self.ring.acquire()
                try:
                    slot.write(wire)
                except ValueError:
                    self.decode_errors += 1
                    return None
                slot.release()
                return True
        """,
        "repro.live.fixture",
    )
    assert "SIR009" in rules_fired(findings)
    assert any("leak" in f.symbol for f in by_rule(findings, "SIR009"))


def test_sir009_fires_on_use_after_release():
    """Static twin of test_ring_views' released-views-die contract."""
    findings = analyze(
        """
        class Pump:
            def peek(self):
                slot = self.ring.acquire()
                header = slot.view.tobytes()
                slot.release()
                return slot.view
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR009"]
    assert any(
        "use-after-release" in f.symbol for f in by_rule(findings, "SIR009")
    )


def test_sir009_fires_on_double_release():
    findings = analyze(
        """
        class Pump:
            def twice(self):
                slot = self.ring.acquire()
                try:
                    slot.release()
                finally:
                    slot.release()
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR009"]
    assert any(
        "double-release" in f.symbol for f in by_rule(findings, "SIR009")
    )


def test_sir009_fires_on_raw_view_escape_onto_self():
    findings = analyze(
        """
        class Pump:
            def stash(self, view: PacketView):
                self.last_view = view
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR009"]
    assert any("escape" in f.symbol for f in by_rule(findings, "SIR009"))


def test_sir009_silent_on_finally_release_and_tobytes_copy():
    findings = analyze(
        """
        class Pump:
            def dispatch(self, wire, view: PacketView):
                slot = self.ring.acquire()
                try:
                    if not wire:
                        return None
                    self.last_header = view.tobytes()
                    return len(wire)
                finally:
                    slot.release()
                    view.release()
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir009_silent_on_ownership_transfer_to_send_view():
    findings = analyze(
        """
        class Pump:
            def fire(self, port):
                view = self.ring.acquire()
                self.link.send_view(view, port)
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir009_inline_suppression():
    findings = analyze(
        """
        class Pump:
            def leaky(self):
                slot = self.ring.acquire()  # sirlint: disable=SIR009 -- fixture: slot pinned for the demo
                return slot.view
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


# -- SIR010: await-interleaving races ----------------------------------------


def test_sir010_fires_on_check_then_act_across_await():
    findings = analyze(
        """
        class Client:
            async def connect(self):
                if self._connected:
                    return
                await self._open()
                self._connected = True
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR010"]
    finding = by_rule(findings, "SIR010")[0]
    assert finding.symbol.endswith("connect._connected")
    assert "stale" in finding.message


def test_sir010_fires_on_rmw_spanning_await():
    findings = analyze(
        """
        class Client:
            async def bump(self):
                self.total += await self._cost()
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR010"]
    assert "spans the await" in by_rule(findings, "SIR010")[0].message


def test_sir010_silent_on_counter_bump_and_cache_fill():
    findings = analyze(
        """
        class Client:
            async def ping(self, key):
                reply = await self._send(key)
                self.requests += 1
                self.cache[key] = reply
                self.last_reply = reply
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir010_silent_outside_shared_state_packages():
    findings = analyze(
        """
        class Client:
            async def connect(self):
                if self._connected:
                    return
                await self._open()
                self._connected = True
        """,
        "repro.tools.fixture",
        path="src/repro/tools/fixture.py",
    )
    assert "SIR010" not in rules_fired(findings)


def test_sir010_interleave_safe_marker_with_reason():
    findings = analyze(
        """
        class Overlay:
            async def start(self):  # sirlint: interleave-safe -- fixture: single-owner boot path
                if self._started:
                    return
                await self._boot()
                self._started = True
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir010_bare_interleave_safe_marker_is_itself_a_finding():
    findings = analyze(
        """
        class Overlay:
            async def start(self):  # sirlint: interleave-safe
                await self._boot()
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR010"]
    assert by_rule(findings, "SIR010")[0].symbol.endswith(":marker")


# -- SIR011: exception-safe effects ------------------------------------------


def test_sir011_fires_on_swallowed_failure():
    findings = analyze(
        """
        class Server:
            def handle(self, line):
                try:
                    self.table = parse(line)
                except ValueError:
                    pass
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR011"]
    assert "ValueError" in by_rule(findings, "SIR011")[0].symbol


def test_sir011_silent_when_handler_bumps_a_counter():
    findings = analyze(
        """
        class Server:
            def handle(self, line):
                try:
                    self.table = parse(line)
                except ValueError:
                    self.decode_errors += 1
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir011_silent_when_handler_reraises_or_uses_the_value():
    findings = analyze(
        """
        class Server:
            def handle(self, line, future):
                try:
                    self.table = parse(line)
                except KeyError as exc:
                    future.set_exception(exc)
                except ValueError:
                    raise ProtocolViolation(line)
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir011_silent_on_sentinel_return():
    findings = analyze(
        """
        class Server:
            def owner_or_none(self, key):
                try:
                    return self.table[key]
                except KeyError:
                    return None
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir011_fires_when_only_one_branch_of_handler_records():
    findings = analyze(
        """
        class Server:
            def handle(self, line, strict):
                try:
                    self.table = parse(line)
                except ValueError:
                    if strict:
                        self.decode_errors += 1
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR011"]


def test_sir011_exempts_flow_control_exceptions():
    findings = analyze(
        """
        class Server:
            def pump(self):
                try:
                    self.step()
                except asyncio.CancelledError:
                    pass
                except BlockingIOError:
                    pass
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


def test_sir011_inline_suppression():
    findings = analyze(
        """
        class Server:
            def handle(self, line):
                try:
                    self.table = parse(line)
                except ValueError:  # sirlint: disable=SIR011 -- fixture: probe traffic is expendable
                    pass
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == []


# -- SIR000: suppression audit -----------------------------------------------


def test_suppression_without_reason_is_not_honoured_and_audited():
    findings = analyze(
        """
        import socket  # sirlint: disable=SIR001
        """,
        "repro.dataplane.fixture",
        path="src/repro/dataplane/fixture.py",
    )
    assert rules_fired(findings) == ["SIR000", "SIR001"]
    audit = by_rule(findings, "SIR000")[0]
    assert audit.symbol.startswith("suppression-reason:")


def test_suppression_of_unknown_rule_is_audited():
    findings = analyze(
        """
        VALUE = 1  # sirlint: disable=SIR999 -- fixture: no such rule
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR000"]
    assert "unknown-suppression" in by_rule(findings, "SIR000")[0].symbol


def test_unused_suppression_is_audited():
    findings = analyze(
        """
        VALUE = 1  # sirlint: disable=SIR011 -- fixture: nothing here fires
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR000"]
    assert "unused-suppression" in by_rule(findings, "SIR000")[0].symbol
