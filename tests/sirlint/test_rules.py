"""Per-rule fixtures: each rule must fire on its negative snippet,
stay silent on the positive one, and honour inline suppression."""

import textwrap

from sirlint.engine import analyze_source


def analyze(source, module_name, path="src/repro/fixture.py", extra=()):
    return analyze_source(
        textwrap.dedent(source), module_name, path=path, extra_modules=extra
    )


def rules_fired(findings):
    return sorted({f.rule for f in findings})


# -- SIR001: sans-IO purity --------------------------------------------------


def test_sir001_fires_on_effectful_import_in_pure_module():
    findings = analyze(
        """
        import time

        def now():
            return time.monotonic()
        """,
        "repro.dataplane.fixture",
    )
    assert rules_fired(findings) == ["SIR001"]
    assert any("time" in f.message for f in findings)


def test_sir001_fires_on_open_call_in_pure_module():
    findings = analyze(
        """
        def load(path):
            with open(path) as handle:
                return handle.read()
        """,
        "repro.viper.fixture",
    )
    assert rules_fired(findings) == ["SIR001"]


def test_sir001_fires_on_repo_import_outside_pure_closure():
    findings = analyze(
        """
        from repro.live.router import LiveRouter
        """,
        "repro.tokens.fixture",
    )
    assert rules_fired(findings) == ["SIR001"]
    assert any("closure" in f.message for f in findings)


def test_sir001_silent_on_pure_module():
    findings = analyze(
        """
        import math
        from repro.viper.wire import HeaderSegment
        from repro.net.addresses import MacAddress

        def pure(x):
            return math.sqrt(x)
        """,
        "repro.dataplane.fixture",
    )
    assert findings == []


def test_sir001_silent_outside_pure_packages():
    findings = analyze(
        """
        import time

        def now():
            return time.monotonic()
        """,
        "repro.live.fixture",
    )
    assert findings == []


def test_sir001_inline_suppression():
    findings = analyze(
        """
        import time  # sirlint: disable=SIR001 -- fixture: vendored timing shim
        """,
        "repro.dataplane.fixture",
    )
    assert findings == []


# -- SIR002: no module-global mutable state ----------------------------------


def test_sir002_fires_on_module_level_mutable_container():
    findings = analyze(
        """
        CACHE = {}

        def remember(k, v):
            CACHE[k] = v
        """,
        "repro.core.fixture",
    )
    assert rules_fired(findings) == ["SIR002"]
    symbols = {f.symbol for f in findings}
    assert "global:CACHE" in symbols
    assert "mutate:CACHE" in symbols


def test_sir002_fires_on_global_statement_and_augassign():
    findings = analyze(
        """
        COUNT = 0
        COUNT += 1

        def bump():
            global COUNT
            COUNT = COUNT + 1
        """,
        "repro.core.fixture",
    )
    symbols = {f.symbol for f in findings}
    assert "augassign:COUNT" in symbols
    assert "global-stmt:COUNT" in symbols


def test_sir002_silent_on_immutable_constants():
    findings = analyze(
        """
        NAMES = ("a", "b")
        ALLOWED = frozenset({"x", "y"})
        MAGIC = b"VL"
        __all__ = ["NAMES", "ALLOWED"]
        """,
        "repro.core.fixture",
    )
    assert findings == []


def test_sir002_inline_suppression():
    findings = analyze(
        """
        CACHE = {}  # sirlint: disable=SIR002 -- fixture: audited process-wide cache
        """,
        "repro.core.fixture",
    )
    assert findings == []


# -- SIR003: async hygiene ---------------------------------------------------


def test_sir003_fires_on_blocking_call_in_coroutine():
    findings = analyze(
        """
        import time

        async def pump():
            time.sleep(0.1)
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR003"]
    assert any("time.sleep" in f.message for f in findings)


def test_sir003_fires_on_discarded_repo_coroutine():
    findings = analyze(
        """
        async def open_endpoint():
            return 1

        def boot():
            open_endpoint()
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR003"]
    assert any("never" in f.message for f in findings)


def test_sir003_fires_on_discarded_asyncio_coroutine():
    findings = analyze(
        """
        import asyncio

        def nap():
            asyncio.sleep(1)
        """,
        "repro.live.fixture",
    )
    assert rules_fired(findings) == ["SIR003"]


def test_sir003_silent_on_awaited_and_scheduled_calls():
    findings = analyze(
        """
        import asyncio

        async def open_endpoint():
            return 1

        async def boot():
            await open_endpoint()
            asyncio.create_task(open_endpoint())
        """,
        "repro.live.fixture",
    )
    assert findings == []


def test_sir003_ambiguous_method_name_not_flagged():
    # `close` is async in one class, sync in another: never flagged.
    findings = analyze(
        """
        class A:
            async def close(self):
                pass

        class B:
            def close(self):
                pass

        def shutdown(thing):
            thing.close()
        """,
        "repro.live.fixture",
    )
    assert findings == []


def test_sir003_inline_suppression():
    findings = analyze(
        """
        import time

        async def pump():
            time.sleep(0.1)  # sirlint: disable=SIR003 -- fixture: micro-sleep below budget
        """,
        "repro.live.fixture",
    )
    assert findings == []


# -- SIR004: metrics discipline ----------------------------------------------


def test_sir004_fires_on_dotted_metric_name():
    findings = analyze(
        """
        from repro.sim.monitor import Counter

        class Stats:
            def __init__(self):
                self.rtt = Counter("route.switches")
        """,
        "repro.transport.fixture",
    )
    assert rules_fired(findings) == ["SIR004"]


def test_sir004_allows_instance_prefixed_fstring():
    findings = analyze(
        """
        from repro.sim.monitor import Counter

        class Stats:
            def __init__(self, name):
                self.drops = Counter(f"{name}.drops_total")
        """,
        "repro.transport.fixture",
    )
    assert findings == []


def test_sir004_fires_on_cross_file_kind_conflict():
    findings = analyze(
        """
        from repro.sim.monitor import Counter
        rtt = Counter("rtt")
        """,
        "repro.transport.fixture",
        extra=[(
            "from repro.sim.monitor import Histogram\nrtt = Histogram('rtt')\n",
            "repro.workloads.fixture",
            "src/repro/workloads/fixture.py",
        )],
    )
    assert any(f.symbol == "metric-kind:rtt" for f in findings)


def test_sir004_fires_on_label_set_conflict():
    findings = analyze(
        """
        def setup(registry):
            registry.counter("forwarded", node="r1")
            registry.counter("forwarded")
        """,
        "repro.obs.fixture",
    )
    assert any(f.symbol == "metric-labels:forwarded" for f in findings)


def test_sir004_inline_suppression():
    findings = analyze(
        """
        from repro.sim.monitor import Counter
        rtt = Counter("route.switches")  # sirlint: disable=SIR004 -- fixture: legacy metric name
        """,
        "repro.transport.fixture",
    )
    assert findings == []


# -- SIR005: wire-layout consistency -----------------------------------------


def test_sir005_fires_on_non_power_of_two_flag():
    findings = analyze(
        """
        FLAG_BAD = 3
        """,
        "repro.viper.flags",
        path="src/repro/viper/flags.py",
    )
    assert any(f.symbol == "flag-bit:FLAG_BAD" for f in findings)


def test_sir005_fires_on_overlapping_flags():
    findings = analyze(
        """
        FLAG_A = 4
        FLAG_B = 4
        """,
        "repro.viper.flags",
        path="src/repro/viper/flags.py",
    )
    assert any(f.symbol == "flag-overlap:FLAG_A:FLAG_B" for f in findings)


def test_sir005_fires_on_magic_to_bytes_width():
    findings = analyze(
        """
        def encode(seq):
            return seq.to_bytes(4, "big")
        """,
        "repro.live.frames",
        path="src/repro/live/frames.py",
    )
    assert any(f.symbol.startswith("magic-width:4") for f in findings)


def test_sir005_fires_on_cross_file_constant_disagreement():
    findings = analyze(
        """
        HEADER_BYTES = 4
        """,
        "repro.viper.wire",
        path="src/repro/viper/wire.py",
        extra=[(
            "HEADER_BYTES = 6\n",
            "repro.live.frames",
            "src/repro/live/frames.py",
        )],
    )
    assert any(f.symbol == "const-conflict:HEADER_BYTES" for f in findings)


def test_sir005_silent_on_disciplined_layout():
    findings = analyze(
        """
        FLAG_A = 1
        FLAG_B = 2
        SEQ_BYTES = 4

        def encode(seq):
            return seq.to_bytes(SEQ_BYTES, "big")
        """,
        "repro.live.frames",
        path="src/repro/live/frames.py",
    )
    assert findings == []


def test_sir005_not_applied_outside_wire_modules():
    findings = analyze(
        """
        def encode(seq):
            return seq.to_bytes(4, "big")
        """,
        "repro.transport.fixture",
    )
    assert findings == []


def test_sir005_inline_suppression():
    findings = analyze(
        """
        def encode(seq):
            return seq.to_bytes(4, "big")  # sirlint: disable=SIR005 -- fixture: layout change is deliberate
        """,
        "repro.live.frames",
        path="src/repro/live/frames.py",
    )
    assert findings == []


# -- SIR006: drop discipline -------------------------------------------------


def test_sir006_fires_on_adhoc_drop_call():
    findings = analyze(
        """
        class Router:
            def on_frame(self, frame):
                self.metrics.drop("undecodable")
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert rules_fired(findings) == ["SIR006"]


def test_sir006_fires_on_direct_counter_bump():
    findings = analyze(
        """
        class Router:
            def route(self, packet):
                self.stats.dropped_no_port.add(1)
        """,
        "repro.core.router",
        path="src/repro/core/router.py",
    )
    assert any("dropped_no_port" in f.message for f in findings)


def test_sir006_allows_effect_sink_adapters():
    findings = analyze(
        """
        class _SimEffectSink(EffectSink):
            def bump(self, name, n=1):
                self.stats.dropped_no_port.add(n)

            def trace_drop(self, reason):
                self.tracer.drop(reason)
        """,
        "repro.core.router",
        path="src/repro/core/router.py",
    )
    assert findings == []


def test_sir006_not_applied_outside_router_modules():
    findings = analyze(
        """
        class Monitor:
            def observe(self):
                self.metrics.drop("sample")
        """,
        "repro.sim.monitor",
        path="src/repro/sim/monitor.py",
    )
    assert findings == []


def test_sir006_inline_suppression():
    findings = analyze(
        """
        class Router:
            def on_frame(self, frame):
                self.metrics.drop("undecodable")  # sirlint: disable=SIR006 -- fixture: sanctioned second applicator
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert findings == []


# -- SIR007: flight-recorder event discipline --------------------------------


def test_sir007_fires_on_dynamic_event_name():
    findings = analyze(
        """
        class Router:
            def restart(self, kind):
                self.recorder.record(kind, node=self.name)
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert rules_fired(findings) == ["SIR007"]
    assert any("static string" in f.message for f in findings)


def test_sir007_fires_on_interpolated_event_name():
    findings = analyze(
        """
        class Router:
            def restart(self):
                self.recorder.record(f"restarted_{self.name}")
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert rules_fired(findings) == ["SIR007"]


def test_sir007_fires_on_non_snake_case_event_name():
    findings = analyze(
        """
        class Router:
            def restart(self):
                self.recorder.record("RouterRestarted", node=self.name)
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert rules_fired(findings) == ["SIR007"]
    assert any("snake_case" in f.message for f in findings)
    assert any(f.symbol == "record-event:RouterRestarted" for f in findings)


def test_sir007_fires_on_ring_access_and_direct_event():
    findings = analyze(
        """
        from repro.obs.recorder import RecorderEvent

        class Sneaky:
            def inject(self, recorder):
                recorder._ring.append(
                    RecorderEvent(0, 0.0, "x", "forged", {})
                )
        """,
        "repro.chaos.fixture",
        path="src/repro/chaos/fixture.py",
    )
    symbols = {f.symbol for f in findings if f.rule == "SIR007"}
    assert "ring-access:_ring" in symbols
    assert "direct-event:RecorderEvent" in symbols


def test_sir007_silent_on_static_snake_case_names():
    findings = analyze(
        """
        class Router:
            def restart(self):
                if self.recorder.enabled:
                    self.recorder.record("router_restarted", node=self.name)

        def drive(injector, now):
            injector.record("shard_promoted", now, shard="shard-0")
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert findings == []


def test_sir007_exempts_delegating_record_wrappers():
    findings = analyze(
        """
        class FaultInjector:
            def record(self, kind, at, **fields):
                if self.recorder.enabled:
                    self.recorder.record(kind, node="chaos", t=at, **fields)
        """,
        "repro.chaos.seam",
        path="src/repro/chaos/seam.py",
    )
    assert findings == []


def test_sir007_ring_access_allowed_inside_recorder_module():
    findings = analyze(
        """
        class FlightRecorder:
            def events(self):
                return list(self._ring)
        """,
        "repro.obs.recorder",
        path="src/repro/obs/recorder.py",
    )
    assert findings == []


def test_sir007_inline_suppression():
    findings = analyze(
        """
        class Router:
            def restart(self, kind):
                self.recorder.record(kind)  # sirlint: disable=SIR007 -- fixture: duplicate event is intended
        """,
        "repro.live.router",
        path="src/repro/live/router.py",
    )
    assert findings == []


# -- SIR008: hot-path allocation discipline ----------------------------------


def test_sir008_fires_on_bytes_construction_in_hot_function():
    findings = analyze(
        """
        def parse(buffer, offset):  # sirlint: hot
            return bytes(buffer[offset:offset + 4])
        """,
        "repro.viper.fixture",
    )
    assert "SIR008" in rules_fired(findings)
    assert any("bytes()" in f.message for f in findings)


def test_sir008_fires_on_bytes_concat_and_container_literals():
    findings = analyze(
        """
        def advance(self, span):  # sirlint: hot
            header = span + b"tail"
            slots = []
            meta = {"a": 1}
            return header, slots, meta
        """,
        "repro.dataplane.fixture",
    )
    symbols = {f.symbol for f in findings if f.rule == "SIR008"}
    assert "advance:bytes-concat" in symbols
    assert "advance:list-literal" in symbols
    assert "advance:dict-literal" in symbols


def test_sir008_fires_on_per_packet_closure():
    findings = analyze(
        """
        def decide(self, hop):  # sirlint: hot
            return self.lookup(lambda: hop.segment.portinfo)
        """,
        "repro.dataplane.fixture",
    )
    assert any(
        f.rule == "SIR008" and "closure" in f.message for f in findings
    )


def test_sir008_silent_on_unmarked_slow_path_and_view_idioms():
    findings = analyze(
        """
        def materialise(view):
            return bytes(view.mem)

        def parse(buffer, offset):  # sirlint: hot
            end = offset + 4
            return buffer[offset:end], end
        """,
        "repro.viper.fixture",
    )
    assert "SIR008" not in rules_fired(findings)


def test_sir008_out_of_scope_packages_ignored():
    findings = analyze(
        """
        def drain(self):  # sirlint: hot
            return [bytes(b"x")]
        """,
        "repro.live.fixture",
        path="src/repro/live/fixture.py",
    )
    assert "SIR008" not in rules_fired(findings)


def test_sir008_required_marker_cannot_be_dropped():
    findings = analyze(
        """
        def flow_key(token, in_port, port, priority, rpf, portinfo):
            return (token, in_port, port, priority, rpf, portinfo)

        def lookup(self, key, now_ms):  # sirlint: hot
            return self._entries.get(key)
        """,
        "repro.dataplane.flowcache",
        path="src/repro/dataplane/flowcache.py",
    )
    assert [f.symbol for f in findings if f.rule == "SIR008"] == [
        "hot-marker:flow_key"
    ]


def test_sir008_inline_suppression():
    findings = analyze(
        """
        def parse(buffer):  # sirlint: hot
            return bytes(buffer)  # sirlint: disable=SIR008 -- fixture: cold-path copy is fine
        """,
        "repro.viper.fixture",
    )
    assert "SIR008" not in rules_fired(findings)
