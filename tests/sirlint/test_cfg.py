"""CFG builder contract on adversarial shapes.

These tests assert :meth:`CFG.line_edges` sets *directly* — not rule
outcomes — so a regression in edge construction is caught even when
every rule happens to stay green.  Labels: plain line numbers for
statement/branch nodes, ``"entry"``/``"exit"``/``"raise"`` for the
synthetic nodes, and ``"<line>:bind"`` / ``"<line>:handler"`` /
``"<line>:aexit"`` for the pseudo-nodes.
"""

import ast
import sys
import textwrap

import pytest

from sirlint.dataflow import build_cfg


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def node_by_label(cfg, label):
    for nid in cfg.nodes:
        if cfg.label(nid) == label:
            return cfg.nodes[nid]
    raise AssertionError(f"no node labelled {label!r}")


# -- try/finally -------------------------------------------------------------


def test_try_finally_return_in_both_arms_overrides():
    """The ``finally`` return is the only path to the exit.

    Classic precision test for finally-duplication: ``return a`` must
    flow *into* the finally copy (on both its normal and its
    exception continuation), never straight to the exit.
    """
    cfg = cfg_of(
        """
        def f(a):
            try:
                return a
            finally:
                return 2
        """
    )
    assert cfg.line_edges() == {
        ("entry", 4, "normal"),
        (4, 6, "normal"),   # return a -> finally copy (return path)
        (4, 6, "exc"),      # evaluating `a` raised -> finally copy
        (6, "exit", "normal"),
    }


def test_try_finally_runs_on_normal_exception_and_return_paths():
    cfg = cfg_of(
        """
        def f(a):
            try:
                if a:
                    return a
                touch(a)
            finally:
                cleanup()
        """
    )
    edges = cfg.line_edges()
    # Independent copies of the finally body, one per continuation:
    # return (5->8), implicit-raise (exc edges into 8), and normal
    # fall-through (6->8).
    assert (5, 8, "normal") in edges          # return a -> finally
    assert (5, 8, "exc") in edges             # `a` raised -> finally
    assert (6, 8, "exc") in edges             # touch() raised -> finally
    assert (6, 8, "normal") in edges          # fall-through -> finally
    assert (8, "exit", "normal") in edges     # return-path copy
    assert (8, "raise", "exc") in edges       # exception-path copy
    # No statement inside the try reaches exit/raise without the finally.
    assert not any(
        src in (5, 6) and dst in ("exit", "raise")
        for src, dst, _kind in edges
    )


def test_try_except_wires_exception_edges_to_handler():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                raise ValueError(x)
            try:
                g(x)
            except KeyError:
                h()
            return x
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 4, "normal"),                 # if-true -> raise stmt
        (4, "raise", "exc"),              # explicit raise, no handler
        (3, 6, "normal"),                 # if-false -> try body
        (6, "7:handler", "exc"),          # g(x) raised -> except entry
        ("7:handler", 8, "normal"),
        (6, 9, "normal"),
        (8, 9, "normal"),
        (9, "exit", "normal"),
    }


# -- async with --------------------------------------------------------------


def test_nested_async_with_emits_awaiting_aexit_nodes():
    cfg = cfg_of(
        """
        async def f(a, b):
            async with a:
                async with b:
                    await g()
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 4, "normal"),
        (4, 5, "normal"),
        (5, "4:aexit", "normal"),         # inner __aexit__ first
        ("4:aexit", "3:aexit", "normal"),  # then the outer one
        ("3:aexit", "exit", "normal"),
    }
    # Every point of this function can suspend the coroutine.
    for label in (3, 4, 5, "4:aexit", "3:aexit"):
        assert node_by_label(cfg, label).is_await, label


# -- nested scopes stay opaque ----------------------------------------------


def test_comprehension_and_nested_def_are_single_nodes():
    cfg = cfg_of(
        """
        def f(items):
            out = [x * 2 for x in items]
            def helper():
                return [y for y in out]
            return helper
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 4, "normal"),
        (4, 6, "normal"),
        (6, "exit", "normal"),
    }
    # entry/exit/raise + the three statements: the comprehension and
    # the nested function body contribute no nodes of their own.
    assert len(cfg.nodes) == 6
    assert not node_by_label(cfg, 3).is_await


def test_await_inside_nested_def_does_not_mark_this_frame():
    cfg = cfg_of(
        """
        async def f(q):
            async def inner():
                await q.get()
            x = await q.get()
            return inner, x
        """
    )
    assert not node_by_label(cfg, 3).is_await   # the nested def stmt
    assert node_by_label(cfg, 5).is_await       # the real await


# -- match statements --------------------------------------------------------


@pytest.mark.skipif(
    sys.version_info < (3, 10), reason="match statements need 3.10+"
)
def test_match_with_wildcard_has_no_fallthrough_edge():
    cfg = cfg_of(
        """
        def f(x):
            match x:
                case 1:
                    y = 1
                case _:
                    y = 2
            return y
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 5, "normal"),
        (3, 7, "normal"),
        (5, 8, "normal"),
        (7, 8, "normal"),
        (8, "exit", "normal"),
    }


@pytest.mark.skipif(
    sys.version_info < (3, 10), reason="match statements need 3.10+"
)
def test_match_without_wildcard_keeps_fallthrough_edge():
    cfg = cfg_of(
        """
        def f(x):
            match x:
                case 1:
                    y = 1
            return 0
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 5, "normal"),
        (3, 6, "normal"),                 # no case matched
        (5, 6, "normal"),
        (6, "exit", "normal"),
    }


# -- loops -------------------------------------------------------------------


def test_while_true_has_no_exhausted_edge():
    cfg = cfg_of(
        """
        def f(q):
            while True:
                v = q.get()
                if v:
                    break
            return v
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 4, "normal"),
        (4, 5, "normal"),
        (5, 6, "normal"),                 # if-true -> break
        (5, 3, "normal"),                 # if-false -> loop back
        (6, 7, "normal"),                 # break -> after the loop
        (7, "exit", "normal"),
    }
    # Crucially absent: (3, 7) — only `break` leaves a `while True`.


def test_for_loop_bind_continue_and_else():
    cfg = cfg_of(
        """
        def f(items):
            total = 0
            for x in items:
                if x < 0:
                    continue
                total += x
            else:
                total += 1
            return total
        """
    )
    assert cfg.line_edges() == {
        ("entry", 3, "normal"),
        (3, 4, "normal"),
        (4, "4:bind", "normal"),          # binding only on the body edge
        ("4:bind", 5, "normal"),
        (5, 6, "normal"),
        (6, 4, "normal"),                 # continue -> header
        (5, 7, "normal"),
        (7, 4, "normal"),                 # body end -> header
        (4, 9, "normal"),                 # exhausted -> else
        (9, 10, "normal"),
        (10, "exit", "normal"),
    }


def test_break_inside_try_finally_runs_finally_before_leaving_loop():
    cfg = cfg_of(
        """
        def f(items):
            for x in items:
                try:
                    break
                finally:
                    cleanup(x)
            return x
        """
    )
    edges = cfg.line_edges()
    assert (5, 7, "normal") in edges      # break -> finally copy
    assert (7, 8, "normal") in edges      # finally copy -> after loop
    # break must NOT jump straight past the finally.
    assert (5, 8, "normal") not in edges


# -- generators --------------------------------------------------------------


def test_generator_yield_is_an_ordinary_statement_node():
    cfg = cfg_of(
        """
        def gen(items):
            for x in items:
                yield x
            return None
        """
    )
    edges = cfg.line_edges()
    assert (3, "3:bind", "normal") in edges
    assert ("3:bind", 4, "normal") in edges
    assert (4, 3, "normal") in edges      # after the yield, loop again
    assert not node_by_label(cfg, 4).is_await
