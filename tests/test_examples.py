"""Every shipped example must run to completion and tell its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTATIONS = {
    "quickstart.py": ["no directory query", "route to milo", "ms"],
    "policy_routing.py": ["carrier ledgers", "forged"],
    "congestion_backpressure.py": ["soft state", "bottleneck"],
    "failure_rebinding.py": ["rebound", "transactions completed"],
    "realtime_video.py": ["playout", "preemptive"],
    "multicast_tree_agents.py": ["6/6", "exploded"],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    output = result.stdout.lower()
    for needle in EXPECTATIONS[script]:
        assert needle.lower() in output, (
            f"{script} output missing {needle!r}:\n{result.stdout}"
        )


def test_every_example_is_listed():
    scripts = {
        name for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py") and not name.startswith("_")
    }
    assert scripts == set(EXPECTATIONS), (
        "examples/ and the test expectations drifted apart"
    )
