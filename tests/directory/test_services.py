"""Unit tests for replicated-service (anycast) registration (§3)."""

import pytest

from repro.directory import RouteQuery
from repro.scenarios import build_sirpent_parallel
from repro.core.host import SirpentHost


def build_service_network():
    """src -- rA -(p1|p2)- rB -- dst, plus a second provider near rA."""
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=1e-3)
    near = SirpentHost(scenario.sim, "near",
                       control_plane=scenario.control_plane)
    scenario.topology.add_node(near)
    scenario.hosts["near"] = near
    scenario.topology.connect(near, scenario.routers["rA"])
    scenario.directory.register_host("near", "near.lab.edu")
    scenario.directory.register_service(
        "printer.lab.edu", ["dst", "near"]
    )
    return scenario


def test_service_routes_ranked_by_objective():
    scenario = build_service_network()
    routes = scenario.directory.query("src", RouteQuery(
        "printer.lab.edu", k=2,
    ))
    assert len(routes) == 2
    # The near instance (1 hop) ranks above the far one (3 hops).
    assert routes[0].hop_count < routes[1].hop_count
    assert routes[0].hop_count == 1


def test_k_truncates_instances():
    scenario = build_service_network()
    routes = scenario.directory.query("src", RouteQuery(
        "printer.lab.edu", k=1,
    ))
    assert len(routes) == 1
    assert routes[0].hop_count == 1


def test_service_survives_instance_unreachability():
    scenario = build_service_network()
    # Cut off the near instance; the far one still answers.
    scenario.topology.fail_link("near--rA")
    routes = scenario.directory.query("src", RouteQuery(
        "printer.lab.edu", k=2,
    ))
    assert len(routes) == 1
    assert routes[0].hop_count == 3


def test_delivery_to_the_chosen_instance():
    scenario = build_service_network()
    got = []
    scenario.hosts["near"].bind(0, got.append)
    route = scenario.directory.query("src", RouteQuery(
        "printer.lab.edu",
    ))[0]
    scenario.hosts["src"].send(route, b"print me", 200)
    scenario.sim.run(until=1.0)
    assert len(got) == 1


def test_empty_provider_list_rejected():
    scenario = build_service_network()
    with pytest.raises(ValueError):
        scenario.directory.register_service("bad.lab.edu", [])


def test_host_names_still_single_provider():
    scenario = build_service_network()
    assert scenario.directory.nodes_of("near.lab.edu") == ["near"]
    assert scenario.directory.nodes_of("printer.lab.edu") == ["dst", "near"]
    assert scenario.directory.nodes_of("ghost.lab.edu") == []
