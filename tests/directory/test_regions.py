"""Unit tests for the region-server hierarchy (§3, Singh's scheme)."""

import pytest

from repro.directory.names import HierarchicalName
from repro.directory.regions import RegionServer
from repro.sim.engine import Simulator


def build_hierarchy(sim, hop_latency=1e-3):
    root = RegionServer(sim, hop_latency=hop_latency)
    root.register(HierarchicalName.parse("venus.cs.stanford.edu"), "venus")
    root.register(HierarchicalName.parse("earth.cs.stanford.edu"), "earth")
    root.register(HierarchicalName.parse("gw.stanford.edu"), "gw-stanford")
    root.register(HierarchicalName.parse("milo.lcs.mit.edu"), "milo")
    return root


def test_registration_lands_in_owning_region():
    sim = Simulator()
    root = build_hierarchy(sim)
    cs = root.children["edu"].children["stanford"].children["cs"]
    assert "venus.cs.stanford.edu" in cs.hosts
    stanford = root.children["edu"].children["stanford"]
    assert "gw.stanford.edu" in stanford.hosts


def test_local_resolution_is_cheap():
    sim = Simulator()
    root = build_hierarchy(sim, hop_latency=1e-3)
    cs = root.children["edu"].children["stanford"].children["cs"]
    result = cs.resolve(HierarchicalName.parse("earth.cs.stanford.edu"))
    assert result.node_name == "earth"
    assert result.latency == 0.0
    assert result.servers_visited == 0


def test_cross_region_resolution_charges_hops():
    sim = Simulator()
    root = build_hierarchy(sim, hop_latency=1e-3)
    cs = root.children["edu"].children["stanford"].children["cs"]
    result = cs.resolve(HierarchicalName.parse("milo.lcs.mit.edu"))
    assert result.node_name == "milo"
    # Up: cs -> stanford -> edu (2 hops); down: edu -> mit -> lcs (2 hops).
    assert result.servers_visited == 4
    assert result.latency == pytest.approx(4e-3)


def test_sibling_region_resolution():
    sim = Simulator()
    root = build_hierarchy(sim, hop_latency=1e-3)
    root.register(HierarchicalName.parse("hp.ee.stanford.edu"), "hp")
    cs = root.children["edu"].children["stanford"].children["cs"]
    result = cs.resolve(HierarchicalName.parse("hp.ee.stanford.edu"))
    assert result.node_name == "hp"
    assert result.servers_visited == 2  # up to stanford, down to ee


def test_cache_makes_repeat_lookup_free():
    sim = Simulator()
    root = build_hierarchy(sim, hop_latency=1e-3)
    cs = root.children["edu"].children["stanford"].children["cs"]
    name = HierarchicalName.parse("milo.lcs.mit.edu")
    first = cs.resolve(name)
    second = cs.resolve(name)
    assert not first.from_cache
    assert second.from_cache
    assert second.latency == 0.0
    assert cs.cache_hits == 1


def test_cache_expires():
    sim = Simulator()
    root = build_hierarchy(sim, hop_latency=1e-3)
    cs = root.children["edu"].children["stanford"].children["cs"]
    cs.cache_ttl = 1.0
    name = HierarchicalName.parse("milo.lcs.mit.edu")
    cs.resolve(name)
    sim.at(5.0, lambda: None)
    sim.run()
    result = cs.resolve(name)
    assert not result.from_cache


def test_unknown_name_returns_none():
    sim = Simulator()
    root = build_hierarchy(sim)
    assert root.resolve(HierarchicalName.parse("ghost.cs.stanford.edu")) is None
    assert root.resolve(HierarchicalName.parse("host.example.org")) is None


def test_flush_cache():
    sim = Simulator()
    root = build_hierarchy(sim)
    cs = root.children["edu"].children["stanford"].children["cs"]
    name = HierarchicalName.parse("milo.lcs.mit.edu")
    cs.resolve(name)
    cs.flush_cache()
    assert not cs.resolve(name).from_cache


def test_add_child_idempotent():
    sim = Simulator()
    root = RegionServer(sim)
    child1 = root.add_child("edu")
    child2 = root.add_child("edu")
    assert child1 is child2
