"""Consistent-hash ring properties: minimal, local, deterministic moves.

The claims the cluster's rebalancing rests on, checked as properties
over ring sizes 1–32:

* adding a shard moves keys **only to** the new shard, never between
  two bystanders;
* removing a shard moves **only that shard's** keys, everyone else's
  ownership is untouched;
* the moved fraction is ~``K/n`` — consistent hashing's whole point.
"""

import pytest

from repro.directory.cluster.ring import (
    ConsistentHashRing,
    RingError,
    shard_key,
)


def _keys(count=600):
    """A deterministic population of sharding keys (region prefixes)."""
    return [f"region{i}.domain{i % 37}.net" for i in range(count)]


def _owners(ring, keys):
    return {key: ring.owner_of_key(key) for key in keys}


def _ring(shard_ids, vnodes=64):
    ring = ConsistentHashRing(vnodes=vnodes)
    for shard_id in shard_ids:
        ring.add(shard_id)
    return ring


# -- sharding key ----------------------------------------------------------

def test_shard_key_is_the_region_prefix():
    assert shard_key("venus.cs.stanford.edu") == "cs.stanford.edu"
    assert shard_key("pescadero.cs.stanford.edu") == "cs.stanford.edu"


def test_root_level_names_shard_on_themselves():
    assert shard_key("edu") == "edu"


def test_region_names_colocate():
    """Every host of one region lands on one shard — the locality that
    keeps region-walking queries single-shard."""
    ring = _ring([f"shard-{n}" for n in range(8)])
    owners = {
        ring.owner(f"host{i}.cs.stanford.edu") for i in range(50)
    }
    assert len(owners) == 1


# -- determinism -----------------------------------------------------------

def test_insertion_order_is_irrelevant():
    keys = _keys()
    forward = _ring([f"shard-{n}" for n in range(8)])
    backward = _ring([f"shard-{n}" for n in reversed(range(8))])
    assert _owners(forward, keys) == _owners(backward, keys)


# -- the add/remove move properties, sizes 1..32 ---------------------------

@pytest.mark.parametrize("n", list(range(1, 33)))
def test_add_moves_only_to_the_new_shard(n):
    keys = _keys()
    ring = _ring([f"shard-{i}" for i in range(n)])
    before = _owners(ring, keys)
    ring.add("shard-new")
    after = _owners(ring, keys)
    moved = [k for k in keys if before[k] != after[k]]
    for key in moved:
        assert after[key] == "shard-new", (
            f"{key} moved {before[key]} -> {after[key]}: a bystander "
            "transfer, which consistent hashing must never do"
        )


@pytest.mark.parametrize("n", list(range(2, 33)))
def test_remove_touches_only_the_removed_shards_keys(n):
    keys = _keys()
    ring = _ring([f"shard-{i}" for i in range(n)])
    before = _owners(ring, keys)
    ring.remove("shard-0")
    after = _owners(ring, keys)
    for key in keys:
        if before[key] == "shard-0":
            assert after[key] != "shard-0"
        else:
            assert after[key] == before[key], (
                f"{key} was not on shard-0 yet moved "
                f"{before[key]} -> {after[key]}"
            )


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32])
def test_add_moves_roughly_the_expected_fraction(n):
    """Growing n -> n+1 shards should move ~K/(n+1) keys.

    Vnode placement is hash-random, so the bound is loose (3x) — the
    property being pinned is the *order*: ~K/n, not ~K.
    """
    keys = _keys(1200)
    ring = _ring([f"shard-{i}" for i in range(n)])
    before = _owners(ring, keys)
    ring.add("shard-new")
    after = _owners(ring, keys)
    moved = sum(1 for k in keys if before[k] != after[k])
    expected = len(keys) / (n + 1)
    assert moved <= 3.0 * expected, (
        f"n={n}: moved {moved} of {len(keys)}, expected ~{expected:.0f}"
    )
    assert moved >= expected / 3.0, (
        f"n={n}: moved only {moved}; the new shard took almost nothing"
    )


def test_ownership_is_roughly_uniform():
    keys = _keys(3200)
    ring = _ring([f"shard-{n}" for n in range(8)])
    counts = ring.ownership_counts(keys)
    ideal = len(keys) / 8
    assert min(counts.values()) > ideal * 0.4
    assert max(counts.values()) < ideal * 2.0


# -- errors ----------------------------------------------------------------

def test_empty_ring_refuses_lookups():
    with pytest.raises(RingError):
        ConsistentHashRing().owner("venus.cs.stanford.edu")


def test_duplicate_add_refused():
    ring = _ring(["shard-0"])
    with pytest.raises(RingError):
        ring.add("shard-0")


def test_removing_an_absent_shard_refused():
    with pytest.raises(RingError):
        _ring(["shard-0"]).remove("shard-7")


def test_vnodes_must_be_positive():
    with pytest.raises(RingError):
        ConsistentHashRing(vnodes=0)
