"""Unit tests for hierarchical names (§3)."""

import pytest

from repro.directory.names import HierarchicalName


def test_parse_and_render():
    name = HierarchicalName.parse("Venus.CS.Stanford.EDU")
    assert str(name) == "venus.cs.stanford.edu"  # normalized
    assert name.leaf == "venus"


def test_parent_chain():
    name = HierarchicalName.parse("venus.cs.stanford.edu")
    assert str(name.parent) == "cs.stanford.edu"
    assert str(name.parent.parent) == "stanford.edu"
    assert HierarchicalName.parse("edu").parent is None


def test_region_path_root_first():
    name = HierarchicalName.parse("venus.cs.stanford.edu")
    path = [str(r) for r in name.region_path()]
    assert path == ["edu", "stanford.edu", "cs.stanford.edu"]


def test_is_within():
    name = HierarchicalName.parse("venus.cs.stanford.edu")
    assert name.is_within(HierarchicalName.parse("cs.stanford.edu"))
    assert name.is_within(HierarchicalName.parse("edu"))
    assert not name.is_within(HierarchicalName.parse("mit.edu"))
    assert not name.is_within(name)  # a name is not within itself


def test_common_region():
    a = HierarchicalName.parse("venus.cs.stanford.edu")
    b = HierarchicalName.parse("gregorio.ee.stanford.edu")
    c = HierarchicalName.parse("milo.lcs.mit.edu")
    assert str(a.common_region(b)) == "stanford.edu"
    assert str(a.common_region(c)) == "edu"
    sibling = HierarchicalName.parse("earth.cs.stanford.edu")
    assert str(a.common_region(sibling)) == "cs.stanford.edu"


def test_common_region_disjoint_roots():
    a = HierarchicalName.parse("x.alpha")
    b = HierarchicalName.parse("y.beta")
    assert a.common_region(b) is None


def test_invalid_labels_rejected():
    with pytest.raises(ValueError):
        HierarchicalName.parse("")
    with pytest.raises(ValueError):
        HierarchicalName.parse("host..edu")
    with pytest.raises(ValueError):
        HierarchicalName.parse("host name.edu")


def test_equality_and_hashability():
    a = HierarchicalName.parse("a.b.c")
    b = HierarchicalName.parse("A.B.C")
    assert a == b
    assert len({a, b}) == 1
