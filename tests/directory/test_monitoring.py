"""Unit tests for the load monitor feeding the directory (§3, §6.3)."""


from repro.directory import RouteQuery
from repro.directory.monitoring import LoadMonitor
from repro.directory.pathfind import PathObjective
from repro.scenarios import build_sirpent_parallel


def test_monitor_reports_hot_links():
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=50e-6)
    monitor = LoadMonitor(
        scenario.sim, scenario.topology, scenario.directory, interval=10e-3,
    )
    # Saturate the primary path with raw sends.
    route = scenario.routes("src", "dst")[0]
    host = scenario.hosts["src"]

    def flood() -> None:
        if scenario.sim.now < 0.5:
            host.send(route, b"x", 1200)
            scenario.sim.after(1e-3, flood)

    scenario.sim.after(0.0, flood)
    scenario.sim.run(until=0.45)  # while the flood is still running
    assert monitor.reports > 0
    loads = scenario.directory._loads
    assert loads.get("rA--p1", 0.0) > 0.8       # the hot path
    assert loads.get("rA--p2", 0.0) < 0.1       # the idle one
    # Once the load stops, the stale reading decays away.
    scenario.sim.run(until=1.0)
    assert scenario.directory._loads["rA--p1"] < 0.05


def test_reported_load_steers_low_cost_routes():
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=0.0)
    LoadMonitor(scenario.sim, scenario.topology, scenario.directory,
                interval=10e-3)
    route = scenario.routes("src", "dst")[0]
    host = scenario.hosts["src"]

    def flood() -> None:
        if scenario.sim.now < 0.5:
            host.send(route, b"x", 1200)
            scenario.sim.after(1e-3, flood)

    scenario.sim.after(0.0, flood)
    scenario.sim.run(until=0.3)
    fresh = scenario.directory.query("src", RouteQuery(
        "dst.lab.edu", objective=PathObjective.LOW_COST,
    ))[0]
    # The fresh low-cost route detours around the hot first path.
    hot_port = route.segments[0].port
    assert fresh.segments[0].port != hot_port


def test_idle_network_reports_near_zero():
    scenario = build_sirpent_parallel(n_paths=2)
    monitor = LoadMonitor(scenario.sim, scenario.topology,
                          scenario.directory, interval=10e-3)
    scenario.sim.run(until=0.2)
    assert monitor.reports > 0
    assert all(v < 0.05 for v in scenario.directory._loads.values())
