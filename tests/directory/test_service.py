"""Unit tests for the directory service (§3)."""

import pytest

from repro.core.router import SirpentRouter
from repro.core.host import SirpentHost
from repro.directory import DirectoryService, RegionServer, RouteQuery
from repro.directory.pathfind import PathObjective
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.portinfo import EthernetInfo


def build_network(refresh_interval=None):
    """h1 -(eth1)- r1 = r2 -(eth2)- h2 with an alternate r1-r3-r2 path."""
    sim = Simulator()
    topo = Topology(sim)
    h1 = topo.add_node(SirpentHost(sim, "h1"))
    h2 = topo.add_node(SirpentHost(sim, "h2"))
    r1 = topo.add_node(SirpentRouter(sim, "r1"))
    r2 = topo.add_node(SirpentRouter(sim, "r2"))
    r3 = topo.add_node(SirpentRouter(sim, "r3"))
    eth1 = topo.add_ethernet("eth1")
    eth2 = topo.add_ethernet("eth2")
    topo.attach_to_ethernet(h1, eth1)
    topo.attach_to_ethernet(r1, eth1)
    topo.attach_to_ethernet(h2, eth2)
    topo.attach_to_ethernet(r2, eth2)
    topo.connect(r1, r2, propagation_delay=1e-3, mtu=1200, name="main")
    topo.connect(r1, r3, propagation_delay=2e-3, name="alt-a")
    topo.connect(r3, r2, propagation_delay=2e-3, name="alt-b")
    root = RegionServer(sim)
    directory = DirectoryService(
        sim, topo, root_server=root, refresh_interval=refresh_interval
    )
    directory.register_host("h1", "h1.cs.stanford.edu")
    directory.register_host("h2", "h2.lcs.mit.edu")
    return sim, topo, directory


def test_query_returns_route_with_attributes():
    _sim, _topo, directory = build_network()
    routes = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))
    assert len(routes) == 1
    route = routes[0]
    assert route.hop_count == 2
    assert route.mtu == 1200  # bottleneck on the main link
    assert route.bottleneck_bps == 10e6
    assert route.propagation_delay > 1e-3
    # Final segment addresses the destination's socket 0.
    assert route.segments[-1].port == 0


def test_unknown_destination_returns_empty():
    _sim, _topo, directory = build_network()
    assert directory.query("h1", RouteQuery("nobody.example.org")) == []


def test_k_routes_are_distinct_and_ordered():
    _sim, _topo, directory = build_network()
    routes = directory.query("h1", RouteQuery("h2.lcs.mit.edu", k=3))
    assert len(routes) == 2  # main and the r3 detour
    assert routes[0].hop_count < routes[1].hop_count


def test_ethernet_hops_carry_portinfo():
    _sim, _topo, directory = build_network()
    route = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))[0]
    # First hop is h1's Ethernet toward r1: the Route addresses it.
    assert route.first_hop_mac is not None
    # r2's segment exits onto eth2: full 14-byte Ethernet portinfo.
    last_router_segment = route.segments[-2]
    info = EthernetInfo.from_bytes(last_router_segment.portinfo)
    assert info.dst is not None
    # r1's segment crosses the p2p link: VNT set, void portinfo.
    assert route.segments[0].vnt
    assert route.segments[0].portinfo == b""


def test_tokens_minted_per_router():
    _sim, topo, directory = build_network()
    route = directory.query(
        "h1", RouteQuery("h2.lcs.mit.edu", with_tokens=True, account=9)
    )[0]
    router_segments = route.segments[:-1]
    assert all(s.token for s in router_segments)
    # Each token verifies against its router's own mint.
    r1 = topo.node("r1")
    claims = r1.mint.verify(route.segments[0].token)
    assert claims.account == 9
    assert claims.authorizes_port(route.segments[0].port)
    assert directory.tokens_issued == 2


def test_stale_view_hides_recent_failure():
    """With a refresh interval, a just-failed link is still handed out —
    clients must cope via cached alternates (E6's premise)."""
    sim, topo, directory = build_network(refresh_interval=1.0)
    topo.fail_link("main")
    routes = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))
    assert routes[0].hop_count == 2  # still the dead 2-hop path
    sim.run(until=1.5)  # refresh happens
    routes = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))
    assert routes[0].hop_count == 3  # now via r3


def test_live_view_reacts_immediately():
    _sim, topo, directory = build_network(refresh_interval=None)
    topo.fail_link("main")
    routes = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))
    assert routes[0].hop_count == 3


def test_load_reports_steer_low_cost_routes():
    _sim, _topo, directory = build_network()
    before = directory.query(
        "h1", RouteQuery("h2.lcs.mit.edu", objective=PathObjective.LOW_COST)
    )[0]
    assert before.hop_count == 2
    directory.record_load("main", 0.95)
    after = directory.query(
        "h1", RouteQuery("h2.lcs.mit.edu", objective=PathObjective.LOW_COST)
    )[0]
    assert after.hop_count == 3  # detour is now cheaper


def test_query_latency_includes_region_walk():
    _sim, _topo, directory = build_network()
    latency = directory.query_latency("h1", "h2.lcs.mit.edu")
    assert latency > directory.query_rtt  # cross-region hops add cost
    # Cached second lookup: just the server round trip.
    latency2 = directory.query_latency("h1", "h2.lcs.mit.edu")
    assert latency2 == pytest.approx(directory.query_rtt)


def test_query_async_delivers_after_latency():
    sim, _topo, directory = build_network()
    results = []
    directory.query_async(
        "h1", RouteQuery("h2.lcs.mit.edu"),
        lambda routes: results.append((sim.now, routes)),
    )
    sim.run(until=1.0)
    assert results
    at, routes = results[0]
    assert at > 0 and routes


def test_advisory_fires_on_route_change():
    sim, topo, directory = build_network()
    advisories = []
    directory.subscribe(
        "h1", RouteQuery("h2.lcs.mit.edu"), advisories.append
    )
    sim.run(until=0.2)
    assert len(advisories) == 1  # initial advisory
    topo.fail_link("main")
    sim.run(until=0.5)
    assert len(advisories) == 2
    assert advisories[-1][0].hop_count == 3


def test_route_max_payload_and_expected_rtt():
    _sim, _topo, directory = build_network()
    route = directory.query("h1", RouteQuery("h2.lcs.mit.edu"))[0]
    assert 0 < route.max_payload() < route.mtu
    rtt = route.expected_rtt(500)
    assert rtt > 2 * route.propagation_delay
