"""Trace continuity across shard failover.

A traced v2 rebind whose owning shard loses its leader mid-command must
still come out as ONE stitched trace: the unavailable attempt, the
promotion that fixed it, and the retry's commit all land in the same
trace record, parented into one tree (host → cluster → shard →
replicas).  This is the observability counterpart of the dedup
guarantee — retries reuse the request id *and* the trace.
"""

import pytest

from repro.directory.cluster.client import ClusterClient
from repro.directory.cluster.cluster import DirectoryCluster
from repro.obs.trace import Tracer, tree_of


class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


def _flatten(node, depth=0):
    yield node["node"], depth
    for child in node["children"]:
        yield from _flatten(child, depth + 1)


def test_traced_rebind_survives_leader_kill_as_one_trace():
    clock = _Clock()
    tracer = Tracer()
    cluster = DirectoryCluster(shard_count=1, replication_factor=2)
    cluster.set_tracer(tracer)
    cluster.set_clock(clock.now)

    client = ClusterClient(
        cluster.execute_raw, name="c1", max_attempts=4,
        clock=clock.now,
        on_retry=lambda rid, attempt: cluster.fail_over("shard-0"),
    )
    client.register_host("a.example.net", "node-1")

    # Kill the leader, then issue a traced rebind: the first attempt
    # finds the shard leaderless; the on_retry hook plays the part of
    # the membership monitor and promotes; the retry commits.
    cluster.kill_shard_leader("shard-0")
    tid = tracer.begin("client-host", clock.now())
    assert tid != 0
    result = client.rebind(
        "a.example.net", "node-2",
        trace={"id": tid, "parent": "client-host"},
    )
    assert result["node"] == "node-2"
    assert client.last_attempts == 2  # exactly one retry

    record = tracer.record(tid)
    assert record is not None
    names = [e.name for e in record.events]
    # The whole saga is one record: route, unavailable, promotion,
    # re-route, commit — in causal order.
    assert names == [
        "send",
        "command_route",
        "shard_unavailable",
        "leader_promoted",
        "command_route",
        "leader_commit",
    ]
    promoted = [e for e in record.events if e.name == "leader_promoted"]
    assert promoted[0].node == "shard-0/r1"
    assert promoted[0].attrs["term"] == 2
    commit = [e for e in record.events if e.name == "leader_commit"]
    assert commit[0].node == "shard-0/r1"

    # The parent chain renders as one tree spanning all four layers.
    tree = tree_of(record)
    assert len(tree["roots"]) == 1
    flat = dict(_flatten(tree["roots"][0]))
    assert flat == {
        "client-host": 0,
        "cluster": 1,
        "shard-0": 2,
        "shard-0/r1": 3,
    }


def test_untraced_commands_record_nothing():
    tracer = Tracer()
    cluster = DirectoryCluster(shard_count=1, replication_factor=2)
    cluster.set_tracer(tracer)
    client = ClusterClient(cluster.execute_raw, name="c2")
    client.register_host("b.example.net", "node-1")
    client.lookup("b.example.net")
    assert tracer.records == {}


def test_failover_with_no_awaiting_traces_stays_silent():
    tracer = Tracer()
    cluster = DirectoryCluster(shard_count=1, replication_factor=2)
    cluster.set_tracer(tracer)
    cluster.kill_shard_leader("shard-0")
    cluster.fail_over("shard-0")
    assert tracer.records == {}
