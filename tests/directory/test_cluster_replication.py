"""Leader/follower replication: zero acked-write loss, proved by replay.

The discipline under test (replica.py's module docstring): followers
append first, the leader last, the ack only after both — so no
acknowledged entry ever exists solely on the leader, and promoting the
most-caught-up follower preserves every acknowledged write.
"""

import pytest

from repro.directory.cluster.cluster import DirectoryCluster
from repro.directory.cluster.log import CommandLog, LogEntry, LogError
from repro.directory.cluster.protocol import CommandRequest, decode_response
from repro.directory.cluster.replica import (
    FOLLOWER,
    LEADER,
    ReplicatedShard,
    ShardUnavailableError,
)


def _write(shard, name, node, request_id):
    return shard.execute(CommandRequest.make(
        "register_host", {"name": name, "node": node}, request_id,
    ))


# -- the log itself --------------------------------------------------------

def test_log_append_enforces_density():
    log = CommandLog()
    log.append(LogEntry(1, 1, "a", "rebind", "{}"))
    with pytest.raises(LogError):
        log.append(LogEntry(3, 1, "b", "rebind", "{}"))


def test_log_append_refuses_term_regression():
    log = CommandLog()
    log.append(LogEntry(1, 3, "a", "rebind", "{}"))
    with pytest.raises(LogError):
        log.append(LogEntry(2, 2, "b", "rebind", "{}"))


def test_prefix_check_spots_divergence():
    a, b = CommandLog(), CommandLog()
    a.append(LogEntry(1, 1, "x", "rebind", "{}"))
    b.append(LogEntry(1, 1, "x", "rebind", "{}"))
    assert a.matches_prefix_of(b)
    a.append(LogEntry(2, 1, "only-mine", "rebind", "{}"))
    b.append(LogEntry(2, 2, "only-yours", "rebind", "{}"))
    assert not a.matches_prefix_of(b)


# -- acknowledgment ordering ----------------------------------------------

def test_acknowledged_writes_reach_every_live_follower():
    shard = ReplicatedShard("s", replication_factor=3)
    for n in range(10):
        _write(shard, f"h{n}.region.net", f"node-{n}", f"w-{n}")
    leader = shard.leader
    for follower in shard.followers():
        assert follower.last_index == leader.last_index == 10
    assert shard.log_lag() == 0


def test_failover_after_leader_crash_loses_zero_acked_writes():
    shard = ReplicatedShard("s", replication_factor=2)
    acked = {}
    for n in range(25):
        name = f"h{n}.region.net"
        acked[name] = _write(shard, name, f"node-{n}", f"w-{n}")
    killed = shard.kill_leader()
    promoted = shard.fail_over()
    assert promoted is not None and promoted != killed
    assert shard.term == 2
    leader = shard.leader
    # Every acknowledged binding survives, and the *log replay* proves
    # it: replaying the survivor's log into a fresh store reproduces
    # the exact state.
    for n in range(25):
        assert leader.store.names[f"h{n}.region.net"] == f"node-{n}"
    from repro.directory.cluster.replica import ShardReplica

    fresh = ShardReplica("s", "s/replay")
    fresh.rebuild_from(leader.log.entries_from(1))
    assert fresh.store.names == leader.store.names


def test_retry_after_failover_returns_byte_identical_response():
    shard = ReplicatedShard("s", replication_factor=2)
    original = _write(shard, "h.region.net", "node-1", "w-retry")
    shard.kill_leader()
    shard.fail_over()
    replay = _write(shard, "h.region.net", "node-1", "w-retry")
    assert replay == original
    assert shard.dedup_hits == 1
    # Dedup means exactly one execution and one log entry.
    assert shard.request_id_counts()["w-retry"] == 1
    assert shard.leader.store.executions["w-retry"] == 1


def test_most_caught_up_follower_wins_promotion():
    shard = ReplicatedShard("s", replication_factor=3)
    _write(shard, "h0.region.net", "n0", "w-0")
    # One follower falls behind (crashed), more writes land, then it
    # returns just before the leader dies: promotion must pick the
    # caught-up follower, not the stale one.
    behind = shard.followers()[0]
    behind.alive = False
    for n in range(1, 6):
        _write(shard, f"h{n}.region.net", f"n{n}", f"w-{n}")
    behind.alive = True  # back, but with a 5-entry hole
    shard.kill_leader()
    promoted = shard.fail_over()
    assert promoted != behind.replica_id
    assert shard.leader.last_index == 6


def test_restarted_replica_catches_up_by_suffix():
    shard = ReplicatedShard("s", replication_factor=2)
    _write(shard, "h0.region.net", "n0", "w-0")
    follower = shard.followers()[0]
    follower.alive = False
    for n in range(1, 4):
        _write(shard, f"h{n}.region.net", f"n{n}", f"w-{n}")
    replayed = shard.restart_replica(follower.replica_id)
    assert replayed == 3  # only the missed suffix, not the whole log
    assert follower.last_index == shard.leader.last_index


def test_diverged_replica_rebuilds_by_full_replay():
    shard = ReplicatedShard("s", replication_factor=2)
    _write(shard, "h0.region.net", "n0", "w-0")
    old_leader_id = shard.kill_leader()
    shard.fail_over()
    for n in range(1, 4):
        _write(shard, f"h{n}.region.net", f"n{n}", f"w-{n}")
    # The old leader's log (1 entry, term 1) is still a prefix here;
    # force divergence by giving it a private term-1 tail no one saw.
    old_leader = shard.replica(old_leader_id)
    old_leader.log.append(
        LogEntry(2, 1, "ghost", "rebind",
                 '{"name":"g.region.net","node":"ghost"}')
    )
    old_leader.store.apply(old_leader.log.entry_at(2))
    replayed = shard.restart_replica(old_leader_id)
    assert replayed == shard.leader.last_index  # full rebuild
    assert "g.region.net" not in old_leader.store.names
    assert old_leader.store.names == shard.leader.store.names


def test_leaderless_shard_is_unavailable_not_wrong():
    shard = ReplicatedShard("s", replication_factor=1)
    shard.kill_leader()
    with pytest.raises(ShardUnavailableError):
        _write(shard, "h.region.net", "n", "w-0")
    assert shard.fail_over() is None  # nobody to promote


def test_roles_are_singular_after_failover():
    shard = ReplicatedShard("s", replication_factor=3)
    shard.kill_leader()
    shard.fail_over()
    leaders = [r for r in shard.replicas if r.role == LEADER]
    followers = [r for r in shard.replicas if r.role == FOLLOWER]
    assert len(leaders) == 1
    assert len(followers) == 2


# -- cluster-level routing & rebalancing -----------------------------------

def _populate(cluster, count):
    names = []
    for n in range(count):
        name = f"h{n}.region{n % 23}.net"
        response = cluster.execute(CommandRequest.make(
            "register_host", {"name": name, "node": f"node-{n}"},
            f"seed-{n}",
        ))
        assert response.ok, response
        names.append(name)
    return names


def test_commands_route_by_region_prefix():
    cluster = DirectoryCluster(shard_count=4, replication_factor=2)
    _populate(cluster, 80)
    shard_id = cluster.shard_for("h0.region0.net")
    leader = cluster.shards[shard_id].leader
    assert "h0.region0.net" in leader.store.names


def test_add_shard_migrates_and_conserves_names():
    cluster = DirectoryCluster(shard_count=3, replication_factor=2)
    names = _populate(cluster, 120)
    before = cluster.total_names()
    new_shard = cluster.add_shard()
    assert cluster.total_names() == before == len(names)
    # The ring's move property, end to end: every binding now lives on
    # the shard the (grown) ring says owns it.
    for name in names:
        owner = cluster.shard_for(name)
        assert name in cluster.shards[owner].leader.store.names
    # And the new shard actually took some load.
    assert dict(cluster.ownership())[new_shard] > 0


def test_remove_shard_drains_and_conserves_names():
    cluster = DirectoryCluster(shard_count=4, replication_factor=2)
    names = _populate(cluster, 120)
    victim = sorted(cluster.shards)[0]
    cluster.remove_shard(victim)
    assert cluster.total_names() == len(names)
    assert victim not in cluster.shards
    for name in names:
        owner = cluster.shard_for(name)
        assert name in cluster.shards[owner].leader.store.names


def test_rebalance_commands_are_exactly_once_too():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    _populate(cluster, 60)
    cluster.add_shard()
    cluster.add_shard()
    for request_id, count in cluster.request_id_counts().items():
        assert count == 1, f"{request_id} appears {count} times"


def test_unavailable_shard_yields_retryable_error_response():
    cluster = DirectoryCluster(shard_count=2, replication_factor=1)
    names = _populate(cluster, 20)
    target = names[0]
    shard_id = cluster.shard_for(target)
    cluster.kill_shard_leader(shard_id)
    response = decode_response(cluster.execute_raw(CommandRequest.make(
        "rebind", {"name": target, "node": "elsewhere"}, "r-1",
    )))
    assert not response.ok
    assert response.error.code == "shard_unavailable"
    assert response.error.retryable
