"""Unit tests for constrained path finding (Dijkstra, widest path, Yen)."""


from repro.directory.pathfind import (
    PathObjective,
    dijkstra,
    edge_weight,
    k_shortest_paths,
    path_weight,
)
from repro.net.topology import Edge


def edge(src, dst, port, rate=10e6, prop=1e-3, cost=1.0, secure=True, mtu=1500):
    return Edge(src, dst, port, rate, prop, mtu, cost=cost, secure=secure)


def duplex(a, b, pa, pb, **kwargs):
    return [edge(a, b, pa, **kwargs), edge(b, a, pb, **kwargs)]


def diamond():
    """a -> b -> d (fast) and a -> c -> d (slow), plus a -> d direct slowest."""
    edges = []
    edges += duplex("a", "b", 1, 1, prop=1e-3)
    edges += duplex("b", "d", 2, 2, prop=1e-3)
    edges += duplex("a", "c", 2, 1, prop=5e-3)
    edges += duplex("c", "d", 2, 3, prop=5e-3)
    edges += duplex("a", "d", 3, 4, prop=20e-3)
    return edges


def path_nodes(path):
    return [path[0].src] + [e.dst for e in path]


def test_low_delay_picks_fast_branch():
    path = dijkstra(diamond(), "a", "d", PathObjective.LOW_DELAY)
    assert path_nodes(path) == ["a", "b", "d"]


def test_unreachable_returns_none():
    assert dijkstra(diamond(), "a", "zzz") is None


def test_trivial_path_to_self():
    assert dijkstra(diamond(), "a", "a") == []


def test_low_cost_objective():
    edges = duplex("a", "b", 1, 1, cost=10.0)
    edges += duplex("a", "c", 2, 1, cost=1.0)
    edges += duplex("c", "b", 2, 2, cost=1.0)
    path = dijkstra(edges, "a", "b", PathObjective.LOW_COST)
    assert path_nodes(path) == ["a", "c", "b"]


def test_secure_objective_avoids_insecure_links():
    edges = duplex("a", "b", 1, 1, prop=1e-3, secure=False)
    edges += duplex("a", "c", 2, 1, prop=5e-3)
    edges += duplex("c", "b", 2, 2, prop=5e-3)
    fast = dijkstra(edges, "a", "b", PathObjective.LOW_DELAY)
    assert path_nodes(fast) == ["a", "b"]
    secure = dijkstra(edges, "a", "b", PathObjective.SECURE)
    assert path_nodes(secure) == ["a", "c", "b"]


def test_secure_unreachable_when_all_paths_insecure():
    edges = duplex("a", "b", 1, 1, secure=False)
    assert dijkstra(edges, "a", "b", PathObjective.SECURE) is None


def test_widest_path_maximizes_bottleneck():
    edges = duplex("a", "b", 1, 1, rate=1e6, prop=1e-3)      # fast, narrow
    edges += duplex("a", "c", 2, 1, rate=100e6, prop=10e-3)  # slow, wide
    edges += duplex("c", "b", 2, 2, rate=100e6, prop=10e-3)
    narrow = dijkstra(edges, "a", "b", PathObjective.LOW_DELAY)
    assert path_nodes(narrow) == ["a", "c", "b"] or path_nodes(narrow) == ["a", "b"]
    wide = dijkstra(edges, "a", "b", PathObjective.HIGH_BANDWIDTH)
    assert path_nodes(wide) == ["a", "c", "b"]
    assert min(e.rate_bps for e in wide) == 100e6


def test_widest_path_ties_broken_by_delay():
    edges = duplex("a", "b", 1, 1, rate=10e6, prop=1e-3)
    edges += duplex("a", "c", 2, 1, rate=10e6, prop=9e-3)
    edges += duplex("c", "b", 2, 2, rate=10e6, prop=9e-3)
    path = dijkstra(edges, "a", "b", PathObjective.HIGH_BANDWIDTH)
    assert path_nodes(path) == ["a", "b"]


def test_k_shortest_ordered_and_distinct():
    paths = k_shortest_paths(diamond(), "a", "d", k=3)
    assert len(paths) == 3
    weights = [path_weight(p, PathObjective.LOW_DELAY) for p in paths]
    assert weights == sorted(weights)
    node_lists = [tuple(path_nodes(p)) for p in paths]
    assert len(set(node_lists)) == 3
    assert node_lists[0] == ("a", "b", "d")


def test_k_shortest_exhausts_gracefully():
    paths = k_shortest_paths(diamond(), "a", "d", k=10)
    assert len(paths) == 3  # only three loopless alternatives exist


def test_k_shortest_zero():
    assert k_shortest_paths(diamond(), "a", "d", k=0) == []


def test_k_shortest_unreachable():
    assert k_shortest_paths(diamond(), "a", "nowhere", k=2) == []


def test_paths_are_loopless():
    paths = k_shortest_paths(diamond(), "a", "d", k=5)
    for path in paths:
        nodes = path_nodes(path)
        assert len(nodes) == len(set(nodes))


def test_edge_weight_includes_serialization():
    slow = edge("a", "b", 1, rate=1e6, prop=0.0)
    fast = edge("a", "b", 1, rate=1e9, prop=0.0)
    assert edge_weight(slow, PathObjective.LOW_DELAY) > edge_weight(
        fast, PathObjective.LOW_DELAY
    )
