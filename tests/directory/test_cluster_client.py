"""The shard-aware client: same-id retries, typed failures, TTL cache."""

import pytest

from repro.directory.cluster.client import ClusterClient, ClusterCommandError
from repro.directory.cluster.cluster import DirectoryCluster
from repro.directory.cluster.protocol import (
    CommandError,
    CommandRequest,
    CommandResponse,
)


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _cluster_client(cluster, **kwargs):
    return ClusterClient(cluster.execute_raw, **kwargs)


# -- retry-through-failover ------------------------------------------------

def test_write_retries_through_failover_with_the_same_request_id():
    """The end-to-end at-least-once story: a write whose shard is down
    fails retryably; the membership monitor (here: the retry hook)
    promotes a follower; the retry — same request id — lands and wins."""
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    seen_ids = []

    def heal_on_retry(request_id, attempt):
        seen_ids.append(request_id)
        cluster.fail_over(shard_id)

    client = _cluster_client(cluster, on_retry=heal_on_retry)
    client.register_host("h.region.net", "node-a")  # learn the topology
    shard_id = cluster.shard_for("h2.region.net")
    cluster.kill_shard_leader(shard_id)

    result = client.register_host("h2.region.net", "node-b")
    assert result["created"] is True
    assert client.retries == 1
    assert len(set(seen_ids)) == 1  # every retry reused the one id
    assert cluster.request_id_counts()[seen_ids[0]] == 1


def test_replayed_write_is_byte_identical_not_reexecuted():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    responses = []
    original_execute = cluster.execute_raw

    def recording_execute(request):
        payload = original_execute(request)
        responses.append(payload)
        return payload

    # First delivery succeeds but the "ack is lost": resend manually.
    client = ClusterClient(recording_execute)
    client.rebind("h.region.net", "node-a")
    request_id = f"{client.name}-1"
    replay = original_execute(CommandRequest.make(
        "rebind", {"name": "h.region.net", "node": "node-a"}, request_id,
    ))
    assert replay == responses[0]
    shard = cluster.shards[cluster.shard_for("h.region.net")]
    assert shard.dedup_hits == 1
    assert shard.leader.store.executions[request_id] == 1


def test_retries_exhausted_raises_with_code_and_attempts():
    cluster = DirectoryCluster(shard_count=1, replication_factor=1)
    client = _cluster_client(cluster, max_attempts=3)
    cluster.kill_shard_leader("shard-0")  # rf=1: nobody to promote
    with pytest.raises(ClusterCommandError) as err:
        client.register_host("h.region.net", "node-a")
    assert err.value.code == "shard_unavailable"
    assert err.value.attempts == 3
    assert client.retries == 2


def test_non_retryable_conflict_fails_fast():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    client = _cluster_client(cluster, max_attempts=4)
    client.register_host("h.region.net", "node-a")
    with pytest.raises(ClusterCommandError) as err:
        client.register_host("h.region.net", "node-b")
    assert err.value.code == "conflict"
    assert err.value.attempts == 1  # conflicts must never burn retries
    assert client.retries == 0


def test_identical_reregistration_is_a_success_noop():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    client = _cluster_client(cluster)
    first = client.register_host("h.region.net", "node-a")
    again = client.register_host("h.region.net", "node-a")
    assert first["created"] is True
    assert again["created"] is False


# -- the TTL lookup cache --------------------------------------------------

def test_lookup_cache_cold_then_warm():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    clock = _Clock()
    client = _cluster_client(cluster, cache_ttl_s=5.0, clock=clock)
    client.register_host("h.region.net", "node-a")
    cold = client.lookup("h.region.net")
    warm = client.lookup("h.region.net")
    assert cold == warm
    assert client.cache_misses == 1
    assert client.cache_hits == 1
    assert client.cache_hit_rate == 0.5


def test_lookup_cache_expires_by_ttl():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    clock = _Clock()
    client = _cluster_client(cluster, cache_ttl_s=1.0, clock=clock)
    client.register_host("h.region.net", "node-a")
    client.lookup("h.region.net")
    clock.t = 2.0  # past the TTL
    client.lookup("h.region.net")
    assert client.cache_misses == 2


def test_own_writes_invalidate_the_cache():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    clock = _Clock()
    client = _cluster_client(cluster, cache_ttl_s=100.0, clock=clock)
    client.register_host("h.region.net", "node-a")
    assert client.lookup("h.region.net")["node"] == "node-a"
    client.rebind("h.region.net", "node-b")
    assert client.lookup("h.region.net")["node"] == "node-b"


def test_lookup_miss_is_a_typed_not_found():
    cluster = DirectoryCluster(shard_count=2, replication_factor=2)
    client = _cluster_client(cluster)
    with pytest.raises(ClusterCommandError) as err:
        client.lookup("nobody.region.net")
    assert err.value.code == "not_found"


# -- transport-agnosticism -------------------------------------------------

def test_client_speaks_to_any_bytes_transport():
    """The execute callable is the seam: a canned transport works."""

    def canned(request):
        return CommandResponse.failure(
            request.request_id,
            CommandError.make("unavailable", "maintenance window"),
        ).encode()

    client = ClusterClient(canned, max_attempts=2)
    with pytest.raises(ClusterCommandError) as err:
        client.unregister("h.region.net")
    assert err.value.code == "unavailable"
    assert err.value.attempts == 2
