"""The v2 command protocol: typed parse, canonical bytes, error taxonomy."""

import json

import pytest

from repro.directory.cluster.protocol import (
    CommandError,
    CommandRequest,
    CommandResponse,
    PROTOCOL_V2,
    ProtocolError,
    RETRYABLE_CODES,
    VersionError,
    canonical_encode,
    decode_response,
)


# -- requests --------------------------------------------------------------

def test_request_round_trips_through_the_wire():
    request = CommandRequest.make(
        "register_host",
        {"name": "venus.cs.stanford.edu", "node": "venus"},
        "c1-17",
    )
    parsed = CommandRequest.parse(json.loads(request.encode()))
    assert parsed == request
    assert parsed.v == PROTOCOL_V2
    assert parsed.params_dict == {
        "name": "venus.cs.stanford.edu", "node": "venus",
    }


def test_writes_and_reads_are_classified():
    write = CommandRequest.make("rebind", {"name": "a.b"}, "r1")
    read = CommandRequest.make("lookup", {"name": "a.b"}, "r2")
    assert write.is_write
    assert not read.is_write


def test_unsupported_version_is_a_named_rejection():
    with pytest.raises(VersionError):
        CommandRequest.parse({
            "v": 9, "id": "x", "method": "ping", "params": {},
        })


@pytest.mark.parametrize("frame", [
    "not an object",
    {"v": 2, "method": "ping", "params": {}},            # no id
    {"v": 2, "id": "", "method": "ping", "params": {}},  # empty id
    {"v": 2, "id": "x", "params": {}},                   # no method
    {"v": 2, "id": "x", "method": "ping", "params": ["positional"]},
    {"v": True, "id": "x", "method": "ping", "params": {}},
])
def test_malformed_frames_are_protocol_errors(frame):
    with pytest.raises(ProtocolError):
        CommandRequest.parse(frame)


def test_a_frame_without_v_is_v1_hence_version_error_here():
    """The typed parser only speaks v2; the live server routes
    v-less frames down the legacy path *before* this parser runs."""
    with pytest.raises(VersionError):
        CommandRequest.parse({"id": "x", "method": "ping", "params": {}})


# -- canonical encoding ----------------------------------------------------

def test_canonical_encoding_ignores_key_order():
    a = canonical_encode({"b": 1, "a": {"y": 2, "x": 3}})
    b = canonical_encode({"a": {"x": 3, "y": 2}, "b": 1})
    assert a == b
    assert a.endswith(b"\n")


def test_equal_responses_encode_byte_identically():
    one = CommandResponse.success("id-1", {"node": "venus", "name": "a.b"})
    two = CommandResponse.success("id-1", {"name": "a.b", "node": "venus"})
    assert one.encode() == two.encode()


# -- responses -------------------------------------------------------------

def test_success_response_round_trip():
    response = CommandResponse.success("c1-17", {"name": "a.b.net"})
    decoded = decode_response(response.encode())
    assert decoded.ok
    assert decoded.request_id == "c1-17"
    assert decoded.result_dict == {"name": "a.b.net"}


def test_failure_response_round_trip_keeps_the_taxonomy():
    response = CommandResponse.failure("c1-18", CommandError.make(
        "shard_unavailable", "no live leader", {"shard": "shard-2"},
    ))
    decoded = decode_response(response.encode())
    assert not decoded.ok
    assert decoded.error is not None
    assert decoded.error.code == "shard_unavailable"
    assert decoded.error.retryable
    assert decoded.error.details_dict == {"shard": "shard-2"}


def test_conflict_is_not_retryable():
    error = CommandError.make("conflict", "bound elsewhere")
    assert not error.retryable


def test_every_retryable_code_is_a_known_code():
    for code in RETRYABLE_CODES:
        assert CommandError.make(code, "x").retryable


def test_unknown_error_codes_are_refused():
    with pytest.raises(ProtocolError):
        CommandError.make("made_up_code", "nope")


def test_undecodable_response_line_is_a_protocol_error():
    with pytest.raises(ProtocolError):
        decode_response(b"{half a json object\n")


def test_unknown_status_is_refused():
    with pytest.raises(ProtocolError):
        CommandResponse.parse({"v": 2, "id": "x", "status": "maybe"})
