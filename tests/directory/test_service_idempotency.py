"""DirectoryService registration: idempotent re-register, typed conflict.

The in-sim directory now carries the same binding semantics as the
cluster's state machine — a retried register must not fail because its
first copy landed, and a *contradictory* binding must never silently
win (moves are the explicit :meth:`rebind_host`).
"""

import pytest

from repro.directory.service import (
    BindingConflictError,
    DirectoryService,
)
from repro.net.topology import Topology
from repro.core.host import SirpentHost
from repro.sim.engine import Simulator


def _service():
    sim = Simulator()
    topology = Topology(sim)
    topology.add_node(SirpentHost(sim, "venus"))
    topology.add_node(SirpentHost(sim, "pescadero"))
    return DirectoryService(sim, topology)


def test_reregistering_the_identical_binding_is_a_noop():
    service = _service()
    first = service.register_host("venus", "venus.cs.stanford.edu")
    again = service.register_host("venus", "venus.cs.stanford.edu")
    assert str(first) == str(again)
    assert service.node_of("venus.cs.stanford.edu") == "venus"


def test_conflicting_host_binding_raises_typed_error():
    service = _service()
    service.register_host("venus", "venus.cs.stanford.edu")
    with pytest.raises(BindingConflictError) as err:
        service.register_host("pescadero", "venus.cs.stanford.edu")
    assert err.value.name == "venus.cs.stanford.edu"
    assert err.value.bound_to == "venus"
    assert err.value.requested == "pescadero"
    # The standing binding is untouched — never last-write-wins.
    assert service.node_of("venus.cs.stanford.edu") == "venus"


def test_conflict_is_a_value_error_for_legacy_callers():
    service = _service()
    service.register_host("venus", "venus.cs.stanford.edu")
    with pytest.raises(ValueError):
        service.register_host("pescadero", "venus.cs.stanford.edu")


def test_service_registration_is_idempotent_too():
    service = _service()
    service.register_service("print.stanford.edu", ["venus", "pescadero"])
    service.register_service("print.stanford.edu", ["venus", "pescadero"])
    assert service.nodes_of("print.stanford.edu") == ["venus", "pescadero"]


def test_service_provider_change_is_a_conflict():
    service = _service()
    service.register_service("print.stanford.edu", ["venus"])
    with pytest.raises(BindingConflictError):
        service.register_service("print.stanford.edu", ["pescadero"])


def test_rebind_host_is_the_explicit_move():
    service = _service()
    service.register_host("venus", "venus.cs.stanford.edu")
    service.rebind_host("pescadero", "venus.cs.stanford.edu")
    assert service.node_of("venus.cs.stanford.edu") == "pescadero"


def test_rebind_host_works_for_fresh_names_too():
    service = _service()
    service.rebind_host("venus", "new.cs.stanford.edu")
    assert service.node_of("new.cs.stanford.edu") == "venus"
