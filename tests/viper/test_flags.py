"""Unit tests for the VIPER flags/priority byte (§5)."""

import pytest

from repro.viper.flags import (
    PRIORITY_BULK,
    PRIORITY_LOWEST,
    PRIORITY_NORMAL,
    PRIORITY_PREEMPT,
    PRIORITY_PREEMPT_HIGH,
    effective_priority,
    is_preemptive,
    outranks,
    pack_flags_priority,
    unpack_flags_priority,
)


def test_pack_unpack_roundtrip_all_values():
    for vnt in (False, True):
        for dib in (False, True):
            for rpf in (False, True):
                for slick in (False, True):
                    for priority in range(16):
                        byte = pack_flags_priority(
                            vnt, dib, rpf, priority, slick=slick
                        )
                        assert unpack_flags_priority(byte) == (
                            vnt, dib, rpf, slick, priority
                        )


def test_slick_defaults_off_and_keeps_legacy_bytes():
    """Omitting ``slick`` packs the exact pre-slick byte for every
    legacy flag combination — non-slick frames stay byte-identical."""
    for vnt in (False, True):
        for dib in (False, True):
            for rpf in (False, True):
                for priority in range(16):
                    legacy = pack_flags_priority(vnt, dib, rpf, priority)
                    assert legacy & 0x10 == 0  # slick bit clear
                    assert legacy == pack_flags_priority(
                        vnt, dib, rpf, priority, slick=False
                    )


def test_priority_order_normal_band():
    """0 is normal, 7 highest (§5)."""
    for lower, higher in zip(range(0, 7), range(1, 8)):
        assert outranks(higher, lower)


def test_priority_order_low_band():
    """High-order-bit values are lower; 0xF is lowest (§5)."""
    assert outranks(PRIORITY_NORMAL, PRIORITY_BULK)
    assert outranks(PRIORITY_BULK, PRIORITY_LOWEST)
    assert outranks(0x8, 0x9)  # within the low band, bigger = lower


def test_total_order_is_strict():
    effectives = sorted(effective_priority(p) for p in range(16))
    assert effectives == list(range(16))  # all distinct


def test_preemptive_priorities():
    assert is_preemptive(PRIORITY_PREEMPT)
    assert is_preemptive(PRIORITY_PREEMPT_HIGH)
    assert not is_preemptive(5)
    assert not is_preemptive(PRIORITY_NORMAL)
    assert not is_preemptive(PRIORITY_LOWEST)


def test_outranks_is_irreflexive():
    for p in range(16):
        assert not outranks(p, p)


def test_priority_range_validated():
    with pytest.raises(ValueError):
        effective_priority(16)
    with pytest.raises(ValueError):
        pack_flags_priority(False, False, False, -1)
    with pytest.raises(ValueError):
        unpack_flags_priority(256)
