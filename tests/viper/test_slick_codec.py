"""Slick-Packets wire codec: alternate blocks, totality, byte pinning.

Three layers of guarantee (ARCHITECTURE §16):

* the alternate-block codec round-trips and rejects nesting — the
  failover DAG is depth-1 by construction at both encode and decode;
* differential fuzz: mutated slick frames decode *totally* (every
  malformed input raises :class:`~repro.viper.errors.DecodeError`,
  never an IndexError/ValueError/crash), and
  :func:`~repro.viper.wire.alt_block_span` never disagrees with
  :func:`~repro.viper.wire.decode_alt_block` about where a block ends;
* non-slick frames are **byte-identical** to the pre-slick encoding —
  pinned against hard-coded golden bytes, so the flag-gated feature
  provably costs absent traffic nothing on the wire.
"""

import random

import pytest

from repro.viper.errors import DecodeError, SegmentLimitError
from repro.viper.packet import (
    SirpentPacket,
    TrailerElement,
    decode_packet,
    encode_packet,
)
from repro.viper.wire import (
    ALT_COUNT_BYTES,
    MAX_SEGMENTS,
    HeaderSegment,
    alt_block_span,
    decode_alt_block,
    decode_alt_blocks,
    decode_segment,
    encode_alt_block,
    encode_alt_blocks,
    encode_segment,
    parse_segment_view,
    slick_count,
)


def _alt(ports):
    return [HeaderSegment(port=p) for p in ports]


# -- block codec -------------------------------------------------------------


def test_alt_block_roundtrip():
    block = [
        HeaderSegment(port=7, priority=2, token=b"\x01\x02"),
        HeaderSegment(port=9, portinfo=b"\xaa\xbb\xcc"),
        HeaderSegment(port=0),
    ]
    encoded = encode_alt_block(block)
    assert encoded[0] == 3
    decoded, end = decode_alt_block(encoded)
    assert decoded == block
    assert end == len(encoded)
    assert alt_block_span(encoded) == len(encoded)


def test_alt_blocks_roundtrip_in_route_order():
    blocks = [_alt([4, 5]), _alt([6]), _alt([7, 8, 9])]
    encoded = encode_alt_blocks(blocks)
    decoded, end = decode_alt_blocks(encoded, len(blocks))
    assert decoded == blocks
    assert end == len(encoded)


def test_empty_block_rejected_both_directions():
    with pytest.raises(SegmentLimitError):
        encode_alt_block([])
    with pytest.raises(DecodeError):
        decode_alt_block(bytes([0]))


def test_oversized_block_rejected_both_directions():
    too_many = _alt([1] * (MAX_SEGMENTS + 1))
    with pytest.raises(SegmentLimitError):
        encode_alt_block(too_many)
    claim = bytes([MAX_SEGMENTS + 1]) + encode_segment(HeaderSegment(port=1))
    with pytest.raises(DecodeError):
        decode_alt_block(claim)
    with pytest.raises(DecodeError):
        alt_block_span(claim)


def test_nested_slick_rejected_both_directions():
    """The failover DAG is depth-1: no slick inside an alternate."""
    nested = [HeaderSegment(port=3, slick=True)]
    with pytest.raises(SegmentLimitError):
        encode_alt_block(nested)
    # Hand-craft the wire form the encoder refuses to produce.
    raw = bytes([1]) + encode_segment(HeaderSegment(port=3, slick=True))
    with pytest.raises(DecodeError):
        decode_alt_block(raw)
    with pytest.raises(DecodeError):
        alt_block_span(raw)


def test_slick_flag_survives_segment_roundtrip_and_views():
    segment = HeaderSegment(port=12, priority=3, slick=True, token=b"\x9f")
    encoded = encode_segment(segment)
    decoded, _ = decode_segment(encoded)
    assert decoded.slick
    assert decoded == segment
    view = parse_segment_view(encoded)
    assert view.slick
    assert view.to_segment() == segment
    assert segment.copy(priority=1).slick  # copy() carries the flag


def test_slick_count():
    segments = [
        HeaderSegment(port=1, slick=True),
        HeaderSegment(port=2),
        HeaderSegment(port=3, slick=True),
    ]
    assert slick_count(segments) == 2
    assert slick_count([]) == 0


# -- packet layer ------------------------------------------------------------


def _slick_packet():
    return SirpentPacket(
        segments=[
            HeaderSegment(port=2, slick=True),
            HeaderSegment(port=1),
            HeaderSegment(port=0),
        ],
        payload_size=5,
        payload=b"hello",
        alternates=[_alt([3, 1, 0])],
    )


def test_slick_packet_roundtrip():
    packet = _slick_packet()
    wire = encode_packet(packet, b"hello")
    assert len(wire) == packet.wire_size()
    decoded, payload = decode_packet(wire, segment_count=3)
    assert decoded.segments == packet.segments
    assert decoded.alternates == packet.alternates
    assert payload == b"hello"


def test_block_count_must_match_slick_count():
    packet = _slick_packet()
    packet.alternates = []  # slick segment with no block
    with pytest.raises(SegmentLimitError):
        encode_packet(packet)
    packet = _slick_packet()
    packet.segments[0] = packet.segments[0].copy(slick=False)
    with pytest.raises(SegmentLimitError):  # block with no slick segment
        encode_packet(packet)


def test_advance_consumes_leading_alt_block():
    packet = _slick_packet()
    packet.advance(HeaderSegment(port=4, rpf=True))
    assert not packet.alternates
    assert [s.port for s in packet.segments] == [1, 0]


def test_apply_slick_reroute_replaces_route_and_drops_blocks():
    packet = _slick_packet()
    packet.apply_slick_reroute(packet.alternates[0])
    assert [s.port for s in packet.segments] == [3, 1, 0]
    assert packet.alternates == []
    assert not any(s.slick for s in packet.segments)


# -- differential fuzz -------------------------------------------------------


def test_mutated_slick_frames_decode_totally():
    """Any byte mutation either decodes or raises DecodeError — never a
    crash — and span arithmetic always agrees with object decoding."""
    rng = random.Random(0x516C)
    base = encode_packet(_slick_packet())
    header_len = sum(s.wire_size() for s in _slick_packet().segments)
    for trial in range(2000):
        mutated = bytearray(base)
        for _ in range(rng.randint(1, 4)):
            mutated[rng.randrange(len(mutated))] = rng.randrange(256)
        if rng.random() < 0.3:
            mutated = mutated[:rng.randrange(len(mutated))]
        data = bytes(mutated)
        try:
            decode_packet(data, segment_count=3)
        except DecodeError:
            pass
        # The alt-block walkers must be total over the mutated tail
        # as well, and the arithmetic twin must agree byte-for-byte.
        try:
            _, end = decode_alt_block(data, header_len)
        except DecodeError:
            end = None
        try:
            span = alt_block_span(data, header_len)
        except DecodeError:
            span = None
        assert span == end, (
            f"trial {trial}: alt_block_span={span} but "
            f"decode_alt_block end={end}"
        )


def test_truncated_slick_frames_raise_cleanly():
    wire = encode_packet(_slick_packet())
    for cut in range(len(wire)):
        try:
            decode_packet(wire[:cut], segment_count=3)
        except DecodeError:
            pass


# -- non-slick byte identity (the pre-PR pin) --------------------------------

#: encode_packet() of the packet below, captured BEFORE the slick
#: extension existed.  The slick feature is flag-gated: a route with no
#: slick segments must keep producing these exact bytes forever.
GOLDEN_NON_SLICK = bytes.fromhex(
    "0002028200000000018004000000000000000000000000000001220004"
)


def _golden_packet():
    packet = SirpentPacket(
        segments=[
            HeaderSegment(port=2, priority=2, vnt=True, token=b"\x00\x00"),
            HeaderSegment(port=1, priority=0, vnt=True),
            HeaderSegment(port=0, priority=0, rpf=False, vnt=False,
                          portinfo=b"\x00\x00\x00\x00"),
        ],
        payload_size=5,
        payload=b"hello",
    )
    packet.trailer.append(
        TrailerElement(HeaderSegment(port=1, priority=2, rpf=True))
    )
    return packet


def test_non_slick_encoding_byte_identical_to_pre_slick_pin():
    wire = encode_packet(_golden_packet())
    assert wire == GOLDEN_NON_SLICK, (
        "non-slick wire encoding drifted from the pre-slick golden bytes"
    )


def test_non_slick_segment_encoding_unchanged():
    """Segment-level pin: no slick flag -> flags nibble bit 0 stays 0."""
    segment = HeaderSegment(port=0xAB, priority=3, vnt=True,
                            token=b"\x01\x02", portinfo=b"\x0a\x0b\x0c")
    encoded = encode_segment(segment)
    assert encoded == bytes.fromhex("0302ab830102" + "0a0b0c")
    assert not (encoded[3] >> 4) & 0x1
