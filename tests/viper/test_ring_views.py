"""Buffer rings and zero-copy views: differential against the codec.

Three contracts, all pinned differentially against the materialising
oracle (:func:`decode_segment` / :class:`HeaderSegment`):

* :func:`parse_segment_view` accepts exactly what ``decode_segment``
  accepts, rejects exactly what it rejects, and agrees on every field
  and on the strip boundary — over randomized segments including the
  255 length-escape;
* :class:`PacketView` in-place edits (append, write_at) are equivalent
  to the same edits on materialised bytes;
* :class:`BufferRing` recycling is single-holder: a released slot's
  generation bump makes any escaped view detectably dead
  (``alive() is False``) before the slot can be handed out again.
"""

import random

import pytest

from repro.viper.errors import ViperDecodeError
from repro.viper.ring import BufferRing, RingSlot
from repro.viper.wire import (
    HeaderSegment,
    PacketView,
    decode_segment,
    encode_segment,
    parse_segment_view,
    segment_span,
)


def _random_segment(rng):
    def blob(max_len):
        n = rng.choice((0, 1, rng.randrange(8), 200, 255, 300))
        n = min(n, max_len)
        return bytes(rng.randrange(256) for _ in range(n))

    return HeaderSegment(
        port=rng.randrange(256),
        priority=rng.randrange(16),
        vnt=rng.random() < 0.3,
        dib=rng.random() < 0.3,
        rpf=rng.random() < 0.3,
        token=blob(300),
        portinfo=blob(300),
    )


class TestSegmentViewParity:
    def test_fuzz_parse_agrees_with_decode(self):
        rng = random.Random(0x51129E47)
        for trial in range(500):
            segment = _random_segment(rng)
            pad = rng.randrange(8)
            buffer = bytes(rng.randrange(256) for _ in range(pad))
            buffer += encode_segment(segment) + b"\xEE" * rng.randrange(5)
            oracle, next_offset = decode_segment(buffer, pad)
            for backing in (buffer, bytearray(buffer), memoryview(buffer)):
                view = parse_segment_view(backing, pad)
                assert view.end == next_offset == segment_span(buffer, pad)
                assert (view.port, view.priority) == (oracle.port, oracle.priority)
                assert (view.vnt, view.dib, view.rpf) == (
                    oracle.vnt, oracle.dib, oracle.rpf
                )
                assert view.token == oracle.token
                assert view.portinfo == oracle.portinfo
                assert view.wire_size() == oracle.wire_size()
                assert view.to_segment() == oracle

    def test_fuzz_rejects_what_decode_rejects(self):
        rng = random.Random(0xBADC0DE5)
        rejected = 0
        for trial in range(500):
            segment = _random_segment(rng)
            good = bytearray(encode_segment(segment))
            # Random single-byte mutation or truncation.
            if rng.random() < 0.5 and len(good) > 1:
                good = good[:rng.randrange(1, len(good))]
            else:
                good[rng.randrange(len(good))] ^= 1 << rng.randrange(8)
            bad = bytes(good)
            try:
                oracle = decode_segment(bad, 0)
            except ViperDecodeError:
                oracle = None
                rejected += 1
            if oracle is None:
                with pytest.raises(ViperDecodeError):
                    parse_segment_view(bad, 0)
            else:
                view = parse_segment_view(bad, 0)
                assert view.to_segment() == oracle[0]
        assert rejected > 50  # the fuzz actually exercised rejection

    def test_copy_materialises_with_overrides(self):
        encoded = encode_segment(HeaderSegment(port=9, token=b"tok"))
        view = parse_segment_view(encoded)
        assert view.copy(priority=3) == HeaderSegment(
            port=9, token=b"tok", priority=3
        )


class TestPacketViewEdits:
    def test_append_and_write_at_match_bytes_edits(self):
        rng = random.Random(7)
        ring = BufferRing(slots=2, slot_bytes=256)
        for _ in range(50):
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(100)))
            slot = ring.acquire()
            slot.buffer[: len(payload)] = payload
            view = PacketView.of_slot(slot, len(payload))
            shadow = bytearray(payload)

            extra = bytes(rng.randrange(256) for _ in range(rng.randrange(40)))
            assert view.append(extra)
            shadow += extra
            if len(shadow) >= 4:
                at = rng.randrange(len(shadow) - 3)
                view.write_at(at, b"\x01\x02\x03")
                shadow[at:at + 3] = b"\x01\x02\x03"
            assert view.tobytes() == bytes(shadow)
            view.release()

    def test_append_refuses_without_tailroom_and_leaves_view_untouched(self):
        ring = BufferRing(slots=1, slot_bytes=16)
        slot = ring.acquire()
        view = PacketView.of_slot(slot, 10)
        before = view.tobytes()
        assert not view.append(b"x" * 7)  # 10 + 7 > 16
        assert (view.start, view.end) == (0, 10)
        assert view.tobytes() == before
        assert view.append(b"x" * 6)
        assert view.end == 16

    def test_write_at_bounds_checked(self):
        ring = BufferRing(slots=1, slot_bytes=32)
        view = PacketView.of_slot(ring.acquire(), 8)
        with pytest.raises(ValueError):
            view.write_at(6, b"abc")  # escapes past end


class TestRingRecycling:
    def test_released_views_die_before_slot_reuse(self):
        """No view may escape its ring slot alive across a recycle."""
        ring = BufferRing(slots=4, slot_bytes=64)
        slot = ring.acquire()
        view = PacketView.of_slot(slot, 16)
        assert view.alive()
        view.release()
        assert not view.alive()
        # LIFO reuse hands the same slot back; the old view must still
        # read as dead even though the slot is in use again.
        again = ring.acquire()
        assert again is slot
        fresh = PacketView.of_slot(again, 16)
        assert fresh.alive()
        assert not view.alive()

    def test_double_release_is_refused(self):
        ring = BufferRing(slots=2, slot_bytes=64)
        slot = ring.acquire()
        ring.release(slot)
        with pytest.raises(ValueError):
            ring.release(slot)

    def test_exhaustion_mints_unpooled_slots(self):
        ring = BufferRing(slots=2, slot_bytes=64)
        held = [ring.acquire() for _ in range(5)]
        assert ring.stats.exhaustions == 3
        overflow = held[-1]
        assert not overflow.pooled
        for slot in held:
            ring.release(slot)
        # Unpooled slots are not re-admitted to the free list.
        assert ring.available() == 2

    def test_stats_balance(self):
        ring = BufferRing(slots=8, slot_bytes=64)
        slots = [ring.acquire() for _ in range(6)]
        for slot in slots:
            ring.release(slot)
        assert ring.stats.acquires == 6
        assert ring.stats.releases == 6
        assert ring.available() == 8

    def test_slot_view_is_the_whole_buffer(self):
        slot = BufferRing(slots=1, slot_bytes=128).acquire()
        assert isinstance(slot, RingSlot)
        assert len(slot.view) == len(slot.buffer) == 128
