"""Unit tests for the compressed Ethernet portInfo (paper footnote 4)."""

import pytest

from repro.net.addresses import ETHERTYPE_SIRPENT, MacAddress
from repro.viper.errors import DecodeError
from repro.viper.portinfo import (
    COMPRESSED_ETHERNET_INFO_BYTES,
    CompressedEthernetInfo,
    EthernetInfo,
)


def macs():
    return MacAddress(0x010203040506), MacAddress(0x0A0B0C0D0E0F)


def test_is_8_bytes():
    dst, _ = macs()
    info = CompressedEthernetInfo(dst=dst)
    assert len(info.to_bytes()) == COMPRESSED_ETHERNET_INFO_BYTES == 8


def test_roundtrip():
    dst, _ = macs()
    info = CompressedEthernetInfo(dst=dst, ethertype=0x1234)
    assert CompressedEthernetInfo.from_bytes(info.to_bytes()) == info


def test_saves_six_bytes_per_hop():
    dst, src = macs()
    full = EthernetInfo(dst=dst, src=src).to_bytes()
    compressed = CompressedEthernetInfo(dst=dst).to_bytes()
    assert len(full) - len(compressed) == 6


def test_expansion_fills_in_router_source():
    """'the router would be responsible for filling in the correct
    Ethernet source address to form a full Ethernet header'."""
    dst, router_mac = macs()
    compressed = CompressedEthernetInfo(dst=dst, ethertype=ETHERTYPE_SIRPENT)
    full = compressed.expanded(router_src=router_mac)
    assert full.dst == dst
    assert full.src == router_mac
    assert full.ethertype == ETHERTYPE_SIRPENT


def test_wrong_length_rejected():
    with pytest.raises(DecodeError):
        CompressedEthernetInfo.from_bytes(b"\x00" * 7)
    with pytest.raises(DecodeError):
        CompressedEthernetInfo.from_bytes(b"\x00" * 14)


class TestEndToEnd:
    def test_compressed_route_delivers_over_ethernet(self):
        """A route built with compressed portInfo crosses Ethernet hops
        (the router resolves the 8-byte form)."""
        from repro.directory import RouteQuery
        from repro.scenarios import build_sirpent_campus

        scenario = build_sirpent_campus()
        full = scenario.directory.query("venus", RouteQuery(
            "milo.lcs.mit.edu",
        ))[0]
        compressed = scenario.directory.query("venus", RouteQuery(
            "milo.lcs.mit.edu", compress_ethernet=True,
        ))[0]
        # The compressed route is smaller on the wire.
        assert compressed.header_overhead() < full.header_overhead()
        got = []
        scenario.hosts["milo"].bind(0, got.append)
        scenario.hosts["venus"].send(compressed, b"compressed", 300)
        scenario.sim.run(until=1.0)
        assert len(got) == 1
        assert got[0].payload == b"compressed"
        assert got[0].packet.hop_log == ["gw-stanford", "gw-mit"]
