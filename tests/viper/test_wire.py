"""Byte-exact tests of the Figure 1 VIPER header segment codec."""

import pytest

from repro.viper.errors import DecodeError, SegmentLimitError
from repro.viper.wire import (
    FIXED_SEGMENT_BYTES,
    HeaderSegment,
    decode_route,
    decode_segment,
    encode_route,
    encode_segment,
    segment_wire_size,
)


def test_minimum_segment_is_32_bits():
    """§5: 'the smallest segment size being 32 bits'."""
    segment = HeaderSegment(port=5)
    encoded = encode_segment(segment)
    assert len(encoded) == 4
    assert segment.wire_size() == 4


def test_figure1_field_positions():
    """Row 1: PortInfoLength | PortTokenLength; row 2: Port | Flags|Prio."""
    segment = HeaderSegment(
        port=0xAB, priority=0x3, vnt=True, token=b"\x01\x02",
        portinfo=b"\x0a\x0b\x0c",
    )
    encoded = encode_segment(segment)
    assert encoded[0] == 3          # PortInfoLength
    assert encoded[1] == 2          # PortTokenLength
    assert encoded[2] == 0xAB       # Port
    assert encoded[3] == 0x83       # VNT (0x8) << 4 | priority 3
    assert encoded[4:6] == b"\x01\x02"      # PortToken precedes PortInfo
    assert encoded[6:9] == b"\x0a\x0b\x0c"


def test_roundtrip_simple():
    segment = HeaderSegment(
        port=17, priority=6, dib=True, rpf=True,
        token=b"tok", portinfo=b"info!",
    )
    decoded, consumed = decode_segment(encode_segment(segment))
    assert decoded == segment
    assert consumed == segment.wire_size()


def test_length_escape_for_long_fields():
    """A length byte of 255 means the true 32-bit length is inline."""
    token = bytes(300)
    segment = HeaderSegment(port=1, token=token)
    encoded = encode_segment(segment)
    assert encoded[1] == 255
    assert int.from_bytes(encoded[4:8], "big") == 300
    decoded, _ = decode_segment(encoded)
    assert decoded.token == token


def test_boundary_field_lengths():
    for length in (0, 1, 254, 255, 256):
        segment = HeaderSegment(port=1, portinfo=bytes(length))
        decoded, consumed = decode_segment(encode_segment(segment))
        assert decoded.portinfo == bytes(length)
        assert consumed == segment_wire_size(0, length)


def test_wire_size_formula_matches_encoding():
    for token_len in (0, 10, 254, 255, 400):
        for info_len in (0, 14, 255):
            segment = HeaderSegment(
                port=9, token=bytes(token_len), portinfo=bytes(info_len)
            )
            assert len(encode_segment(segment)) == segment.wire_size()


def test_truncated_buffer_raises():
    encoded = encode_segment(HeaderSegment(port=1, token=b"abcdef"))
    for cut in range(len(encoded)):
        with pytest.raises(DecodeError):
            decode_segment(encoded[:cut])


def test_decode_at_offset():
    a = encode_segment(HeaderSegment(port=1))
    b = encode_segment(HeaderSegment(port=2, token=b"xy"))
    buffer = a + b
    first, offset = decode_segment(buffer, 0)
    second, end = decode_segment(buffer, offset)
    assert first.port == 1 and second.port == 2
    assert end == len(buffer)


def test_route_roundtrip():
    route = [
        HeaderSegment(port=i, priority=i % 8, vnt=(i % 2 == 0))
        for i in range(1, 11)
    ]
    encoded = encode_route(route)
    decoded, end = decode_route(encoded, len(route))
    assert decoded == route
    assert end == len(encoded)


def test_route_limit_enforced():
    """§2.3: a maximum of 48 header segments."""
    route = [HeaderSegment(port=1) for _ in range(49)]
    with pytest.raises(SegmentLimitError):
        encode_route(route)
    assert encode_route(route[:48])  # 48 is fine


def test_port_range_validated():
    with pytest.raises(ValueError):
        HeaderSegment(port=256)
    with pytest.raises(ValueError):
        HeaderSegment(port=-1)
    with pytest.raises(ValueError):
        HeaderSegment(port=1, priority=16)


def test_copy_with_overrides():
    segment = HeaderSegment(port=3, priority=2, token=b"t")
    clone = segment.copy(port=9)
    assert clone.port == 9
    assert clone.priority == 2 and clone.token == b"t"
    assert segment.port == 3  # original untouched


def test_fixed_part_leads():
    """The fixed 4 bytes come first so cut-through hardware can set up
    while the variable fields are still arriving (§5)."""
    segment = HeaderSegment(port=200, token=bytes(100), portinfo=bytes(100))
    encoded = encode_segment(segment)
    assert encoded[2] == 200  # port visible within the first 4 bytes
    assert FIXED_SEGMENT_BYTES == 4


def test_paper_48_segment_route_fits_500_bytes():
    """§2.3: 'a maximum of 48 header segments (expected to be under 500
    bytes long)' — true for p2p/VNT segments and for plain Ethernet hops
    without tokens (48 x (4 + 0..14/2 mix) — we check the pure-VNT and
    half-Ethernet cases)."""
    vnt_route = [HeaderSegment(port=i % 255 + 1, vnt=True) for i in range(48)]
    assert len(encode_route(vnt_route)) == 192 < 500
    mixed = [
        HeaderSegment(
            port=i % 255 + 1,
            portinfo=bytes(14) if i % 2 == 0 else b"",
            vnt=(i % 2 == 1),
        )
        for i in range(48)
    ]
    assert len(encode_route(mixed)) == 48 * 4 + 24 * 14 < 600
