"""Unit tests for network-specific portInfo formats."""

import pytest

from repro.net.addresses import ETHERTYPE_SIRPENT, MacAddress
from repro.viper.errors import DecodeError
from repro.viper.portinfo import (
    ETHERNET_INFO_BYTES,
    EthernetInfo,
    LogicalInfo,
    parse_ethernet_info,
)


def macs():
    return MacAddress(0x010203040506), MacAddress(0x0A0B0C0D0E0F)


def test_ethernet_info_is_14_bytes():
    dst, src = macs()
    info = EthernetInfo(dst=dst, src=src)
    assert len(info.to_bytes()) == ETHERNET_INFO_BYTES == 14


def test_ethernet_info_roundtrip():
    dst, src = macs()
    info = EthernetInfo(dst=dst, src=src, ethertype=0x1234)
    decoded = EthernetInfo.from_bytes(info.to_bytes())
    assert decoded == info


def test_ethernet_info_layout():
    dst, src = macs()
    data = EthernetInfo(dst=dst, src=src, ethertype=ETHERTYPE_SIRPENT).to_bytes()
    assert data[0:6] == dst.to_bytes()
    assert data[6:12] == src.to_bytes()
    assert int.from_bytes(data[12:14], "big") == ETHERTYPE_SIRPENT


def test_reversed_swaps_addresses():
    """The §2 trailer transform: dst and src swap, type survives."""
    dst, src = macs()
    info = EthernetInfo(dst=dst, src=src, ethertype=0x88B5)
    rev = info.reversed()
    assert rev.dst == src and rev.src == dst
    assert rev.ethertype == info.ethertype
    assert rev.reversed() == info  # involution


def test_wrong_length_rejected():
    with pytest.raises(DecodeError):
        parse_ethernet_info(b"\x00" * 13)
    with pytest.raises(DecodeError):
        parse_ethernet_info(b"\x00" * 15)


def test_bad_ethertype_rejected():
    dst, src = macs()
    with pytest.raises(ValueError):
        EthernetInfo(dst=dst, src=src, ethertype=-1).to_bytes()


def test_logical_info_roundtrip():
    info = LogicalInfo(label=0xBEEF, flow_hint=42)
    decoded = LogicalInfo.from_bytes(info.to_bytes())
    assert decoded == info
    assert len(info.to_bytes()) == LogicalInfo.WIRE_BYTES


def test_logical_info_reversed_is_identity():
    info = LogicalInfo(label=7)
    assert info.reversed() is info


def test_logical_info_validation():
    with pytest.raises(ValueError):
        LogicalInfo(label=1 << 16).to_bytes()
    with pytest.raises(ValueError):
        LogicalInfo(label=1, flow_hint=300).to_bytes()
    with pytest.raises(DecodeError):
        LogicalInfo.from_bytes(b"\x00\x01")
