"""Unit tests for the Sirpent packet and trailer algebra (§2)."""

import random

import pytest

from repro.viper.errors import SegmentLimitError
from repro.viper.packet import (
    SirpentPacket,
    TRUNCATION_MARK,
    TrailerElement,
    build_return_route,
    decode_packet,
    decode_trailer,
    encode_packet,
)
from repro.viper.wire import HeaderSegment


def make_packet(ports=(1, 2, 0), payload=100):
    segments = [HeaderSegment(port=p) for p in ports]
    return SirpentPacket(segments=segments, payload_size=payload)


def test_wire_size_composition():
    packet = make_packet()
    assert packet.wire_size() == 3 * 4 + 100
    packet.trailer.append(TrailerElement(HeaderSegment(port=9)))
    assert packet.wire_size() == 3 * 4 + 100 + (4 + 2)


def test_decision_prefix_is_first_segment():
    packet = make_packet()
    assert packet.decision_prefix_bytes() == 4
    packet.segments[0] = HeaderSegment(port=1, token=b"12345678")
    assert packet.decision_prefix_bytes() == 12


def test_advance_moves_segment_to_trailer():
    packet = make_packet(ports=(1, 2, 0))
    return_segment = HeaderSegment(port=7)
    stripped = packet.advance(return_segment)
    assert stripped.port == 1
    assert [s.port for s in packet.segments] == [2, 0]
    assert packet.trailer_segments() == [return_segment]
    assert packet.hops_taken == 1


def test_size_preserved_when_return_mirrors_forward():
    """The paper's streaming story: a segment leaves the front, a
    same-size reversed element joins the back (plus framing)."""
    packet = make_packet()
    before = packet.wire_size()
    segment = packet.segments[0]
    packet.advance(segment.copy(port=5))
    assert packet.wire_size() == before + 2  # only the trailer length field


def test_truncation_marks_and_cuts():
    packet = make_packet(payload=1000)
    packet.mark_truncated(keep_bytes=300)
    assert packet.truncated
    assert packet.payload_size == 300
    # Marking again never grows the payload and adds no second mark.
    packet.mark_truncated(keep_bytes=500)
    assert packet.payload_size == 300
    assert sum(1 for e in packet.trailer if e is TRUNCATION_MARK) == 1


def test_return_route_reverses_trailer():
    packet = make_packet(ports=(1, 2, 3, 0))
    for return_port in (11, 12, 13):
        packet.advance(HeaderSegment(port=return_port))
    route = build_return_route(packet)
    assert [s.port for s in route] == [13, 12, 11]
    assert all(s.rpf for s in route)


def test_return_route_skips_truncation_mark():
    packet = make_packet(ports=(1, 0), payload=500)
    packet.advance(HeaderSegment(port=9))
    packet.mark_truncated(keep_bytes=100)
    route = build_return_route(packet)
    assert [s.port for s in route] == [9]


def test_segment_limit():
    with pytest.raises(SegmentLimitError):
        SirpentPacket(
            segments=[HeaderSegment(port=1)] * 49, payload_size=0
        )


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        SirpentPacket(segments=[], payload_size=-1)


def test_corrupted_copy_flags_and_preserves_original():
    rng = random.Random(1)
    packet = make_packet()
    clone = packet.corrupted_copy(rng)
    assert clone.corrupted and not packet.corrupted
    assert clone.packet_id != packet.packet_id
    assert packet.segments[0].port == 1  # original untouched


def test_corrupted_copy_sometimes_misroutes():
    rng = random.Random(7)
    ports = set()
    for _ in range(50):
        clone = make_packet().corrupted_copy(rng)
        ports.add(clone.segments[0].port)
    assert len(ports) > 1  # some copies got a flipped port field


def test_packet_ids_unique():
    ids = {make_packet().packet_id for _ in range(100)}
    assert len(ids) == 100


class TestWholePacketCodec:
    def test_roundtrip_with_trailer(self):
        packet = make_packet(ports=(1, 2, 0), payload=64)
        packet.advance(HeaderSegment(port=7, portinfo=bytes(14)))
        packet.advance(HeaderSegment(port=8))
        payload = bytes(range(64))
        encoded = encode_packet(packet, payload)
        decoded, got_payload = decode_packet(encoded, segment_count=1)
        assert got_payload == payload
        assert [s.port for s in decoded.segments] == [0]
        assert [e.segment.port for e in decoded.trailer] == [7, 8]

    def test_roundtrip_with_truncation_mark(self):
        packet = make_packet(ports=(1, 0), payload=200)
        packet.advance(HeaderSegment(port=5))
        packet.mark_truncated(keep_bytes=50)
        encoded = encode_packet(packet)
        decoded, payload = decode_packet(encoded, segment_count=1)
        assert decoded.truncated
        assert len(payload) == 50

    def test_payload_size_mismatch_rejected(self):
        packet = make_packet(payload=10)
        with pytest.raises(ValueError):
            encode_packet(packet, b"wrong length")

    def test_trailer_walk_stops_at_payload(self):
        packet = make_packet(ports=(0,), payload=128)
        packet.trailer.append(TrailerElement(HeaderSegment(port=3)))
        encoded = encode_packet(packet)
        elements, boundary = decode_trailer(encoded)
        assert len(elements) == 1
        assert boundary == 4 + 128  # one segment + payload

    def test_empty_trailer(self):
        packet = make_packet(ports=(0,), payload=16)
        encoded = encode_packet(packet)
        elements, boundary = decode_trailer(encoded)
        assert elements == []
        assert boundary == len(encoded)
