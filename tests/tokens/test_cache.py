"""Unit tests for the router token cache and its three policies (§2.2)."""

import pytest

from repro.tokens.cache import CachePolicy, TokenCache, Verdict
from repro.tokens.capability import TokenMint


@pytest.fixture
def mint():
    return TokenMint(b"secret", issuer="r1")


def make_cache(mint, policy=CachePolicy.OPTIMISTIC, **kwargs):
    return TokenCache(mint, policy=policy, verify_cost=100e-6, **kwargs)


class TestOptimistic:
    def test_first_packet_admitted_without_delay(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1)
        verdict, delay = cache.admit(token, port=2, priority=0, size=100)
        assert verdict is Verdict.FORWARD
        assert delay == 0.0

    def test_entry_cached_after_first_use(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1)
        cache.admit(token, 2, 0, 100)
        assert cache.entry(token) is not None
        assert cache.misses == 1
        cache.admit(token, 2, 0, 100)
        assert cache.hits == 1

    def test_invalid_token_admitted_once_then_rejected(self, mint):
        """Optimistic: 'one or a small number of unauthorized packets
        can be allowed through'."""
        cache = make_cache(mint)
        bad = bytearray(mint.mint(port=2, account=1))
        bad[-1] ^= 1
        bad = bytes(bad)
        first, _ = cache.admit(bad, 2, 0, 100)
        assert first is Verdict.FORWARD  # slipped through
        second, _ = cache.admit(bad, 2, 0, 100)
        assert second is Verdict.REJECT  # cached as invalid

    def test_flood_of_invalid_tokens_switches_to_blocking(self, mint):
        """Footnote 7: excessive invalid tokens end the optimism."""
        cache = make_cache(mint, invalid_switch_threshold=4)
        for index in range(4):
            bad = bytearray(mint.mint(port=2, account=index))
            bad[-1] ^= 1
            verdict, _ = cache.admit(bytes(bad), 2, 0, 100)
            assert verdict is Verdict.FORWARD
        # Next unseen invalid token is checked synchronously and rejected.
        bad = bytearray(mint.mint(port=2, account=99))
        bad[-1] ^= 1
        verdict, delay = cache.admit(bytes(bad), 2, 0, 100)
        assert verdict is Verdict.REJECT


class TestBlocking:
    def test_first_packet_pays_verification(self, mint):
        cache = make_cache(mint, policy=CachePolicy.BLOCKING)
        token = mint.mint(port=2, account=1)
        verdict, delay = cache.admit(token, 2, 0, 100)
        assert verdict is Verdict.FORWARD
        assert delay == pytest.approx(100e-6)

    def test_subsequent_packets_are_free(self, mint):
        cache = make_cache(mint, policy=CachePolicy.BLOCKING)
        token = mint.mint(port=2, account=1)
        cache.admit(token, 2, 0, 100)
        verdict, delay = cache.admit(token, 2, 0, 100)
        assert verdict is Verdict.FORWARD and delay == 0.0

    def test_invalid_rejected_immediately(self, mint):
        cache = make_cache(mint, policy=CachePolicy.BLOCKING)
        bad = bytearray(mint.mint(port=2, account=1))
        bad[-1] ^= 1
        verdict, _ = cache.admit(bytes(bad), 2, 0, 100)
        assert verdict is Verdict.REJECT


class TestDrop:
    def test_first_packet_dropped_but_cached(self, mint):
        cache = make_cache(mint, policy=CachePolicy.DROP)
        token = mint.mint(port=2, account=1)
        verdict, _ = cache.admit(token, 2, 0, 100)
        assert verdict is Verdict.REJECT
        # The retry is then admitted from cache.
        verdict, delay = cache.admit(token, 2, 0, 100)
        assert verdict is Verdict.FORWARD and delay == 0.0


class TestAuthorizationChecks:
    def test_wrong_port_rejected(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1)
        cache.admit(token, 2, 0, 100)  # install
        verdict, _ = cache.admit(token, 3, 0, 100)
        assert verdict is Verdict.REJECT

    def test_excess_priority_rejected(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1, max_priority=3)
        cache.admit(token, 2, 0, 100)
        verdict, _ = cache.admit(token, 2, 7, 100)
        assert verdict is Verdict.REJECT

    def test_byte_limit_enforced(self, mint):
        """'optionally a limit on resource usage authorized by this
        token' — usage beyond the budget is rejected."""
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1, byte_limit=250)
        assert cache.admit(token, 2, 0, 100)[0] is Verdict.FORWARD
        assert cache.admit(token, 2, 0, 100)[0] is Verdict.FORWARD
        assert cache.admit(token, 2, 0, 100)[0] is Verdict.REJECT

    def test_missing_token_with_requirement(self, mint):
        cache = make_cache(mint, require_tokens=True)
        verdict, _ = cache.admit(b"", 2, 0, 100)
        assert verdict is Verdict.REJECT

    def test_missing_token_without_requirement(self, mint):
        cache = make_cache(mint, require_tokens=False)
        verdict, delay = cache.admit(b"", 2, 0, 100)
        assert verdict is Verdict.FORWARD and delay == 0.0


class TestAccounting:
    def test_usage_charged_to_token_account(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=77)
        cache.admit(token, 2, 0, 100)
        cache.admit(token, 2, 0, 150)
        usage = cache.ledger.usage(77)
        assert usage.packets == 2
        assert usage.bytes == 250

    def test_flush_discards_soft_state(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1)
        cache.admit(token, 2, 0, 100)
        assert len(cache) == 1
        cache.flush()
        assert len(cache) == 0

    def test_hit_rate(self, mint):
        cache = make_cache(mint)
        token = mint.mint(port=2, account=1)
        cache.admit(token, 2, 0, 1)
        cache.admit(token, 2, 0, 1)
        cache.admit(token, 2, 0, 1)
        assert cache.hit_rate() == pytest.approx(2 / 3)
