"""Unit tests for the accounting ledger (§2.2)."""


from repro.tokens.accounting import AccountLedger, UsageRecord


def test_charges_accumulate():
    ledger = AccountLedger("r1")
    ledger.charge(account=1, size=100, priority=0)
    ledger.charge(account=1, size=200, priority=3)
    ledger.charge(account=2, size=50, priority=0)
    assert ledger.usage(1).packets == 2
    assert ledger.usage(1).bytes == 300
    assert ledger.usage(2).bytes == 50
    assert ledger.total_bytes() == 350
    assert ledger.accounts() == [1, 2]


def test_unknown_account_is_empty():
    ledger = AccountLedger()
    usage = ledger.usage(99)
    assert usage.packets == 0 and usage.bytes == 0


def test_per_priority_breakdown():
    ledger = AccountLedger()
    for _ in range(3):
        ledger.charge(1, 10, priority=0)
    ledger.charge(1, 10, priority=7)
    record = ledger.usage(1)
    assert record.by_priority == {0: 3, 7: 1}


def test_reverse_charges_tracked():
    ledger = AccountLedger()
    ledger.charge(1, 10, priority=0, reverse=True)
    ledger.charge(1, 10, priority=0, reverse=False)
    assert ledger.usage(1).reverse_packets == 1


def test_high_priority_costs_more():
    """§5: 'use of high priorities may be limited by simply charging
    more for higher priority packets'."""
    ledger = AccountLedger(price_per_byte=1.0)
    ledger.charge(1, 100, priority=0)
    ledger.charge(2, 100, priority=7)
    assert ledger.bill(2) > ledger.bill(1)


def test_background_priority_costs_less():
    ledger = AccountLedger(price_per_byte=1.0)
    ledger.charge(1, 100, priority=0)
    ledger.charge(2, 100, priority=0xF)
    assert ledger.bill(2) < ledger.bill(1)


def test_bill_for_unknown_account_is_zero():
    assert AccountLedger().bill(5) == 0.0


def test_usage_record_charge():
    record = UsageRecord()
    record.charge(500, priority=2)
    assert record.packets == 1 and record.bytes == 500
    assert record.by_priority == {2: 1}
