"""Unit tests for token minting and verification (§2.2)."""

import pytest

from repro.tokens.capability import (
    InvalidTokenError,
    TOKEN_BYTES,
    TokenClaims,
    TokenMint,
    WILDCARD_PORT,
)


@pytest.fixture
def mint():
    return TokenMint(b"router-secret", issuer="r1")


def test_token_is_fixed_size(mint):
    token = mint.mint(port=3, account=42)
    assert len(token) == TOKEN_BYTES


def test_mint_verify_roundtrip(mint):
    token = mint.mint(
        port=3, account=42, max_priority=5, byte_limit=1000,
        reverse_ok=True, expiry_ms=99999,
    )
    claims = mint.verify(token, now_ms=10)
    assert claims.port == 3
    assert claims.account == 42
    assert claims.max_priority == 5
    assert claims.byte_limit == 1000
    assert claims.reverse_ok is True
    assert claims.expiry_ms == 99999


def test_forged_seal_rejected(mint):
    token = bytearray(mint.mint(port=3, account=42))
    token[-1] ^= 0xFF
    with pytest.raises(InvalidTokenError):
        mint.verify(bytes(token))


def test_tampered_claims_rejected(mint):
    """Raising one's own priority ceiling must break the seal."""
    token = bytearray(mint.mint(port=3, account=42, max_priority=2))
    token[1] = 7  # max_priority byte
    with pytest.raises(InvalidTokenError):
        mint.verify(bytes(token))


def test_other_mint_cannot_verify(mint):
    other = TokenMint(b"different-secret", issuer="r2")
    token = mint.mint(port=3, account=42)
    with pytest.raises(InvalidTokenError):
        other.verify(token)


def test_expired_token_rejected(mint):
    token = mint.mint(port=1, account=1, expiry_ms=1000)
    assert mint.verify(token, now_ms=1000)
    with pytest.raises(InvalidTokenError):
        mint.verify(token, now_ms=1001)


def test_zero_expiry_never_expires(mint):
    token = mint.mint(port=1, account=1, expiry_ms=0)
    assert mint.verify(token, now_ms=1 << 40)


def test_wrong_size_rejected(mint):
    with pytest.raises(InvalidTokenError):
        mint.verify(b"short")


def test_peek_decodes_without_seal_check(mint):
    token = bytearray(mint.mint(port=9, account=7))
    token[-1] ^= 0xFF  # break the seal
    claims = TokenMint.peek(bytes(token))
    assert claims.port == 9  # structure still readable


def test_port_authorization():
    claims = TokenClaims(port=5, max_priority=7, account=1)
    assert claims.authorizes_port(5)
    assert not claims.authorizes_port(6)
    wildcard = TokenClaims(port=WILDCARD_PORT, max_priority=7, account=1)
    assert wildcard.authorizes_port(1) and wildcard.authorizes_port(254)


def test_priority_authorization():
    claims = TokenClaims(port=1, max_priority=3, account=1)
    assert claims.authorizes_priority(0)
    assert claims.authorizes_priority(3)
    assert not claims.authorizes_priority(4)
    assert not claims.authorizes_priority(7)
    # Low priorities (high bit set) are always within any authorization.
    assert claims.authorizes_priority(0x8)
    assert claims.authorizes_priority(0xF)


def test_mint_validates_arguments(mint):
    with pytest.raises(ValueError):
        mint.mint(port=256, account=1)
    with pytest.raises(ValueError):
        mint.mint(port=1, account=1 << 32)
    with pytest.raises(ValueError):
        mint.mint(port=1, account=1, max_priority=16)
    with pytest.raises(ValueError):
        mint.mint(port=1, account=1, byte_limit=-5)
    with pytest.raises(ValueError):
        TokenMint(b"", issuer="no-secret")


def test_tokens_differ_per_claims(mint):
    assert mint.mint(port=1, account=1) != mint.mint(port=2, account=1)
    assert mint.mint(port=1, account=1) != mint.mint(port=1, account=2)
