"""The benchmark suite's own integrity.

Every bench file must appear in the standalone runner's registry and in
the documentation's experiment index, so nothing silently drops out of
the reproduction.
"""

import os
import re

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _bench_modules():
    return sorted(
        name[:-3] for name in os.listdir(BENCH_DIR)
        if name.startswith("bench_") and name.endswith(".py")
    )


def test_run_all_registry_is_complete():
    with open(os.path.join(BENCH_DIR, "run_all.py")) as handle:
        registry = handle.read()
    missing = [m for m in _bench_modules() if f'"{m}"' not in registry]
    assert not missing, f"run_all.py is missing: {missing}"


def test_experiments_md_mentions_every_bench():
    with open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")) as handle:
        text = handle.read()
    missing = [m for m in _bench_modules() if m not in text]
    assert not missing, f"EXPERIMENTS.md is missing: {missing}"


def test_each_bench_has_exactly_one_bench_function():
    for module in _bench_modules():
        with open(os.path.join(BENCH_DIR, f"{module}.py")) as handle:
            text = handle.read()
        functions = re.findall(r"^def (bench_\w+)", text, re.MULTILINE)
        assert len(functions) == 1, (module, functions)
        # The function name carries the module's experiment id.
        assert functions[0].split("_")[1] == module.split("_")[1], module


def test_each_bench_publishes_a_results_table():
    for module in _bench_modules():
        with open(os.path.join(BENCH_DIR, f"{module}.py")) as handle:
            text = handle.read()
        assert "publish(" in text, f"{module} never publishes its table"
