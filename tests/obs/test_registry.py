"""Unit tests for the unified metrics registry."""

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)


class TestPrimitives:
    def test_counter_is_the_sim_counter(self):
        from repro.sim.monitor import Counter as SimCounter
        assert SimCounter is Counter  # one implementation, two names

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 6.0
        (sample,) = list(gauge.samples())
        assert sample.name == "depth"
        assert sample.value == 6.0

    def test_histogram_exposition_is_summary_shaped(self):
        hist = Histogram("delay")
        for v in (1.0, 2.0, 3.0):
            hist.add(v)
        samples = {s.key(): s.value for s in hist.samples_for_exposition()}
        assert samples['delay{quantile="0.5"}'] == 2.0
        assert samples["delay_sum"] == pytest.approx(6.0)
        assert samples["delay_count"] == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("forwarded", node="r1")
        b = registry.counter("forwarded", node="r1")
        other = registry.counter("forwarded", node="r2")
        assert a is b
        assert a is not other

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_illegal_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_namespace_prefixes(self):
        registry = MetricsRegistry(namespace="live")
        counter = registry.counter("frames_in")
        assert counter.name == "live_frames_in"

    def test_adopt_existing_metric_with_labels(self):
        registry = MetricsRegistry()
        counter = Counter("forwarded")
        counter.add(3)
        registry.register(counter, node="r1")
        snap = registry.snapshot()
        assert snap['forwarded{node="r1"}'] == 3.0

    def test_collector_called_at_scrape_time(self):
        registry = MetricsRegistry()
        state = {"v": 1.0}
        registry.register_collector(
            lambda: [Sample("pull", (), state["v"])]
        )
        assert registry.snapshot()["pull"] == 1.0
        state["v"] = 9.0
        assert registry.snapshot()["pull"] == 9.0

    def test_snapshot_keys_include_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", node="a", port="2").add(7)
        assert registry.snapshot() == {'hits{node="a",port="2"}': 7.0}

    def test_label_values_escaped(self):
        sample = Sample("m", (("who", 'say "hi"\n'),), 1.0)
        assert sample.key() == 'm{who="say \\"hi\\"\\n"}'


class TestPrometheusRendering:
    def test_type_lines_and_values(self):
        registry = MetricsRegistry()
        registry.counter("forwarded", node="r1").add(2)
        registry.gauge("qdepth", node="r1").set(1.5)
        hist = registry.histogram("delay", node="r1")
        hist.add(0.5)
        text = registry.render_prometheus()
        assert "# TYPE forwarded counter" in text
        assert "# TYPE qdepth gauge" in text
        assert "# TYPE delay summary" in text
        assert 'forwarded{node="r1"} 2' in text
        assert 'qdepth{node="r1"} 1.5' in text
        assert 'delay_count{node="r1"} 1' in text
        assert text.endswith("\n")

    def test_each_type_line_emitted_once(self):
        registry = MetricsRegistry()
        registry.counter("forwarded", node="r1").add(1)
        registry.counter("forwarded", node="r2").add(1)
        text = registry.render_prometheus()
        assert text.count("# TYPE forwarded counter") == 1


class TestAdapters:
    def test_router_stats_names_preserved(self):
        from repro.core.router import RouterStats
        from repro.obs.adapters import router_stats_samples

        stats = RouterStats()
        stats.forwarded.add(4)
        stats.dropped_no_route.add(1)
        stats.router_delay.add(1e-6)
        snap = {
            s.key(): s.value for s in router_stats_samples(stats, "r1")
        }
        assert snap['forwarded{node="r1"}'] == 4.0
        assert snap['drop_no_route{node="r1"}'] == 1.0
        assert snap['router_delay_count{node="r1"}'] == 1.0

    def test_endpoint_metrics_names_preserved(self):
        from repro.live.metrics import EndpointMetrics
        from repro.obs.adapters import endpoint_metrics_samples

        metrics = EndpointMetrics("h1")
        metrics.record_in(100)
        metrics.drop("no_route")
        snap = {
            s.key(): s.value for s in endpoint_metrics_samples(metrics)
        }
        assert snap['frames_in{node="h1"}'] == 1.0
        assert snap['bytes_in{node="h1"}'] == 100.0
        assert snap['drop_no_route{node="h1"}'] == 1.0
