"""Unit tests for the trace report CLI (``python -m repro.obs.report``)."""

from repro.obs.report import (
    load_ndjson,
    main,
    render_drop_reasons,
    render_trace,
    render_tree,
)
from repro.obs.trace import Tracer


def _exported(tmp_path):
    """One delivered and one dropped trace round-tripped through NDJSON."""
    tracer = Tracer()
    tid = tracer.begin("h1", 0.0)
    tracer.event(tid, 1e-4, "r1", "cut_through_start", in_port=1)
    tracer.event(tid, 1.2e-4, "r1", "strip_reverse_append", out_port=2)
    tracer.deliver(tid, 3e-4, "h2", socket=0)
    dropped = tracer.begin("h1", 1.0)
    tracer.event(dropped, 1.1, "r1", "switch_decision")
    tracer.drop(dropped, 1.2, "r1", "no_route", port=9)
    path = str(tmp_path / "traces.ndjson")
    tracer.export_ndjson(path)
    return path, tid, dropped


class TestLoad:
    def test_roundtrip_preserves_records(self, tmp_path):
        path, tid, dropped = _exported(tmp_path)
        records = {r.trace_id: r for r in load_ndjson(path)}
        assert set(records) == {tid, dropped}
        ok = records[tid]
        assert ok.status == "delivered"
        assert [e.name for e in ok.events] == [
            "send", "cut_through_start", "strip_reverse_append", "deliver",
        ]
        assert ok.events[2].attrs == {"out_port": 2}
        bad = records[dropped]
        assert bad.status == "dropped"
        assert bad.drop_reason == "no_route"

    def test_orphan_events_adopt_a_record(self, tmp_path):
        path = tmp_path / "orphan.ndjson"
        path.write_text(
            '{"type": "event", "trace_id": 7, "t": 0.5, '
            '"node": "r9", "event": "x"}\n'
        )
        (record,) = load_ndjson(str(path))
        assert record.trace_id == 7
        assert record.source == "r9"
        assert record.started == 0.5


class TestRendering:
    def test_trace_breakdown_has_one_line_per_span(self, tmp_path):
        path, tid, _ = _exported(tmp_path)
        record = next(r for r in load_ndjson(path) if r.trace_id == tid)
        text = render_trace(record)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {tid:#018x} from h1 [delivered]")
        # h1, r1, h2 — one body line per hop, each with a bar and a %.
        assert len(lines) == 4
        assert all("%" in line for line in lines[1:])
        assert "strip_reverse_append" in text

    def test_drop_table_counts_and_sites(self, tmp_path):
        path, _, _ = _exported(tmp_path)
        text = render_drop_reasons(load_ndjson(path))
        assert "no_route" in text
        assert "r1 x1" in text

    def test_no_drops_is_a_sentence(self):
        assert render_drop_reasons([]) == "no drops recorded"

    def test_tree_indents_parented_layers(self, tmp_path):
        tracer = Tracer()
        tid = tracer.begin("h1", 0.0)
        tracer.event(tid, 1e-4, "directory", "command_received",
                     parent="h1")
        tracer.event(tid, 2e-4, "cluster", "command_route",
                     parent="directory")
        record = tracer.record(tid)
        text = render_tree(record)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {tid:#018x}")
        assert lines[1].lstrip().startswith("h1")
        assert lines[2].startswith("    directory") or (
            "directory" in lines[2]
            and len(lines[2]) - len(lines[2].lstrip())
            < len(lines[3]) - len(lines[3].lstrip())
        )
        # Strictly deepening indentation: one level per layer.
        indents = [len(l) - len(l.lstrip()) for l in lines[1:]]
        assert indents == sorted(indents) and len(set(indents)) == 3


class TestMain:
    def test_exit_zero_and_output(self, tmp_path, capsys):
        path, tid, _ = _exported(tmp_path)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "2 trace(s) loaded" in out
        assert "no_route" in out

    def test_trace_filter_hex(self, tmp_path, capsys):
        path, tid, _ = _exported(tmp_path)
        assert main([path, "--trace", f"{tid:#x}"]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s) loaded" in out

    def test_unknown_trace_id_exits_one(self, tmp_path, capsys):
        path, _, _ = _exported(tmp_path)
        assert main([path, "--trace", "0xdeadbeef"]) == 1

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.ndjson")]) == 2

    def test_limit_elides_extra_traces(self, tmp_path, capsys):
        path, _, _ = _exported(tmp_path)
        assert main([path, "--limit", "1"]) == 0
        assert "1 more not shown" in capsys.readouterr().out

    def test_tree_flag_prints_trees(self, tmp_path, capsys):
        path, tid, _ = _exported(tmp_path)
        assert main([path, "--tree"]) == 0
        out = capsys.readouterr().out
        assert "] tree" in out
        assert "event(s)" in out
