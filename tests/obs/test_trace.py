"""Unit tests for the sampling packet tracer and its exporters."""

import json

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, spans_of


class TestNullTracer:
    def test_begin_returns_untraced(self):
        assert NULL_TRACER.begin("src", 0.0) == 0

    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        tracer.event(1, 0.0, "n", "x")
        tracer.drop(1, 0.0, "n", "reason")
        tracer.deliver(1, 0.0, "n")
        assert tracer.record(1) is None
        assert tracer.enabled is False


class TestSampling:
    def test_sample_every_one_traces_all(self):
        tracer = Tracer(sample_every=1)
        ids = [tracer.begin("s", float(i)) for i in range(5)]
        assert all(ids)
        assert len(set(ids)) == 5
        assert tracer.sampled == 5
        assert tracer.seen == 5

    def test_sample_every_n_is_exact(self):
        tracer = Tracer(sample_every=10)
        ids = [tracer.begin("s", float(i)) for i in range(100)]
        assert sum(1 for i in ids if i) == 10
        assert ids[0] != 0  # the first send is always sampled
        assert tracer.sampled == 10
        assert tracer.seen == 100

    def test_eviction_bounds_memory(self):
        tracer = Tracer(max_traces=3)
        ids = [tracer.begin("s", float(i)) for i in range(5)]
        assert len(tracer.records) == 3
        assert tracer.record(ids[0]) is None  # oldest evicted
        assert tracer.record(ids[-1]) is not None


class TestRecording:
    def test_lifecycle_delivered(self):
        tracer = Tracer()
        tid = tracer.begin("h1", 0.0)
        tracer.event(tid, 1.0, "r1", "strip_reverse_append", out_port=2)
        tracer.deliver(tid, 2.0, "h2", socket=5)
        record = tracer.record(tid)
        assert record.status == "delivered"
        assert [e.name for e in record.events] == [
            "send", "strip_reverse_append", "deliver",
        ]
        assert record.total == 2.0

    def test_lifecycle_dropped(self):
        tracer = Tracer()
        tid = tracer.begin("h1", 0.0)
        tracer.drop(tid, 1.0, "r1", "no_route", port=9)
        record = tracer.record(tid)
        assert record.status == "dropped"
        assert record.drop_reason == "no_route"

    def test_id_zero_is_discarded(self):
        tracer = Tracer(sample_every=2)
        tracer.begin("h1", 0.0)
        tracer.event(0, 1.0, "r1", "x")
        tracer.drop(0, 1.0, "r1", "y")
        tracer.deliver(0, 1.0, "h2")
        assert len(tracer.records) == 1

    def test_unknown_id_adopted_midflight(self):
        tracer = Tracer()
        tracer.event(0xABC, 5.0, "r1", "strip_reverse_append")
        record = tracer.record(0xABC)
        assert record is not None
        assert record.source == "r1"

    def test_spans_group_consecutive_same_node_events(self):
        tracer = Tracer()
        tid = tracer.begin("h1", 0.0)
        tracer.event(tid, 0.1, "h1", "tx_start")
        tracer.event(tid, 0.5, "r1", "cut_through_start")
        tracer.event(tid, 0.6, "r1", "strip_reverse_append")
        tracer.deliver(tid, 1.0, "h2")
        spans = tracer.spans(tid)
        assert [s.node for s in spans] == ["h1", "r1", "h2"]
        assert spans[1].duration == 0.6 - 0.5


class TestInstall:
    def test_install_prefers_set_tracer(self):
        class WithSetter:
            def __init__(self):
                self.installed = None

            def set_tracer(self, tracer):
                self.installed = tracer

        class WithAttr:
            tracer = NULL_TRACER

        setter, plain = WithSetter(), WithAttr()
        tracer = Tracer().install(setter, plain)
        assert setter.installed is tracer
        assert plain.tracer is tracer


class TestExport:
    def _traced(self):
        tracer = Tracer()
        tid = tracer.begin("h1", 0.0)
        tracer.event(tid, 1e-4, "r1", "strip_reverse_append", out_port=2)
        tracer.deliver(tid, 2e-4, "h2")
        dropped = tracer.begin("h1", 1.0)
        tracer.drop(dropped, 1.1, "r1", "token_reject")
        return tracer, tid

    def test_ndjson_roundtrip(self, tmp_path):
        tracer, tid = self._traced()
        path = str(tmp_path / "traces.ndjson")
        lines = tracer.export_ndjson(path)
        with open(path) as handle:
            parsed = [json.loads(line) for line in handle]
        assert len(parsed) == lines
        headers = [p for p in parsed if p["type"] == "trace"]
        events = [p for p in parsed if p["type"] == "event"]
        assert {h["status"] for h in headers} == {"delivered", "dropped"}
        assert any(
            e["event"] == "strip_reverse_append"
            and e["attrs"] == {"out_port": 2}
            for e in events
        )

    def test_chrome_export_loads_as_trace_event_json(self, tmp_path):
        tracer, tid = self._traced()
        path = str(tmp_path / "trace.json")
        count = tracer.export_chrome(path)
        with open(path) as handle:
            doc = json.load(handle)
        events = doc["traceEvents"]
        assert len(events) == count
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} >= {"h1", "r1", "h2"}
        drops = [e for e in events if e["ph"] == "i"]
        assert drops and drops[0]["name"] == "drop:token_reject"

    def test_spans_of_empty_record(self):
        from repro.obs.trace import TraceRecord
        assert spans_of(TraceRecord(trace_id=1, source="s", started=0.0)) == []
