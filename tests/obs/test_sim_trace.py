"""End-to-end tracing through the simulator's Sirpent stack.

One traced packet crossing ``src — r1 — r2 — dst`` must decompose into
one span per node it visits, with the router spans carrying the
paper-shaped phase events (cut-through-start / strip-reverse-append)
and the reply riding the *same* trace id back over the reversed
trailer route.
"""

from repro.core.router import RouterConfig
from repro.obs.trace import Tracer
from repro.scenarios import build_sirpent_line
from repro.viper.wire import HeaderSegment


def _traced_line(n_routers=2, **kwargs):
    scenario = build_sirpent_line(n_routers=n_routers, **kwargs)
    tracer = Tracer().install(
        *scenario.hosts.values(), *scenario.routers.values()
    )
    return scenario, tracer


class TestForwardPath:
    def test_one_span_per_hop_with_phase_events(self):
        scenario, tracer = _traced_line()
        src, dst = scenario.hosts["src"], scenario.hosts["dst"]
        delivered = []
        dst.bind(0, delivered.append)
        route = scenario.routes("src", "dst")[0]
        packet = src.send(route, b"hello", 256)
        scenario.sim.run(until=1.0)

        assert delivered
        assert packet.trace_id != 0
        record = tracer.record(packet.trace_id)
        assert record.status == "delivered"
        # Cut-through pipelining interleaves tx_complete events across
        # nodes, so assert the *first-visit* order rather than strictly
        # consecutive spans.
        first_visit = list(dict.fromkeys(e.node for e in record.events))
        assert first_visit == ["src", "r1", "r2", "dst"]
        for router in ("r1", "r2"):
            names = [e.name for e in record.events if e.node == router]
            assert "strip_reverse_append" in names
            assert "cut_through_start" in names or "store_forward_start" in names
        spans = tracer.spans(packet.trace_id)
        assert spans[0].node == "src"
        assert spans[-1].node == "dst"
        assert spans[-1].events[-1].name == "deliver"
        # The trace's total time equals the packet's one-way delay.
        assert record.total == delivered[0].one_way_delay

    def test_reply_continues_the_same_trace(self):
        scenario, tracer = _traced_line()
        src, dst = scenario.hosts["src"], scenario.hosts["dst"]
        replies = []
        src.bind(6, replies.append)
        dst.bind(0, lambda d: dst.send_return(d, b"pong", 64, reply_socket=6))
        route = scenario.routes("src", "dst")[0]
        packet = src.send(route, b"ping", 256)
        scenario.sim.run(until=1.0)

        assert replies
        assert replies[0].packet.trace_id == packet.trace_id
        record = tracer.record(packet.trace_id)
        # Out and back over the reversed trailer route: the first visit
        # to each node runs src r1 r2 dst, and the reply revisits the
        # routers on its way home (tx_complete interleaving means spans
        # are not strictly consecutive under cut-through, so check the
        # visit structure on the raw event stream).
        first_visit = list(dict.fromkeys(e.node for e in record.events))
        assert first_visit == ["src", "r1", "r2", "dst"]
        turn = next(
            i for i, e in enumerate(record.events) if e.name == "send_return"
        )
        return_nodes = list(
            dict.fromkeys(e.node for e in record.events[turn:])
        )
        assert return_nodes == ["dst", "r2", "r1", "src"]
        names = [e.name for e in record.events]
        assert names.count("deliver") == 2
        assert record.status == "delivered"

    def test_sampling_leaves_other_packets_untraced(self):
        scenario, tracer = _traced_line()
        tracer.sample_every = 2
        src, dst = scenario.hosts["src"], scenario.hosts["dst"]
        dst.bind(0, lambda d: None)
        route = scenario.routes("src", "dst")[0]
        packets = [src.send(route, b"x", 64) for _ in range(4)]
        scenario.sim.run(until=1.0)
        traced = [p for p in packets if p.trace_id]
        assert len(traced) == 2
        assert tracer.seen == 4


class TestDropPaths:
    def test_no_route_drop_terminates_the_trace(self):
        scenario, tracer = _traced_line()
        src = scenario.hosts["src"]
        route = scenario.routes("src", "dst")[0]
        # Corrupt the second hop so r1 forwards into a hole.
        bad = [route.segments[0], HeaderSegment(port=99),
               route.segments[-1]]
        route = type(route)(
            destination=route.destination,
            segments=bad,
            first_hop_port=route.first_hop_port,
            first_hop_mac=route.first_hop_mac,
        )
        packet = src.send(route, b"x", 64)
        scenario.sim.run(until=1.0)
        record = tracer.record(packet.trace_id)
        assert record.status == "dropped"
        assert record.drop_reason == "no_route"
        assert record.events[-1].node == "r2"

    def test_queue_events_appear_under_load(self):
        scenario, tracer = _traced_line(n_routers=1, rate_bps=1e6)
        src, dst = scenario.hosts["src"], scenario.hosts["dst"]
        dst.bind(0, lambda d: None)
        route = scenario.routes("src", "dst")[0]
        packets = [src.send(route, b"x", 1000) for _ in range(8)]
        scenario.sim.run(until=2.0)
        all_events = [
            e.name
            for p in packets
            for e in tracer.record(p.trace_id).events
        ]
        assert "enqueue" in all_events  # back-to-back sends must queue
        assert "tx_start" in all_events
        assert "tx_complete" in all_events


class TestStoreAndForward:
    def test_store_forward_phase_named(self):
        scenario, tracer = _traced_line(
            n_routers=1, router_config=RouterConfig(cut_through=False)
        )
        src, dst = scenario.hosts["src"], scenario.hosts["dst"]
        dst.bind(0, lambda d: None)
        route = scenario.routes("src", "dst")[0]
        packet = src.send(route, b"x", 128)
        scenario.sim.run(until=1.0)
        names = [e.name for e in tracer.record(packet.trace_id).events]
        assert "store_forward_start" in names
        assert "cut_through_start" not in names
