"""SLO burn-rate engine and the ``repro.obs.top`` console renderer.

The math under test is the SRE-standard burn rate,
``burn = bad_fraction / (1 - target)``, evaluated per window by
subtracting cumulative history points — so the tests drive a virtual
clock, feed histograms/counters, and assert exact burns.
"""

import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS_S,
    SloEngine,
    SloSpec,
    default_slos,
)
from repro.obs.top import render_report


class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def test_spec_validation():
    with pytest.raises(ValueError):
        SloSpec("x", "unknown", target=0.5)
    with pytest.raises(ValueError):
        SloSpec("x", "latency", target=1.0, metric="m")
    with pytest.raises(ValueError):
        SloSpec("x", "latency", target=0.9)  # no metric
    with pytest.raises(ValueError):
        SloSpec("x", "ratio", target=0.9, total_metric="t")  # no good/bad
    with pytest.raises(ValueError):
        SloSpec("x", "ratio", target=0.9, total_metric="t",
                good_metric="g", bad_metric="b")  # both
    spec = SloSpec("x", "latency", target=0.99, metric="m", threshold=2.0)
    assert spec.error_budget == pytest.approx(0.01)


def test_default_slos_cover_the_required_objectives():
    names = {spec.name for spec in default_slos()}
    assert {
        "delivery_latency", "directory_command_latency",
        "rebind_recovery", "retry_budget",
    } <= names
    for spec in default_slos():
        assert spec.windows_s == DEFAULT_WINDOWS_S


def test_latency_burn_exact():
    registry = MetricsRegistry()
    hist = registry.histogram("transaction_rtt_ms")
    clock = _Clock()
    spec = SloSpec(
        "delivery", "latency", target=0.99,
        metric="transaction_rtt_ms", threshold=2.0, windows_s=(10.0,),
    )
    engine = SloEngine(registry, specs=[spec], clock=clock)
    # 95 good, 5 bad -> bad_fraction 0.05 -> burn 0.05/0.01 = 5.0
    for _ in range(95):
        hist.add(1.0)
    for _ in range(5):
        hist.add(10.0)
    (status,) = engine.evaluate()
    assert status.good == 95 and status.total == 100
    assert status.windows[10.0]["burn"] == pytest.approx(5.0)
    assert status.status == "burn"


def test_latency_matches_namespaced_metric_names():
    registry = MetricsRegistry()
    hist = registry.histogram("live_transaction_rtt_ms")
    hist.add(1.0)
    spec = SloSpec(
        "delivery", "latency", target=0.99,
        metric="transaction_rtt_ms", threshold=2.0, windows_s=(10.0,),
    )
    engine = SloEngine(registry, specs=[spec], clock=_Clock())
    (status,) = engine.evaluate()
    assert status.total == 1 and status.good == 1


def test_ratio_burn_with_bad_metric():
    registry = MetricsRegistry()
    started = registry.counter("transactions_started")
    retries = registry.counter("transaction_retries")
    spec = SloSpec(
        "retry_budget", "ratio", target=0.90,
        bad_metric="transaction_retries",
        total_metric="transactions_started", windows_s=(60.0,),
    )
    engine = SloEngine(registry, specs=[spec], clock=_Clock())
    for _ in range(50):
        started.add()
    for _ in range(10):
        retries.add()
    # bad fraction 0.2 against a 0.1 budget -> burn 2.0
    (status,) = engine.evaluate()
    assert status.windows[60.0]["burn"] == pytest.approx(2.0)
    assert status.status == "burn"


def test_windowed_burn_forgets_old_badness():
    registry = MetricsRegistry()
    hist = registry.histogram("op_ms")
    clock = _Clock()
    spec = SloSpec(
        "op", "latency", target=0.9, metric="op_ms", threshold=1.0,
        windows_s=(10.0,),
    )
    engine = SloEngine(registry, specs=[spec], clock=clock)
    # An early storm: 10 bad samples at t=0.
    for _ in range(10):
        hist.add(5.0)
    engine.evaluate()
    assert engine.evaluate()[0].worst_burn == pytest.approx(10.0)
    # 100 s later the window holds only fresh, good samples.
    clock.t = 100.0
    for _ in range(20):
        hist.add(0.5)
    engine.evaluate()
    clock.t = 105.0
    (status,) = engine.evaluate()
    assert status.windows[10.0]["total"] == 20
    assert status.worst_burn == 0.0
    assert status.status == "ok"


def test_page_status_at_ten_x_burn():
    registry = MetricsRegistry()
    hist = registry.histogram("op_ms")
    spec = SloSpec(
        "op", "latency", target=0.99, metric="op_ms", threshold=1.0,
        windows_s=(10.0,),
    )
    engine = SloEngine(registry, specs=[spec], clock=_Clock())
    for _ in range(8):
        hist.add(0.5)
    hist.add(99.0)
    hist.add(99.0)  # 20% bad on a 1% budget -> burn 20.0
    (status,) = engine.evaluate()
    assert status.worst_burn == pytest.approx(20.0)
    assert status.status == "page"


def test_report_json_is_canonical_and_complete():
    registry = MetricsRegistry()
    engine = SloEngine(registry, clock=_Clock())
    payload = json.loads(engine.report_json())
    assert payload["type"] == "slo_report"
    assert len(payload["specs"]) == len(default_slos())
    assert len(payload["statuses"]) == len(default_slos())
    for status in payload["statuses"]:
        assert set(status) >= {
            "slo", "target", "status", "worst_burn", "windows",
        }


def test_top_renders_every_slo_and_flags_burn():
    registry = MetricsRegistry()
    hist = registry.histogram("transaction_rtt_ms")
    for _ in range(5):
        hist.add(50.0)  # everything bad: delivery_latency pages
    engine = SloEngine(registry, clock=_Clock())
    text = render_report(engine.report())
    for spec in default_slos():
        assert spec.name in text
    assert "page" in text
    assert "0/0" in text  # specs with no samples yet show empty totals
