"""The flight recorder: ring bounds, dumps, forensics.

Pure unit coverage of :mod:`repro.obs.recorder` — the always-on ring
every live node and the chaos seam append to.  The contract under test:
append order is causal order, the ring is bounded, a dump round-trips
through :func:`load_dump`, and :func:`fault_timeline` reduces a dump to
the onset → detection → promotion → recovery story.
"""

import json

import pytest

from repro.obs.recorder import (
    FlightRecorder,
    NULL_RECORDER,
    NullRecorder,
    fault_timeline,
    load_dump,
)


class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def test_record_preserves_causal_order_and_seq():
    clock = _Clock()
    rec = FlightRecorder(clock=clock)
    rec.record("first", node="a")
    clock.t = 5.0
    rec.record("second", node="b", detail=1)
    clock.t = 2.0  # timestamp goes *backwards*: order must not change
    rec.record("third", node="c")
    events = rec.events()
    assert [e.name for e in events] == ["first", "second", "third"]
    assert [e.seq for e in events] == [1, 2, 3]
    assert events[1].fields == {"detail": 1}


def test_ring_is_bounded_and_counts_evictions():
    rec = FlightRecorder(capacity=4, clock=_Clock())
    for n in range(10):
        rec.record("tick", node="x", n=n)
    assert len(rec) == 4
    assert rec.recorded == 10
    assert [e.fields["n"] for e in rec.events()] == [6, 7, 8, 9]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_events_window_filters_by_time():
    clock = _Clock()
    rec = FlightRecorder(clock=clock)
    for t in (0.0, 1.0, 2.0, 3.0):
        rec.record("tick", node="x", t=t)
    clock.t = 3.0
    recent = rec.events(last_s=1.5)
    assert [e.t for e in recent] == [2.0, 3.0]
    assert [e.t for e in rec.events(last_s=10.0, now=3.0)] == [
        0.0, 1.0, 2.0, 3.0,
    ]


def test_dump_round_trips_through_load_dump(tmp_path):
    clock = _Clock()
    rec = FlightRecorder(clock=clock)
    rec.record("frame_forwarded", node="r1", in_port=1, out_port=2)
    clock.t = 0.5
    rec.record("frame_delivered", node="dst")
    path = tmp_path / "dump.ndjson"
    text = rec.dump_ndjson(path=str(path), reason="unit_test")
    assert path.read_text() == text
    header, events = load_dump(text)
    assert header["reason"] == "unit_test"
    assert header["events"] == 2
    assert header["recorded_total"] == 2
    assert [e["event"] for e in events] == [
        "frame_forwarded", "frame_delivered",
    ]
    assert events[0]["in_port"] == 1 and events[0]["node"] == "r1"
    # Canonical lines: each parses alone and is key-sorted.
    for line in text.strip().splitlines():
        obj = json.loads(line)
        assert list(obj) == sorted(obj)
    assert rec.dumps == 1


def test_load_dump_rejects_non_dumps():
    with pytest.raises(ValueError):
        load_dump('{"type":"event","seq":1}')
    with pytest.raises(ValueError):
        load_dump('{"type":"mystery"}')


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    NULL_RECORDER.record("anything", node="x")
    assert NULL_RECORDER.events() == []
    assert NULL_RECORDER.dump_ndjson() == ""
    assert isinstance(NULL_RECORDER, NullRecorder)


def test_install_uses_setter_or_attribute():
    class WithSetter:
        def __init__(self):
            self.got = None

        def set_recorder(self, recorder):
            self.got = recorder

    class WithAttr:
        recorder = NULL_RECORDER

    rec = FlightRecorder(clock=_Clock())
    a, b = WithSetter(), WithAttr()
    assert rec.install(a, b) is rec
    assert a.got is rec
    assert b.recorder is rec


def test_fault_timeline_reduces_to_four_phases():
    clock = _Clock()
    rec = FlightRecorder(clock=clock)
    rec.record("fault_applied", node="chaos", t=1.0,
               kind="shard_failover", target="shard:shard-0",
               action="start")
    rec.record("shard_leader_killed", node="chaos", t=1.0,
               shard="shard-0")
    rec.record("leader_killed", node="shard-0", t=1.0,
               replica="shard-0/r0")
    rec.record("frame_dropped", node="r1", t=1.1, reason="no_socket")
    rec.record("leader_promoted", node="shard-0", t=1.2,
               replica="shard-0/r1")
    rec.record("replica_restarted", node="shard-0", t=1.5,
               replica="shard-0/r0")
    rec.record("fault_applied", node="chaos", t=1.5,
               kind="shard_failover", target="shard:shard-0",
               action="stop")
    _, events = load_dump(rec.dump_ndjson(now=2.0))
    timeline = fault_timeline(events)
    assert [e["event"] for e in timeline["onset"]] == ["fault_applied"]
    assert timeline["onset"][0]["action"] == "start"
    assert {e["event"] for e in timeline["detection"]} == {
        "shard_leader_killed", "leader_killed",
    }
    assert [e["event"] for e in timeline["promotion"]] == [
        "leader_promoted",
    ]
    assert [e["event"] for e in timeline["recovery"]] == [
        "replica_restarted", "fault_applied",
    ]
    assert timeline["recovery"][1]["action"] == "stop"
