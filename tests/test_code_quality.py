"""Repository hygiene checks: docstrings, exports, leftovers, sirlint."""

import ast
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")
TOOLS_ROOT = os.path.join(REPO_ROOT, "tools")


def _python_files():
    for dirpath, _dirs, files in os.walk(SRC_ROOT):
        for name in files:
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _module_name(path):
    relative = os.path.relpath(path, os.path.join(SRC_ROOT, ".."))
    return relative[:-3].replace(os.sep, ".").replace(".__init__", "")


def test_every_module_has_a_docstring():
    missing = []
    for path in _python_files():
        with open(path) as handle:
            tree = ast.parse(handle.read())
        if ast.get_docstring(tree) is None:
            missing.append(path)
    assert not missing, f"modules without docstrings: {missing}"


def test_no_stray_debug_prints_in_library_code():
    offenders = []
    for path in _python_files():
        with open(path) as handle:
            tree = ast.parse(handle.read())
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                offenders.append(f"{path}:{node.lineno}")
    assert not offenders, f"print() calls in library code: {offenders}"


def test_no_todo_markers():
    offenders = []
    for path in _python_files():
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                if "TODO" in line or "FIXME" in line or "XXX" in line:
                    offenders.append(f"{path}:{lineno}")
    assert not offenders, f"leftover work markers: {offenders}"


def test_all_exports_resolve():
    import importlib

    packages = [
        "repro", "repro.sim", "repro.net", "repro.viper", "repro.core",
        "repro.tokens", "repro.directory", "repro.transport",
        "repro.baselines.ip", "repro.baselines.cvc", "repro.analysis",
        "repro.workloads", "repro.scenarios", "repro.live", "repro.obs",
    ]
    for name in packages:
        module = importlib.import_module(name)
        for export in getattr(module, "__all__", []):
            assert hasattr(module, export), f"{name}.__all__ lists {export}"


def test_public_classes_and_functions_are_documented():
    undocumented = []
    for path in _python_files():
        with open(path) as handle:
            tree = ast.parse(handle.read())
        for node in tree.body:
            if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    undocumented.append(f"{path}:{node.name}")
    assert not undocumented, (
        f"{len(undocumented)} public items lack docstrings: "
        f"{undocumented[:10]}"
    )


def test_sirlint_src_is_clean():
    """The domain linter passes on src/ exactly as CI invokes it.

    Exit 0 means every finding is either fixed or carries a justified
    baseline entry; stale baseline entries also fail (the baseline can
    only shrink).
    """
    env = dict(os.environ, PYTHONPATH=TOOLS_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "sirlint", "src", "--format", "json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, (
        f"sirlint found violations:\n{proc.stdout}\n{proc.stderr}"
    )
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["checked_files"] > 50, "sirlint saw too few files"
    assert payload["stale_baseline"] == []
