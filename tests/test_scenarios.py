"""Unit tests for the prebuilt scenario builders."""

import pytest

from repro.scenarios import (
    build_cvc_line,
    build_ip_line,
    build_ip_parallel,
    build_sirpent_campus,
    build_sirpent_dumbbell,
    build_sirpent_line,
    build_sirpent_parallel,
)


class TestSirpentLine:
    def test_shape(self):
        scenario = build_sirpent_line(n_routers=3)
        assert set(scenario.routers) == {"r1", "r2", "r3"}
        assert {"src", "dst"} <= set(scenario.hosts)
        route = scenario.routes("src", "dst")[0]
        assert route.hop_count == 3

    def test_extra_pairs_share_end_routers(self):
        scenario = build_sirpent_line(n_routers=2, extra_host_pairs=2)
        assert {"src2", "dst2", "src3", "dst3"} <= set(scenario.hosts)
        r1 = scenario.routes("src2", "dst2")[0]
        assert r1.hop_count == 2

    def test_transport_is_cached(self):
        scenario = build_sirpent_line()
        assert scenario.transport("src") is scenario.transport("src")

    def test_vmtp_routes_target_transport_socket(self):
        scenario = build_sirpent_line()
        route = scenario.vmtp_routes("src", "dst")[0]
        assert route.segments[-1].port == 1  # the VMTP socket

    def test_needs_at_least_one_router(self):
        with pytest.raises(ValueError):
            build_sirpent_line(n_routers=0)


class TestSirpentParallel:
    def test_disjoint_paths_in_delay_order(self):
        scenario = build_sirpent_parallel(n_paths=3, path_delay_step=1e-4)
        routes = scenario.routes("src", "dst", k=3)
        assert len(routes) == 3
        delays = [r.propagation_delay for r in routes]
        assert delays == sorted(delays)
        middles = {r.segments[1].port for r in routes}
        assert len(middles) >= 1  # distinct second hops exist

    def test_link_names_are_predictable(self):
        scenario = build_sirpent_parallel(n_paths=2)
        assert "rA--p1" in scenario.topology.links
        assert "p2--rB" in scenario.topology.links


class TestSirpentDumbbell:
    def test_pairs_and_bottleneck(self):
        scenario = build_sirpent_dumbbell(n_pairs=2)
        assert {"sender1", "receiver1", "sender2", "receiver2"} <= set(
            scenario.hosts
        )
        assert "bottleneck" in scenario.topology.links
        route = scenario.routes("sender1", "receiver1")[0]
        assert route.hop_count == 2  # rL, rR

    def test_access_routers_add_a_hop(self):
        scenario = build_sirpent_dumbbell(n_pairs=2, access_routers=True)
        assert {"a1", "a2"} <= set(scenario.routers)
        route = scenario.routes("sender1", "receiver1")[0]
        assert route.hop_count == 3  # a1, rL, rR


class TestCampus:
    def test_hierarchical_names_resolve(self):
        scenario = build_sirpent_campus()
        from repro.directory import RouteQuery

        routes = scenario.directory.query(
            "venus", RouteQuery("zermatt.lcs.mit.edu")
        )
        assert routes and routes[0].hop_count == 2
        local = scenario.directory.query(
            "venus", RouteQuery("gregorio.cs.stanford.edu")
        )
        assert local and local[0].hop_count == 0  # same Ethernet

    def test_ethernet_first_hop_mac_present(self):
        scenario = build_sirpent_campus()
        from repro.directory import RouteQuery

        route = scenario.directory.query(
            "venus", RouteQuery("milo.lcs.mit.edu")
        )[0]
        assert route.first_hop_mac is not None


class TestIpScenarios:
    def test_line_converges(self):
        scenario = build_ip_line(n_routers=2)
        scenario.converge()
        assert len(scenario.routers["r1"].routing.table) == 3

    def test_parallel_costs_prefer_first_path(self):
        scenario = build_ip_parallel(n_paths=3)
        scenario.converge()
        port, _ = scenario.routers["rA"].routing.next_hop("dst")
        to_p1 = next(e for e in scenario.topology.edges_from("rA")
                     if e.dst == "p1")
        assert port == to_p1.port_id


class TestCvcLine:
    def test_routes_installed(self):
        scenario = build_cvc_line(n_switches=2)
        for switch in scenario.switches.values():
            assert "dst" in switch.static_routes
            assert "src" in switch.static_routes

    def test_extra_pairs(self):
        scenario = build_cvc_line(n_switches=1, extra_host_pairs=1)
        assert {"src2", "dst2"} <= set(scenario.hosts)
