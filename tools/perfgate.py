#!/usr/bin/env python3
"""perfgate — fail CI when a fastpath benchmark regresses.

The PR 8 zero-allocation fastpath is a *measured* property: warm-path
microseconds, allocation bytes per hop move, pipelined transactions per
second.  Each guarded benchmark publishes a structured JSON next to its
table (``benchmarks/results/BENCH_<name>.json``) with a ``metrics``
dict plus ``higher_is_better``/``lower_is_better`` direction lists; the
committed floor lives in ``benchmarks/baselines/BENCH_<name>.json``.

The gate compares fresh metrics against the committed baseline and
fails (exit 1) when any directional metric regresses by more than the
tolerance (default 20%).  Metrics in neither direction list are
informational and never gate.  A metric present in the baseline but
missing from the fresh results is itself a failure — a gate cannot be
deleted by silently dropping its metric.

Baselines are committed artifacts, not auto-updated: refresh one
deliberately with ``--update`` after confirming the new numbers are a
genuine improvement (or an accepted trade), and commit the diff.

Usage::

    python tools/perfgate.py                    # gate every baseline
    python tools/perfgate.py --only f02_dataplane
    python tools/perfgate.py --tolerance 0.3
    python tools/perfgate.py --update --only l01_live_loopback
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Committed floors (one JSON per guarded benchmark).
BASELINE_DIR = os.path.join(_ROOT, "benchmarks", "baselines")

#: Where a fresh benchmark run publishes its JSON.
RESULTS_DIR = os.path.join(_ROOT, "benchmarks", "results")

#: Maximum tolerated relative regression before the gate fails.
DEFAULT_TOLERANCE = 0.20

_PREFIX = "BENCH_"


@dataclass
class Row:
    """One metric's verdict."""

    bench: str
    metric: str
    direction: str  # "higher", "lower" or "info"
    baseline: float
    fresh: Optional[float]
    change: Optional[float]  # signed relative change vs baseline
    verdict: str  # "ok", "regressed" or "missing"

    @property
    def failed(self) -> bool:
        return self.verdict in ("regressed", "missing")


def _direction_of(metric: str, spec: dict) -> str:
    if metric in spec.get("higher_is_better", ()):
        return "higher"
    if metric in spec.get("lower_is_better", ()):
        return "lower"
    return "info"


def compare(
    bench: str, baseline: dict, fresh: Optional[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Row]:
    """Verdict per baseline metric; ``fresh=None`` marks all missing."""
    rows: List[Row] = []
    fresh_metrics: Dict[str, float] = (fresh or {}).get("metrics", {})
    for metric, floor in baseline.get("metrics", {}).items():
        direction = _direction_of(metric, baseline)
        value = fresh_metrics.get(metric)
        if value is None:
            rows.append(Row(
                bench, metric, direction, floor, None, None,
                "missing" if direction != "info" else "ok",
            ))
            continue
        change = (value - floor) / floor if floor else 0.0
        if direction == "higher":
            regressed = value < floor * (1.0 - tolerance)
        elif direction == "lower":
            regressed = value > floor * (1.0 + tolerance)
        else:
            regressed = False
        rows.append(Row(
            bench, metric, direction, floor, value, change,
            "regressed" if regressed else "ok",
        ))
    return rows


def _load(path: str) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def _bench_names(baseline_dir: str, only: Iterable[str]) -> List[str]:
    names = sorted(
        entry[len(_PREFIX):-len(".json")]
        for entry in os.listdir(baseline_dir)
        if entry.startswith(_PREFIX) and entry.endswith(".json")
    )
    wanted = set(only)
    if wanted:
        unknown = wanted - set(names)
        if unknown:
            raise SystemExit(
                f"perfgate: no baseline for {sorted(unknown)} — "
                f"known: {names}"
            )
        names = [n for n in names if n in wanted]
    return names


def gate(
    baseline_dir: str = BASELINE_DIR,
    results_dir: str = RESULTS_DIR,
    only: Iterable[str] = (),
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[Row], bool]:
    """Compare every selected baseline; returns (rows, any_failure)."""
    rows: List[Row] = []
    for name in _bench_names(baseline_dir, only):
        baseline = _load(os.path.join(baseline_dir, f"{_PREFIX}{name}.json"))
        if baseline is None:
            raise SystemExit(f"perfgate: unreadable baseline for {name!r}")
        fresh = _load(os.path.join(results_dir, f"{_PREFIX}{name}.json"))
        rows.extend(compare(name, baseline, fresh, tolerance))
    return rows, any(row.failed for row in rows)


def render(rows: List[Row], tolerance: float) -> str:
    header = (
        f"{'benchmark':<22} {'metric':<26} {'dir':<6} "
        f"{'baseline':>12} {'fresh':>12} {'change':>8}  verdict"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        fresh = "—" if row.fresh is None else f"{row.fresh:g}"
        change = "—" if row.change is None else f"{row.change:+.1%}"
        mark = "FAIL" if row.failed else "ok"
        lines.append(
            f"{row.bench:<22} {row.metric:<26} {row.direction:<6} "
            f"{row.baseline:>12g} {fresh:>12} {change:>8}  {mark}"
        )
    failed = [r for r in rows if r.failed]
    lines.append(
        f"\n{len(rows)} metrics checked, {len(failed)} regression(s) "
        f"at {tolerance:.0%} tolerance."
    )
    return "\n".join(lines)


def update_baselines(
    baseline_dir: str, results_dir: str, only: Iterable[str]
) -> List[str]:
    """Copy fresh result JSONs over the committed baselines.

    ``--only`` names may be brand new (first baseline bootstrap);
    without ``--only``, every existing baseline is refreshed.
    """
    os.makedirs(baseline_dir, exist_ok=True)
    names = sorted(only) if only else _bench_names(baseline_dir, ())
    written = []
    for name in names:
        source = os.path.join(results_dir, f"{_PREFIX}{name}.json")
        fresh = _load(source)
        if fresh is None:
            raise SystemExit(
                f"perfgate: no fresh results for {name!r} — run the "
                "benchmark first"
            )
        target = os.path.join(baseline_dir, f"{_PREFIX}{name}.json")
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(target)
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfgate", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--only", action="append", default=[], metavar="NAME",
        help="gate only this benchmark (repeatable), e.g. f02_dataplane",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max relative regression (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--baselines", default=BASELINE_DIR, help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--results", default=RESULTS_DIR, help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed baselines from fresh results",
    )
    options = parser.parse_args(argv)

    if options.update:
        for path in update_baselines(
            options.baselines, options.results, options.only
        ):
            print(f"baseline updated: {os.path.relpath(path, _ROOT)}")
        return 0

    rows, failed = gate(
        options.baselines, options.results, options.only, options.tolerance
    )
    print(render(rows, options.tolerance))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
