"""The committed baseline: known, justified findings sirlint ignores.

Format — one entry per line::

    SIR004 src/repro/foo.py metric-name:bar.baz  # why this is OK

i.e. the finding's :attr:`~sirlint.model.Finding.key` (rule, path,
symbol — no line number, so entries survive unrelated edits), then a
**mandatory** ``#`` justification.  Blank lines and pure-comment lines
are ignored.  An entry that matches no current finding is *stale* and
reported, so the baseline can only shrink — tested by
``tests/sirlint/test_baseline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from sirlint.model import Finding


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding and its justification."""

    key: str
    justification: str
    lineno: int


class BaselineError(ValueError):
    """A baseline line that cannot be parsed (or lacks a justification)."""


def parse_baseline(text: str) -> List[BaselineEntry]:
    """Parse baseline text; every entry must carry a justification."""
    entries: List[BaselineEntry] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            raise BaselineError(
                f"baseline line {lineno} has no '# justification': {line!r}"
            )
        key, justification = line.split("#", 1)
        key = " ".join(key.split())
        justification = justification.strip()
        if len(key.split(" ")) != 3:
            raise BaselineError(
                f"baseline line {lineno} is not 'RULE path symbol': {key!r}"
            )
        if not justification:
            raise BaselineError(
                f"baseline line {lineno} has an empty justification"
            )
        entries.append(BaselineEntry(key, justification, lineno))
    return entries


def apply_baseline(
    findings: Iterable[Finding], entries: Iterable[BaselineEntry]
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Split findings by the baseline: ``(remaining, stale_entries)``."""
    findings = list(findings)
    entries = list(entries)
    keys: Set[str] = {entry.key for entry in entries}
    remaining = [f for f in findings if f.key not in keys]
    matched = {f.key for f in findings if f.key in keys}
    stale = [entry for entry in entries if entry.key not in matched]
    return remaining, stale
