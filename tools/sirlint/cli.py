"""sirlint command line interface.

::

    PYTHONPATH=tools python -m sirlint src [--format text|json|sarif]
                                           [--baseline tools/sirlint/baseline.txt]
                                           [--changed [REF]]
                                           [--list-rules]

``--changed`` is the fast pre-push path: only files that differ from
the git ref (default ``HEAD``) are analyzed, and the
unused-suppression audit is relaxed (cross-file rules see a partial
universe).  ``--format sarif`` emits SARIF 2.1.0 for GitHub code
scanning.

Exit codes: ``0`` clean (possibly via baseline), ``1`` findings or
stale baseline entries, ``2`` usage / parse / git errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from sirlint import __version__
from sirlint.baseline import BaselineError
from sirlint.changed import ChangedError, changed_files
from sirlint.engine import RunResult, run
from sirlint.rules import ALL_RULES
from sirlint.sarifout import render_sarif

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sirlint",
        description="Sirpent repo static invariants checker.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only analyze .py files changed vs REF (default HEAD) "
        "plus untracked ones — the fast pre-push path",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline file of justified suppressions "
        "(default: the committed tools/sirlint/baseline.txt)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--version", action="version", version=f"sirlint {__version__}",
    )
    return parser


def _render_text(result: RunResult, out) -> None:
    for finding in result.findings:
        print(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}  [{finding.symbol}]",
            file=out,
        )
    for entry in result.stale_baseline:
        print(
            f"baseline:{entry.lineno}: stale entry {entry.key!r} — the "
            "finding no longer exists; delete the line",
            file=out,
        )
    for error in result.parse_errors:
        print(f"parse error: {error}", file=out)
    verdict = "clean" if result.ok else (
        f"{len(result.findings)} finding(s), "
        f"{len(result.stale_baseline)} stale baseline entr(y/ies)"
    )
    print(
        f"sirlint: {result.checked_files} files, "
        f"{result.suppressed} inline-suppressed, "
        f"{result.baselined} baselined, "
        f"{result.elapsed:.2f}s — {verdict}",
        file=out,
    )


def _render_json(result: RunResult, out) -> None:
    payload = {
        "version": __version__,
        "checked_files": result.checked_files,
        "elapsed_seconds": round(result.elapsed, 3),
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.to_dict() for f in result.findings],
        "stale_baseline": [
            {"key": e.key, "justification": e.justification, "line": e.lineno}
            for e in result.stale_baseline
        ],
        "parse_errors": result.parse_errors,
        "ok": result.ok,
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def _render_sarif(result: RunResult, out) -> None:
    payload = render_sarif(result, ALL_RULES, __version__)
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.id}  {cls.title}")
            print(f"        {cls.rationale}")
        return 0

    baseline_text = ""
    if not args.no_baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            baseline_text = baseline_path.read_text(encoding="utf-8")

    paths = list(args.paths)
    enforce_unused = True
    if args.changed is not None:
        try:
            paths = changed_files(args.changed, paths)
        except ChangedError as exc:
            print(f"sirlint: --changed: {exc}", file=sys.stderr)
            return 2
        enforce_unused = False

    try:
        result = run(
            paths,
            baseline_text=baseline_text,
            enforce_unused=enforce_unused,
        )
    except BaselineError as exc:
        print(f"sirlint: baseline error: {exc}", file=sys.stderr)
        return 2

    if args.changed is not None:
        # A partial run cannot tell a stale entry from one whose file
        # simply was not analyzed; the full run owns that check.
        result.stale_baseline = []

    if args.format == "json":
        _render_json(result, sys.stdout)
    elif args.format == "sarif":
        _render_sarif(result, sys.stdout)
    else:
        _render_text(result, sys.stdout)

    if result.parse_errors:
        return 2
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
