"""SIR002 — no module-global mutable state, anywhere in the library.

PR 3 fixed a whole bug class: packet ids drawn from module-global
``itertools.count`` instances made every id depend on import order and
whatever traffic *other* tests had generated.  The fix (per-engine
``PacketIdAllocator``) only stays fixed if nothing reintroduces shared
module state, so this rule bans it everywhere in ``src/``:

* ``global NAME`` rebinding inside functions;
* module-level names bound to mutable containers (dict/list/set/
  bytearray/deque/defaultdict/...) — module constants must be immutable
  (tuple, frozenset, bytes, mappingproxy) so they *cannot* accumulate
  cross-run state;
* module-level augmented assignment (a counter in disguise);
* mutation calls (``.append``/``.add``/``[k] = v``/…) on module-level
  names from inside functions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

#: Constructors whose result is a mutable container.
MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray",
    "deque", "defaultdict", "OrderedDict", "ChainMap",
})

#: Method calls that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
})

#: Module-level names exempt by convention (interpreter/metadata
#: protocol names, never cross-run state).
EXEMPT_NAMES = frozenset({"__all__", "__path__", "__version__"})

MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        if callee is not None and callee.split(".")[-1] in MUTABLE_CALLS:
            return True
    return False


class MutableStateRule(Rule):
    """SIR002: module globals must be immutable and never rebound."""

    id = "SIR002"
    title = "no module-global mutable state"
    rationale = (
        "PR 3 PacketIdAllocator: shared module state made runs depend "
        "on import order; per-engine state is the repo invariant."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        mutable_globals: Set[str] = set()

        # Pass 1: module-level bindings.
        for node in module.tree.body:
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    target = node.targets[0].id
                    value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                target = node.target.id
                value = node.value
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                yield module.finding(
                    self.id, node,
                    f"module-level augmented assignment to "
                    f"{node.target.id!r} is global mutable state",
                    symbol=f"augassign:{node.target.id}",
                )
                continue
            if target is None or value is None or target in EXEMPT_NAMES:
                continue
            if _is_mutable_value(value):
                mutable_globals.add(target)
                yield module.finding(
                    self.id, node,
                    f"module-level {target!r} is a mutable container — "
                    "use tuple/frozenset/bytes, or move the state onto "
                    "the owning engine/driver object",
                    symbol=f"global:{target}",
                )

        # Pass 2: 'global' rebinding anywhere, and in-place mutation of
        # the flagged globals from inside function bodies.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield module.finding(
                        self.id, node,
                        f"'global {name}' rebinds module state from a "
                        "function — pass the state in explicitly",
                        symbol=f"global-stmt:{name}",
                    )
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    owner = node.func.value
                    if (
                        isinstance(owner, ast.Name)
                        and owner.id in mutable_globals
                        and node.func.attr in MUTATING_METHODS
                    ):
                        yield module.finding(
                            self.id, node,
                            f"mutation of module-global {owner.id!r} "
                            f"(.{node.func.attr})",
                            symbol=f"mutate:{owner.id}",
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for tgt in targets:
                        if (
                            isinstance(tgt, ast.Subscript)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id in mutable_globals
                        ):
                            yield module.finding(
                                self.id, node,
                                f"subscript assignment into module-global "
                                f"{tgt.value.id!r}",
                                symbol=f"mutate:{tgt.value.id}",
                            )
