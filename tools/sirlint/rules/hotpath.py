"""SIR008 — hot-path allocation discipline in the zero-copy fastpath.

PR 8 made the per-packet fast path allocation-free: packets live in
ring-slot buffers (:mod:`repro.viper.ring`), segments are parsed as
offset views (:class:`repro.viper.wire.SegmentView`), the flow cache
memoizes encoded return tails, and the live hop move rewrites bytes in
place.  That property decays one innocent-looking ``bytes(...)`` at a
time, so it is enforced statically:

* functions on the fast path are **marked** with a ``# sirlint: hot``
  comment on their ``def`` line; inside a marked function the rule
  flags ``bytes()``/``bytearray()`` construction, ``+``-concatenation
  with a bytes literal, ``list``/``dict``/``set`` literals and
  comprehensions, and per-packet closures (nested ``def``/``lambda``);
* the table :data:`REQUIRED_HOT` pins the functions PR 8 measured —
  removing a marker does not silence the rule, it *is* a finding.

Only :mod:`repro.dataplane` and :mod:`repro.viper` are in scope (the
sans-IO layers both drivers share).  Slow-path oracles — the
materialising codec, ``tobytes()`` escape hatches, multicast expansion
— stay unmarked and free to allocate; a genuinely-justified allocation
in a hot function carries an inline ``# sirlint: disable=SIR008``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set, Tuple

from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

#: Packages whose marked functions the rule inspects.
HOT_PACKAGES: Tuple[str, ...] = (
    "repro.dataplane",
    "repro.viper",
)

#: The def-line marker naming a function as fast-path.
HOT_MARKER = "# sirlint: hot"

#: Fast-path functions that must stay marked (module -> def names):
#: the allocation discipline on these is load-bearing for the PR 8
#: packets/sec numbers, so dropping a marker is itself a finding.
REQUIRED_HOT: Dict[str, Tuple[str, ...]] = {
    "repro.viper.wire": (
        "parse_segment_view",
        "of_slot",
        "mem",
        "append",
    ),
    "repro.dataplane.flowcache": (
        "flow_key",
        "lookup",
    ),
    "repro.dataplane.pipeline": (
        "_decide_cached",
    ),
}

#: Allocating constructors a hot function must not call.
_ALLOCATING_CALLS: Tuple[str, ...] = ("bytes", "bytearray")

_LITERAL_KINDS = {
    ast.List: "list literal",
    ast.Dict: "dict literal",
    ast.Set: "set literal",
    ast.ListComp: "list comprehension",
    ast.DictComp: "dict comprehension",
    ast.SetComp: "set comprehension",
}


def in_scope(name: str) -> bool:
    """True when ``name`` falls inside the enforced hot packages."""
    return any(
        name == package or name.startswith(package + ".")
        for package in HOT_PACKAGES
    )


def _is_bytes_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, bytes)


class HotPathAllocationRule(Rule):
    """SIR008: marked fast-path functions must not allocate per packet."""

    id = "SIR008"
    title = "hot-path allocation discipline (buffer-ring fastpath)"
    rationale = (
        "PR 8 zero-allocation fastpath: per-packet work happens in "
        "ring slots and offset views; object churn on the hot path is "
        "what the Sirpent design eliminates (§4 switching overhead)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not in_scope(module.name):
            return
        marked: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_marked(module, node):
                continue
            marked.add(node.name)
            yield from self._check_hot_function(module, node)
        for required in REQUIRED_HOT.get(module.name, ()):
            if required not in marked:
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=1,
                    col=0,
                    message=(
                        f"fast-path function {required!r} lost its "
                        f"'{HOT_MARKER}' marker — the PR 8 allocation "
                        "discipline is load-bearing and must stay enforced"
                    ),
                    symbol=f"hot-marker:{required}",
                )

    @staticmethod
    def _is_marked(module: ModuleInfo, node: ast.AST) -> bool:
        line = node.lineno
        if 0 < line <= len(module.source_lines):
            return HOT_MARKER in module.source_lines[line - 1]
        return False

    def _check_hot_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterable[Finding]:
        name = func.name
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee in _ALLOCATING_CALLS:
                    yield module.finding(
                        self.id, node,
                        f"hot function {name!r} constructs {callee}() per "
                        "packet — parse into offset views or reuse a "
                        "preallocated buffer",
                        symbol=f"{name}:call:{callee}",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                if _is_bytes_literal(node.left) or _is_bytes_literal(node.right):
                    yield module.finding(
                        self.id, node,
                        f"hot function {name!r} concatenates bytes with "
                        "'+' — each concat copies; append into the slot's "
                        "tail-room instead",
                        symbol=f"{name}:bytes-concat",
                    )
            elif isinstance(node, tuple(_LITERAL_KINDS)):
                kind = _LITERAL_KINDS[type(node)]
                yield module.finding(
                    self.id, node,
                    f"hot function {name!r} builds a {kind} per packet — "
                    "hoist it, reuse a preallocated container, or move "
                    "the allocating arm to an unmarked helper",
                    symbol=f"{name}:{kind.replace(' ', '-')}",
                )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                inner = getattr(node, "name", "<lambda>")
                yield module.finding(
                    self.id, node,
                    f"hot function {name!r} creates closure {inner!r} per "
                    "packet — bind it once at construction time",
                    symbol=f"{name}:closure:{inner}",
                )
