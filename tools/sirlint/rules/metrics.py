"""SIR004 — metrics discipline across the sim, live and obs layers.

PR 2 unified three accounting systems behind
:mod:`repro.obs.registry`; the benchmark tables compare sim and live
runs *line by line* on metric names.  That only works while names stay
snake_case (Prometheus-legal after the adapters strip the instance
prefix) and while one name always means one metric kind.

Checks, over every ``Counter(...)``/``Gauge(...)``/``Histogram(...)``
construction and every ``registry.counter/gauge/histogram`` call:

* the name must be a static string (literal or f-string) — dynamic
  names cannot be audited or compared across runs;
* after stripping the legacy sim convention of one leading
  ``f"{instance}."`` prefix, the name must be ``snake_case``
  (``[a-z][a-z0-9_]*``) with no further interpolation;
* **cross-file**: one name, one kind — ``Counter("rtt")`` in one module
  and ``Histogram("rtt")`` in another is a reporting hazard;
* **cross-file**: registry-created metrics must use one label-key set
  per name (``counter("forwarded", node=...)`` vs a bare
  ``counter("forwarded")`` would split the timeseries).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from sirlint.model import Finding, ModuleInfo, name_template
from sirlint.rules.base import Rule

#: Constructor class name -> metric kind.
METRIC_KINDS = (
    ("Counter", "counter"), ("Gauge", "gauge"), ("Histogram", "histogram"),
)

#: ``registry.<method>("name", ...)`` method names; the kind is the name.
REGISTRY_METHODS = ("counter", "gauge", "histogram")


def _constructor_kind(name: str) -> Optional[str]:
    for class_name, kind in METRIC_KINDS:
        if name == class_name:
            return kind
    return None

SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")

#: One leading ``{instance}.`` is the sim's historical per-node prefix;
#: the obs adapters strip it at exposition time.
INSTANCE_PREFIX = "{}."


def _strip_instance_prefix(template: str) -> str:
    if template.startswith(INSTANCE_PREFIX):
        return template[len(INSTANCE_PREFIX):]
    return template


def _metric_call(node: ast.Call) -> Optional[Tuple[str, bool]]:
    """``(kind, via_registry)`` when ``node`` constructs a metric."""
    func = node.func
    if isinstance(func, ast.Name):
        kind = _constructor_kind(func.id)
        if kind is not None:
            return kind, False
    if isinstance(func, ast.Attribute):
        kind = _constructor_kind(func.attr)
        if kind is not None:
            return kind, False
        if func.attr in REGISTRY_METHODS:
            # registry.counter("name", node=...) — heuristically any
            # .counter/.gauge/.histogram method call whose first
            # argument is a static string (checked by the caller).
            return func.attr, True
    return None


def _name_argument(node: ast.Call) -> Optional[ast.AST]:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    return None


class MetricsRule(Rule):
    """SIR004: snake_case metric names, one kind and label-set per name."""

    id = "SIR004"
    title = "metric naming and uniqueness discipline"
    rationale = (
        "PR 2 observability layer: sim and live tables compare line by "
        "line; names must be snake_case and unambiguous repo-wide."
    )

    def __init__(self) -> None:
        #: name -> [(kind, module, path, line)]
        self._declared: Dict[str, List[Tuple[str, ModuleInfo, int]]] = {}
        #: name -> [(label-key-tuple, module, line)] for registry calls.
        self._labeled: Dict[str, List[Tuple[Tuple[str, ...], ModuleInfo, int]]] = {}

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            described = _metric_call(node)
            if described is None:
                continue
            kind, via_registry = described
            name_node = _name_argument(node)
            if name_node is None:
                continue  # unnamed metrics are legal (ad-hoc locals)
            template = name_template(name_node)
            if template is None:
                # A bare variable / call result: collections.Counter et
                # al. also land here, so stay silent rather than guess.
                continue
            stripped = _strip_instance_prefix(template)
            if not SNAKE.match(stripped):
                yield module.finding(
                    self.id, node,
                    f"metric name {template!r} is not snake_case "
                    "(obs.registry convention: [a-z][a-z0-9_]*, with at "
                    "most one leading '{instance}.' prefix)",
                    symbol=f"metric-name:{template}",
                )
                continue
            self._declared.setdefault(stripped, []).append(
                (kind, module, node.lineno)
            )
            if via_registry:
                label_keys = tuple(sorted(
                    kw.arg for kw in node.keywords
                    if kw.arg is not None and kw.arg != "name"
                ))
                self._labeled.setdefault(stripped, []).append(
                    (label_keys, module, node.lineno)
                )

    def finalize(self) -> Iterable[Finding]:
        for name, sites in sorted(self._declared.items()):
            kinds = sorted({kind for kind, _, _ in sites})
            if len(kinds) > 1:
                kind0, module0, line0 = sites[0]
                where = ", ".join(
                    f"{m.path}:{ln} ({k})" for k, m, ln in sites
                )
                yield Finding(
                    rule=self.id,
                    path=module0.path,
                    line=line0,
                    col=0,
                    message=(
                        f"metric {name!r} is declared with conflicting "
                        f"kinds: {where}"
                    ),
                    symbol=f"metric-kind:{name}",
                )
        for name, sites in sorted(self._labeled.items()):
            label_sets = sorted({keys for keys, _, _ in sites})
            if len(label_sets) > 1:
                _, module0, line0 = sites[0]
                rendered = " vs ".join(
                    "{" + ",".join(keys) + "}" for keys in label_sets
                )
                yield Finding(
                    rule=self.id,
                    path=module0.path,
                    line=line0,
                    col=0,
                    message=(
                        f"registry metric {name!r} is created with "
                        f"inconsistent label-key sets: {rendered} — one "
                        "name, one label schema"
                    ),
                    symbol=f"metric-labels:{name}",
                )
