"""SIR006 — drop discipline in router and pipeline code.

PR 3 introduced :func:`repro.dataplane.effects.apply_drop` as *the*
drop applicator: the drop counter and the trace reason are written in
one place, so they can never disagree.  Every packet drop in
router/pipeline code must therefore be either

* a :class:`~repro.dataplane.effects.Decision` with
  ``Action.DROP`` (the pipeline's way — the driver applies it), or
* an ``apply_drop(sink, decision)`` call (the drivers' way).

An ad-hoc ``self.metrics.drop("reason")`` / ``stats.dropped_x.add()``
next to a bare ``return`` reintroduces the copy-pasted
counter-vs-trace skew the effect model removed.  Calls are allowed
only inside the effects module itself, inside ``apply_drop``, or
inside an :class:`EffectSink` adapter (the one place a driver maps
abstract counter names onto its stats object).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from sirlint.model import Finding, ModuleInfo
from sirlint.rules.base import Rule

#: Module names (exact, or package prefix for the dataplane) this rule
#: polices — the router drivers and the pipeline.
ROUTER_MODULES: Tuple[str, ...] = (
    "repro.core.router",
    "repro.live.router",
)
ROUTER_PACKAGES: Tuple[str, ...] = ("repro.dataplane",)

#: The module where apply_drop and the sink protocol live — exempt.
EFFECTS_MODULE = "repro.dataplane.effects"

#: Attribute-call names that record a drop.
DROP_CALL_ATTRS = ("drop", "trace_drop")


def in_scope(name: str) -> bool:
    """True when ``name`` is router/pipeline code this rule polices."""
    if name == EFFECTS_MODULE:
        return False
    if name in ROUTER_MODULES:
        return True
    return any(
        name == pkg or name.startswith(pkg + ".") for pkg in ROUTER_PACKAGES
    )


def _enclosing_allows(stack: List[ast.AST]) -> bool:
    """Inside apply_drop or an EffectSink subclass, drops are the job."""
    for node in stack:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in ("apply_drop", "trace_drop"):
                return True
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else ""
                )
                if "EffectSink" in base_name:
                    return True
    return False


class DropDisciplineRule(Rule):
    """SIR006: drops only via Decision/apply_drop, never ad-hoc."""

    id = "SIR006"
    title = "drop discipline: Decision/apply_drop only"
    rationale = (
        "PR 3 effect model: one drop applicator keeps the counter and "
        "the trace reason in sync at every drop site."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not in_scope(module.name):
            return
        yield from self._walk(module, module.tree, [])

    def _walk(
        self, module: ModuleInfo, node: ast.AST, stack: List[ast.AST]
    ) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            finding = self._inspect(module, child, stack)
            if finding is not None:
                yield finding
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._walk(module, child, stack + [child])
            else:
                yield from self._walk(module, child, stack)

    def _inspect(
        self, module: ModuleInfo, node: ast.AST, stack: List[ast.AST]
    ) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in DROP_CALL_ATTRS:
            if _enclosing_allows(stack):
                return None
            context = self._context_name(stack)
            return module.finding(
                self.id, node,
                f"ad-hoc drop accounting .{func.attr}(...) in {context} — "
                "route it through apply_drop(sink, Decision(Action.DROP, "
                "reason=...)) so counter and trace stay in sync",
                symbol=f"adhoc-drop:{context}:{func.attr}",
            )
        # stats.dropped_*.add(...) — bumping a drop counter directly.
        if (
            func.attr == "add"
            and isinstance(func.value, ast.Attribute)
            and (
                func.value.attr.startswith("dropped_")
                or func.value.attr == "route_exhausted"
            )
            and not _enclosing_allows(stack)
        ):
            context = self._context_name(stack)
            return module.finding(
                self.id, node,
                f"direct drop-counter bump {func.value.attr}.add() in "
                f"{context} — use apply_drop so the trace reason cannot "
                "drift from the counter",
                symbol=f"adhoc-counter:{context}:{func.value.attr}",
            )
        return None

    @staticmethod
    def _context_name(stack: List[ast.AST]) -> str:
        names = [
            getattr(node, "name", "?") for node in stack
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        return ".".join(names) if names else "<module>"
