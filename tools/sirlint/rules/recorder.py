"""SIR007 — flight-recorder event discipline.

PR 7's forensics contract: flight-recorder dumps are NDJSON grepped by
*event name* after an incident, and `fault_timeline` reduces dumps by
classifying those names into phases.  Both only work while event names
are static snake_case strings — a dynamically built name can never be
searched for, documented, or classified ahead of time — and while every
event enters the ring through the recorder API (``record(...)`` on a
recorder, or the fault injector's mirroring ``record``), never by
touching the ring or fabricating :class:`RecorderEvent` objects.

Checks:

* every ``<recorder>.record(name, ...)`` / ``<injector>.record(name,
  ...)`` call site must pass a fully static, snake_case event name as
  its first argument (no interpolation, no variables).  Delegating
  wrappers themselves named ``record`` — the injector's mirror that
  forwards an already-validated name into the shared ring — are exempt;
* outside :mod:`repro.obs.recorder` nothing may reach into the ring
  (``._ring``) or construct :class:`RecorderEvent` directly.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional, Tuple

from sirlint.model import Finding, ModuleInfo, name_template
from sirlint.rules.base import Rule

SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Receiver names whose ``.record(...)`` feeds the flight-recorder ring.
RECORDER_RECEIVERS = ("recorder", "injector")

#: The module that owns the ring and may touch its internals.
RECORDER_MODULE = "repro.obs.recorder"


def _scoped_walk(
    node: ast.AST, enclosing: Tuple[str, ...] = ()
) -> Iterable[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, enclosing-function-names)`` over the whole tree."""
    yield node, enclosing
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        enclosing = enclosing + (node.name,)
    for child in ast.iter_child_nodes(node):
        yield from _scoped_walk(child, enclosing)


def _recorder_record_call(node: ast.Call) -> bool:
    """True when ``node`` is ``<recorder|injector>.record(...)``."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "record"):
        return False
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in RECORDER_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in RECORDER_RECEIVERS
    return False


def _event_name_node(node: ast.Call) -> Optional[ast.AST]:
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Starred):
            return None
        return first
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    return None


class RecorderDisciplineRule(Rule):
    """SIR007: static snake_case event names, events only via the API."""

    id = "SIR007"
    title = "flight-recorder event discipline"
    rationale = (
        "PR 7 forensics: dumps are grepped and timeline-classified by "
        "event name, so names must be static snake_case; the ring is "
        "append-only through the recorder API."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        owns_ring = module.name == RECORDER_MODULE
        for node, enclosing in _scoped_walk(module.tree):
            if isinstance(node, ast.Call) and _recorder_record_call(node):
                if "record" in enclosing:
                    # A delegating wrapper itself named ``record`` (the
                    # injector's mirror) forwards an already-checked
                    # name; its *callers* are the sites we police.
                    continue
                name_node = _event_name_node(node)
                if name_node is None:
                    yield module.finding(
                        self.id, node,
                        "recorder event emitted without a name argument "
                        "— every record() call names its event",
                        symbol="record-event:<missing>",
                    )
                    continue
                template = name_template(name_node)
                if template is None or "{}" in template:
                    yield module.finding(
                        self.id, name_node,
                        "recorder event name must be a static string "
                        "literal — dumps are grepped and timelines "
                        "classified by name, so dynamic names cannot "
                        "be audited",
                        symbol="record-event:<dynamic>",
                    )
                    continue
                if not SNAKE.match(template):
                    yield module.finding(
                        self.id, name_node,
                        f"recorder event name {template!r} is not "
                        "snake_case ([a-z][a-z0-9_]*)",
                        symbol=f"record-event:{template}",
                    )
            if owns_ring:
                continue
            if isinstance(node, ast.Attribute) and node.attr == "_ring":
                yield module.finding(
                    self.id, node,
                    "direct flight-recorder ring access — events enter "
                    "and leave only via the recorder API (record() / "
                    "events() / dump_ndjson())",
                    symbol="ring-access:_ring",
                )
            if isinstance(node, ast.Call):
                callee = node.func
                callee_name = (
                    callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None
                )
                if callee_name == "RecorderEvent":
                    yield module.finding(
                        self.id, node,
                        "RecorderEvent constructed outside the recorder "
                        "— events are created only by record(), which "
                        "assigns the causal sequence number",
                        symbol="direct-event:RecorderEvent",
                    )
