"""SIR010 — await-interleaving races on shared soft state.

The live overlay is cooperative: between two statements of one
coroutine nothing moves, but across an ``await`` *any* other task may
run.  Check-then-act and read-modify-write sequences on shared
mutable attributes (``self.…`` on LiveRouter / LiveEndpoint /
directory clients / shards) that span an await are therefore races:
the guard the code checked is stale by the time it acts on it —
exactly how two concurrent reconnects both pass ``if not
self._connected`` and leak a reader task each.

The analysis runs per async method on the CFG's await-point model
with a tiny per-attribute lattice::

    ⊥  →  READ(line)  →  STALE(read line, await line)

* a load of ``self.attr`` moves ⊥ → READ;
* every await point (``await`` expressions, ``async for`` headers,
  ``async with`` enter/exit) promotes READ → STALE;
* a plain write to ``self.attr`` while STALE is a finding; writes
  reset the attribute to ⊥ (the value is fresh again).

Deliberate quiet zones, so counters stay cheap and idiomatic:

* ``self.x += 1`` (attribute augassign with no await in the
  statement) is treated as an atomic fresh RMW — the canonical
  counter bump after an RPC must not flag;
* ``self.d[k] = v`` counts as a *write* to ``d`` but the implicit
  load of ``self.d`` in the store target is not a read — populating
  a cache after an await is fine unless the code first *checked* it.

Escape hatch: annotate the ``def`` line with
``# sirlint: interleave-safe -- <why>`` for genuinely single-owner
methods (boot paths, chaos drivers).  The reason is mandatory; a
bare marker is itself a finding.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from sirlint.dataflow import build_cfg, solve
from sirlint.dataflow.cfg import Node
from sirlint.model import Finding, ModuleInfo
from sirlint.rules.base import Rule

#: Packages whose classes hold shared, task-visible soft state.
SCOPE_PREFIXES = ("repro.live", "repro.directory", "repro.obs")

SAFE_MARKER_RE = re.compile(
    r"#\s*sirlint:\s*interleave-safe(?:\s*--\s*(\S.*))?"
)

#: attr -> ("READ", read_line) | ("STALE", read_line, await_line)
State = Dict[str, Tuple]


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == p or module_name.startswith(p + ".")
        for p in SCOPE_PREFIXES
    )


def _async_methods(tree: ast.Module) -> List[Tuple[str, ast.AsyncFunctionDef]]:
    out: List[Tuple[str, ast.AsyncFunctionDef]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.AsyncFunctionDef):
                out.append((f"{prefix}{child.name}", child))
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.ClassDef, ast.FunctionDef)):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def _self_attr_reads(exprs: Iterable[ast.AST]) -> List[str]:
    """``self.attr`` loads, excluding subscript-store bases."""
    reads: List[str] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Store
        ):
            visit(node.slice)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Store):
                return
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                reads.append(node.attr)
                return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    for expr in exprs:
        visit(expr)
    return reads


def _write_targets(stmt: Optional[ast.AST]) -> List[Tuple[str, str]]:
    """``(attr, kind)`` writes in a statement; kind in plain/sub/aug."""
    out: List[Tuple[str, str]] = []

    def target(node: ast.AST, kind: str) -> None:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self":
            out.append((node.attr, kind))
        elif isinstance(node, ast.Subscript):
            inner = node.value
            if isinstance(inner, ast.Attribute) and isinstance(
                inner.value, ast.Name
            ) and inner.value.id == "self":
                out.append((inner.attr, "sub"))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elem in node.elts:
                target(elem, kind)

    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            target(t, "plain")
    elif isinstance(stmt, ast.AnnAssign):
        target(stmt.target, "plain")
    elif isinstance(stmt, ast.AugAssign):
        target(stmt.target, "aug")
    elif isinstance(stmt, ast.Delete):
        for t in stmt.targets:
            target(t, "plain")
    return out


class _Interleave:
    """SIR010 transfer function for one async method."""

    def __init__(self, module: ModuleInfo, qualname: str, func) -> None:
        self.module = module
        self.qualname = qualname
        self.func = func
        self.sink: Optional[List[Finding]] = None
        self.seen: Set[Tuple[int, str]] = set()

    def _report(self, node: Node, attr: str, message: str) -> None:
        if self.sink is None or (node.line, attr) in self.seen:
            return
        self.seen.add((node.line, attr))
        self.sink.append(
            Finding(
                rule=AwaitInterleaveRule.id,
                path=self.module.path,
                line=node.line,
                col=0,
                message=message,
                symbol=f"{self.qualname}.{attr}",
            )
        )

    def transfer(self, node: Node, in_state: State) -> State:
        state: State = dict(in_state)
        if node.kind in ("entry", "exit", "raise", "handler"):
            return state
        stmt = node.stmt
        writes = _write_targets(stmt)
        written = {attr for attr, _ in writes}
        for attr in _self_attr_reads(node.exprs):
            if attr not in state:
                state[attr] = ("READ", node.line)
        if node.is_await:
            if (
                isinstance(stmt, ast.AugAssign)
                and writes
                and writes[0][1] == "aug"
            ):
                attr = writes[0][0]
                self._report(
                    node,
                    attr,
                    f"read-modify-write of self.{attr} spans the await in "
                    "this statement — the value read can be stale when "
                    "written back",
                )
            for attr, value in list(state.items()):
                if value[0] == "READ":
                    state[attr] = ("STALE", value[1], node.line)
        for attr, kind in writes:
            value = state.get(attr)
            if value is not None and value[0] == "STALE" and kind != "aug":
                self._report(
                    node,
                    attr,
                    f"self.{attr} was read at line {value[1]} and went "
                    f"stale across the await at line {value[2]} — this "
                    "write races with interleaved tasks (check-then-act); "
                    "re-check after the await or annotate the method "
                    "'# sirlint: interleave-safe -- <why>'",
                )
            state.pop(attr, None)
        # A written attr read again later starts a fresh window.
        for attr in written:
            state.pop(attr, None)
        return state


def _join(a: State, b: State) -> State:
    if a == b:
        return a
    out: State = dict(a)
    for attr, value in b.items():
        prior = out.get(attr)
        if prior is None:
            out[attr] = value
        elif prior != value:
            # STALE dominates READ; merge lines via min for determinism.
            if prior[0] == "STALE" or value[0] == "STALE":
                stale = [v for v in (prior, value) if v[0] == "STALE"]
                read_line = min(v[1] for v in (prior, value))
                await_line = min(v[2] for v in stale)
                out[attr] = ("STALE", read_line, await_line)
            else:
                out[attr] = ("READ", min(prior[1], value[1]))
    return out


class AwaitInterleaveRule(Rule):
    """SIR010: no check-then-act on shared attrs across an await."""

    id = "SIR010"
    title = (
        "await-interleaving races: shared self-attributes must not be "
        "checked before and written after an await"
    )
    rationale = (
        "asyncio interleaves tasks at await points; stale guards on "
        "router/endpoint/directory soft state corrupt silently under "
        "load (ISSUE 9 tentpole)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_scope(module.name):
            return []
        findings: List[Finding] = []
        for qualname, func in _async_methods(module.tree):
            marker = self._marker(module, func)
            if marker == "bare":
                findings.append(
                    Finding(
                        rule=self.id,
                        path=module.path,
                        line=func.lineno,
                        col=0,
                        message=(
                            "interleave-safe marker needs a reason: "
                            "'# sirlint: interleave-safe -- <why>'"
                        ),
                        symbol=f"{qualname}:marker",
                    )
                )
                continue
            if marker == "safe":
                continue
            analysis = _Interleave(module, qualname, func)
            cfg = build_cfg(func)
            # Post-state on exception edges: an exception raised *by*
            # an awaited call arrives after the suspension, so the
            # handler must see reads as already stale.
            in_states = solve(
                cfg,
                init={},
                transfer=analysis.transfer,
                join=_join,
                exc_transfer=analysis.transfer,
            )
            sink: List[Finding] = []
            analysis.sink = sink
            for nid in sorted(
                in_states, key=lambda n: (cfg.nodes[n].line, n)
            ):
                analysis.transfer(cfg.nodes[nid], in_states[nid])
            analysis.sink = None
            findings.extend(sink)
        return findings

    @staticmethod
    def _marker(module: ModuleInfo, func: ast.AsyncFunctionDef) -> str:
        lines = module.source_lines
        line = (
            lines[func.lineno - 1]
            if 0 < func.lineno <= len(lines)
            else ""
        )
        match = SAFE_MARKER_RE.search(line)
        if not match:
            return "none"
        return "safe" if match.group(1) else "bare"


__all__ = ["AwaitInterleaveRule"]
