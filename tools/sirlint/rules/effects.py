"""SIR011 — exception-safe effects: no silently swallowed fates.

Every packet, transaction, and connection in this system has exactly
one fate, and the observability stack (PR 2/6/7) only works if that
fate is *recorded* on failure paths too: a handler that catches an
error and does nothing starves counters, the flight recorder, and the
drop discipline at precisely the moments that matter.

For each ``except`` handler in the hot packages the rule asks a CFG
reachability question: *is the function exit reachable from the
handler entry without passing a fate effect?*  If yes, some failure
path is silent.  A "fate effect" is any of:

* ``raise`` (propagating is a fate);
* using the bound exception value (``last = exc``,
  ``future.set_exception(exc)`` — the failure is preserved);
* a call whose name carries accounting/fate semantics
  (``apply_drop``, ``….drop``, ``.bump``, ``.record``,
  ``.trace_drop``, ``_on_connection_lost``, ``_queue_tx``, …);
* a write to a counter-ish attribute (``self.drops``,
  ``tx.retries``, ``self.reconnect_attempts``…);
* ``return <value>`` — converting the failure into an explicit
  sentinel the caller sees (``Decision(Action.DROP, …)`` in the pure
  dataplane, ``owner_or_none``-style totalizers everywhere).  A bare
  ``return`` or falling off the end stays silent: nothing downstream
  can tell the failure happened.

Exempt by design: ``CancelledError`` / flow-control exceptions
(``BlockingIOError``, ``InterruptedError``, ``StopIteration``…)
whose handlers are teardown or try-again-later, and handlers carrying
``# pragma: no cover`` (already audited as unreachable-by-tests).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from sirlint.dataflow import build_cfg
from sirlint.dataflow.cfg import CFG, Node
from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

SCOPE_PREFIXES = (
    "repro.live",
    "repro.dataplane",
    "repro.viper",
    "repro.directory",
)

#: Exception types whose handlers are control-flow, not failures.
EXEMPT_TYPES = {
    "CancelledError",
    "BlockingIOError",
    "InterruptedError",
    "StopIteration",
    "StopAsyncIteration",
    "GeneratorExit",
    "KeyboardInterrupt",
}

#: Callee-name fragments that record a fate.
EFFECT_CALL_TOKENS = (
    "drop",
    "record",
    "bump",
    "trace",
    "fail",
    "lost",
    "dead",
    "abandon",
    "error",
    "retry",
    "queue",
    "quarantine",
    "backoff",
    "reject",
    "observe",
    "warn",
    "log",
)

#: Attribute-name fragments that make a write an accounting effect.
EFFECT_ATTR_TOKENS = (
    "drop",
    "error",
    "fail",
    "retr",
    "lost",
    "dead",
    "count",
    "served",
    "abandon",
    "reconnect",
    "backoff",
    "quarantine",
)


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == p or module_name.startswith(p + ".")
        for p in SCOPE_PREFIXES
    )


def _functions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    out: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((f"{prefix}{child.name}", child))
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


def _handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return []
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for elt in elts:
        dotted = dotted_name(elt)
        if dotted:
            names.append(dotted.split(".")[-1])
    return names


def _uses_exception(node: Node, exc_name: Optional[str]) -> bool:
    if not exc_name:
        return False
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id == exc_name and (
                not isinstance(sub.ctx, ast.Store)
            ):
                return True
    return False


def _calls_effect(node: Node) -> bool:
    for expr in node.exprs:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            dotted = dotted_name(sub.func)
            if not dotted:
                continue
            last = dotted.split(".")[-1].lower()
            if any(token in last for token in EFFECT_CALL_TOKENS):
                return True
    return False


def _writes_effect(stmt: Optional[ast.AST]) -> bool:
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Attribute) and any(
                token in sub.attr.lower() for token in EFFECT_ATTR_TOKENS
            ):
                return True
    return False


class ExceptionEffectRule(Rule):
    """SIR011: every failure path records its fate."""

    id = "SIR011"
    title = (
        "exception-safe effects: handlers must reach a counter, "
        "recorder event, drop, or re-raise on every path"
    )
    rationale = (
        "a swallowed exception is an unaccounted fate — the SLO "
        "engine, flight recorder and drop discipline all go blind "
        "exactly when a failure happens (ISSUE 9 tentpole)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_scope(module.name):
            return []
        findings: List[Finding] = []
        for qualname, func in _functions(module.tree):
            if not any(
                isinstance(sub, ast.ExceptHandler) for sub in ast.walk(func)
            ):
                continue
            cfg = build_cfg(func)
            for node in cfg.nodes.values():
                if node.kind != "handler":
                    continue
                handler = node.stmt
                if self._skip(module, handler):
                    continue
                if self._silent_path(cfg, node, handler):
                    names = ",".join(_handler_type_names(handler)) or "all"
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=module.path,
                            line=node.line,
                            col=0,
                            message=(
                                f"except handler for {names} can reach "
                                "the function exit without recording the "
                                "failure — bump a counter, record/trace "
                                "the drop, use the exception value, or "
                                "re-raise"
                            ),
                            symbol=f"{qualname}:{names}",
                        )
                    )
        return findings

    @staticmethod
    def _skip(module: ModuleInfo, handler: ast.ExceptHandler) -> bool:
        names = _handler_type_names(handler)
        if names and all(name in EXEMPT_TYPES for name in names):
            return True
        lines = module.source_lines
        check = [handler.lineno]
        if handler.body:
            check.append(handler.body[0].lineno)
        for lineno in check:
            if 0 < lineno <= len(lines) and "pragma: no cover" in (
                lines[lineno - 1]
            ):
                return True
        return False

    def _silent_path(
        self, cfg: CFG, entry: Node, handler: ast.ExceptHandler
    ) -> bool:
        exc_name = handler.name
        stack = [entry.nid]
        visited: Set[int] = set()
        while stack:
            nid = stack.pop()
            if nid in visited:
                continue
            visited.add(nid)
            if nid == cfg.exit_id:
                return True
            node = cfg.nodes[nid]
            if nid != entry.nid and self._is_effect(node, exc_name):
                continue
            for dst, _kind in cfg.succ(nid):
                if dst not in visited:
                    stack.append(dst)
        return False

    @staticmethod
    def _is_effect(node: Node, exc_name: Optional[str]) -> bool:
        stmt = node.stmt
        if isinstance(stmt, ast.Raise) and node.kind == "stmt":
            return True
        if (
            isinstance(stmt, ast.Return)
            and node.kind == "stmt"
            and stmt.value is not None
        ):
            return True
        if _uses_exception(node, exc_name):
            return True
        if _calls_effect(node):
            return True
        if node.kind == "stmt" and _writes_effect(stmt):
            return True
        return False


__all__ = ["ExceptionEffectRule"]
