"""The sirlint rule registry.

Each rule is a class implementing :class:`sirlint.rules.base.Rule`;
:data:`ALL_RULES` lists them in id order.  Adding a rule = adding a
module here and appending its class.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from sirlint.rules.asynchygiene import AsyncHygieneRule
from sirlint.rules.awaitrace import AwaitInterleaveRule
from sirlint.rules.base import Rule, run_rules
from sirlint.rules.drops import DropDisciplineRule
from sirlint.rules.effects import ExceptionEffectRule
from sirlint.rules.hotpath import HotPathAllocationRule
from sirlint.rules.metrics import MetricsRule
from sirlint.rules.purity import PurityRule
from sirlint.rules.recorder import RecorderDisciplineRule
from sirlint.rules.ringlife import RingSlotLifetimeRule
from sirlint.rules.state import MutableStateRule
from sirlint.rules.wire import WireLayoutRule

#: Every registered rule class, in id order.
ALL_RULES: Tuple[Type[Rule], ...] = (
    PurityRule,        # SIR001
    MutableStateRule,  # SIR002
    AsyncHygieneRule,  # SIR003
    MetricsRule,       # SIR004
    WireLayoutRule,    # SIR005
    DropDisciplineRule,  # SIR006
    RecorderDisciplineRule,  # SIR007
    HotPathAllocationRule,  # SIR008
    RingSlotLifetimeRule,   # SIR009 (dataflow)
    AwaitInterleaveRule,    # SIR010 (dataflow)
    ExceptionEffectRule,    # SIR011 (dataflow)
)


def rule_by_id(rule_id: str) -> Optional[Type[Rule]]:
    """Look a rule class up by its ``SIRxxx`` id."""
    for cls in ALL_RULES:
        if cls.id == rule_id:
            return cls
    return None


__all__ = ["ALL_RULES", "Rule", "rule_by_id", "run_rules"]
