"""SIR001 — sans-IO purity of the dataplane, codec and token layers.

PR 3 made :mod:`repro.dataplane` the single forwarding algorithm for
both the simulator and the live UDP overlay.  The whole point of that
refactor is that the pipeline consumes a ``HopInput`` (including the
clock, as ``now_ms``) and produces a ``Decision`` — it must never reach
for a wall clock, an RNG, a socket, the filesystem or an event loop of
its own, or the sim and live drivers silently diverge.  The same holds
for the byte codec (:mod:`repro.viper`) and the capability layer
(:mod:`repro.tokens`), which both sides share.

Two checks:

* **per-file** — a pure module may not import (or call) the forbidden
  effectful stdlib modules, nor call the ``open``/``input``/
  ``__import__`` builtins;
* **cross-file** — a pure module may only import repo modules that are
  themselves inside the pure closure, so impurity cannot sneak in one
  hop removed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

#: Packages whose every module must stay sans-IO.
PURE_PACKAGES: Tuple[str, ...] = (
    "repro.dataplane",
    "repro.viper",
    "repro.tokens",
)

#: Leaf modules outside those packages that the pure set is allowed to
#: import because they are themselves pure (and this rule checks them
#: too): MacAddress/ethertype constants and the seed-stable packet-id
#: allocator PR 3 introduced.
PURE_LEAF_MODULES: Tuple[str, ...] = (
    "repro.net.addresses",
    "repro.sim.ids",
)

#: Effectful stdlib modules a pure module must not touch.  Wall-clock
#: time arrives via ``HopInput.now_ms``; randomness via an injected rng.
FORBIDDEN_MODULES: Tuple[str, ...] = (
    "asyncio",
    "socket",
    "time",
    "random",
    "os",
    "io",
    "pathlib",
    "tempfile",
    "shutil",
    "subprocess",
    "threading",
    "selectors",
)

#: Builtins whose call is IO (or dynamic import) by definition.
FORBIDDEN_BUILTINS: Tuple[str, ...] = ("open", "input", "__import__")


def is_pure_module(name: str) -> bool:
    """True when ``name`` falls inside the enforced pure closure."""
    for package in PURE_PACKAGES:
        if name == package or name.startswith(package + "."):
            return True
    return name in PURE_LEAF_MODULES


def _module_root(dotted: str) -> str:
    return dotted.split(".")[0]


class PurityRule(Rule):
    """SIR001: pure packages may not import or call IO facilities."""

    id = "SIR001"
    title = "sans-IO purity of repro.dataplane / repro.viper / repro.tokens"
    rationale = (
        "PR 3 sans-IO pipeline: wall-clock must arrive via HopInput; "
        "drivers own every effect (Sirpent §2, §2.2)."
    )

    def __init__(self) -> None:
        #: (module, path, lineno, col, imported) repo-internal imports
        #: out of pure modules, resolved against the closure at the end.
        self._repo_imports: List[Tuple[ModuleInfo, ast.AST, str]] = []

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not is_pure_module(module.name):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _module_root(alias.name) in FORBIDDEN_MODULES:
                        yield module.finding(
                            self.id, node,
                            f"pure module imports effectful {alias.name!r} "
                            "(wall-clock/IO must come from the driver)",
                            symbol=f"import:{alias.name}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and _module_root(node.module) in FORBIDDEN_MODULES:
                    yield module.finding(
                        self.id, node,
                        f"pure module imports effectful {node.module!r} "
                        "(wall-clock/IO must come from the driver)",
                        symbol=f"import:{node.module}",
                    )
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee in FORBIDDEN_BUILTINS:
                    yield module.finding(
                        self.id, node,
                        f"pure module calls {callee}() — file/console IO "
                        "belongs to the drivers",
                        symbol=f"call:{callee}",
                    )

    def collect(self, module: ModuleInfo) -> None:
        if not is_pure_module(module.name):
            return
        for imported in module.imported_modules:
            if imported.startswith("repro.") or imported == "repro":
                self._repo_imports.append((module, module.tree, imported))

    def finalize(self) -> Iterable[Finding]:
        for module, node, imported in self._repo_imports:
            target = imported
            # "from repro.viper.wire import X" arrives as the module
            # path; "from repro.dataplane import X" names a package.
            if not is_pure_module(target):
                yield Finding(
                    rule=self.id,
                    path=module.path,
                    line=self._import_line(module, target),
                    col=0,
                    message=(
                        f"pure module {module.name} imports {target}, "
                        "which is outside the sans-IO closure "
                        f"({', '.join(PURE_PACKAGES + PURE_LEAF_MODULES)})"
                    ),
                    symbol=f"repo-import:{target}",
                )

    @staticmethod
    def _import_line(module: ModuleInfo, target: str) -> int:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == target:
                return node.lineno
            if isinstance(node, ast.Import):
                if any(alias.name == target for alias in node.names):
                    return node.lineno
        return 1
