"""SIR003 — async hygiene in the live overlay (and anywhere async).

The live overlay (:mod:`repro.live`, :mod:`repro.obs.httpd`) runs the
Sirpent stack on a real asyncio event loop.  Two bug classes silently
wreck it:

* a **blocking call inside an** ``async def`` (``time.sleep``, sync
  socket ops, file IO) stalls the whole loop — every router and host in
  the process stops forwarding for the duration;
* a **discarded coroutine** (``self.endpoint.open(...)`` without
  ``await``/``create_task``) silently does nothing: the socket never
  binds, the retry never arms, and the first symptom is a dead overlay.

Detection is cross-file: the rule first builds a repo-wide table of
``async def`` functions/methods, then flags any expression-statement
call whose callee resolves to one (or to a well-known stdlib coroutine
factory) without being awaited or scheduled.  A method *name* that is
async in one class and sync in another is ambiguous and never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

#: Dotted calls that block the event loop when made from a coroutine.
BLOCKING_CALLS: Tuple[str, ...] = (
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
)

#: Builtins that are file/console IO — blocking by nature.
BLOCKING_BUILTINS: Tuple[str, ...] = ("open", "input")

#: asyncio module functions that legitimately *consume* or schedule a
#: coroutine, so a discarded call to them is fine.
ASYNCIO_SINKS = frozenset({
    "run", "create_task", "ensure_future", "get_event_loop",
    "get_running_loop", "new_event_loop", "set_event_loop",
    "run_coroutine_threadsafe", "all_tasks", "current_task",
})

#: Attribute callees that are known coroutine functions even without a
#: repo-side ``async def`` (asyncio stream API).  Kept deliberately
#: short and unambiguous.
KNOWN_ASYNC_ATTRS = frozenset(
    {"drain", "wait_for", "open_connection", "start_server"}
)


def _call_is_scheduled(call: ast.Call) -> bool:
    """True when the coroutine is handed to create_task/ensure_future."""
    parent_ok_names = {"create_task", "ensure_future", "run_coroutine_threadsafe"}
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in parent_ok_names:
        return True
    if isinstance(func, ast.Name) and func.id in parent_ok_names:
        return True
    return False


class AsyncHygieneRule(Rule):
    """SIR003: no blocking calls in coroutines, no discarded coroutines."""

    id = "SIR003"
    title = "async hygiene: no blocking calls / un-awaited coroutines"
    rationale = (
        "PR 1 live overlay: one asyncio loop drives every router; a "
        "blocked loop is a stalled network, a dropped coroutine a "
        "silent no-op."
    )

    def __init__(self) -> None:
        #: Method/function name -> how it is defined across the repo.
        self._async_names: Set[str] = set()
        self._sync_names: Set[str] = set()
        #: Fully dotted async functions ("repro.live.link.LiveEndpoint.open").
        self._async_qualnames: Set[str] = set()
        #: Deferred discarded-call sites: (module, call, callee-name,
        #: resolved-dotted-target-or-None).
        self._discards: List[Tuple[ModuleInfo, ast.Call, str, str]] = []

    # -- per-file: blocking calls inside async def -------------------------

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                if callee in BLOCKING_CALLS:
                    yield module.finding(
                        self.id, node,
                        f"blocking call {callee}() inside async "
                        f"{func.name}() stalls the event loop "
                        "(use the asyncio equivalent)",
                        symbol=f"blocking:{func.name}:{callee}",
                    )
                elif callee in BLOCKING_BUILTINS:
                    yield module.finding(
                        self.id, node,
                        f"file/console IO {callee}() inside async "
                        f"{func.name}() blocks the event loop",
                        symbol=f"blocking:{func.name}:{callee}",
                    )

    # -- cross-file: the async symbol table and discarded calls ------------

    def collect(self, module: ModuleInfo) -> None:
        self._index_defs(module)
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.Expr):
                    continue
                call = stmt.value
                if not isinstance(call, ast.Call) or _call_is_scheduled(call):
                    continue
                self._record_discard(module, call)

    def _index_defs(self, module: ModuleInfo) -> None:
        def visit(body, prefix: str) -> None:
            for node in body:
                if isinstance(node, ast.AsyncFunctionDef):
                    self._async_names.add(node.name)
                    self._async_qualnames.add(f"{prefix}{node.name}")
                elif isinstance(node, ast.FunctionDef):
                    self._sync_names.add(node.name)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}{node.name}.")

        visit(module.tree.body, f"{module.name}.")

    def _record_discard(self, module: ModuleInfo, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = module.imports.get(func.id, f"{module.name}.{func.id}")
            self._discards.append((module, call, func.id, resolved))
        elif isinstance(func, ast.Attribute):
            owner = dotted_name(func.value)
            if owner is not None and module.imports.get(owner, owner) == "asyncio":
                self._discards.append(
                    (module, call, func.attr, f"asyncio.{func.attr}")
                )
            else:
                self._discards.append((module, call, func.attr, ""))

    def finalize(self) -> Iterable[Finding]:
        for module, call, name, resolved in self._discards:
            if resolved.startswith("asyncio."):
                if name not in ASYNCIO_SINKS:
                    yield module.finding(
                        self.id, call,
                        f"asyncio.{name}(...) returns a coroutine/future "
                        "that is discarded — await it or create_task it",
                        symbol=f"discard:asyncio.{name}",
                    )
                continue
            if resolved and resolved in self._async_qualnames:
                yield module.finding(
                    self.id, call,
                    f"coroutine {resolved}(...) is called but never "
                    "awaited — the call does nothing",
                    symbol=f"discard:{resolved}",
                )
                continue
            if name in KNOWN_ASYNC_ATTRS or (
                name in self._async_names and name not in self._sync_names
            ):
                yield module.finding(
                    self.id, call,
                    f".{name}(...) resolves to a coroutine function that "
                    "is never awaited — the call does nothing",
                    symbol=f"discard:{name}",
                )
