"""The rule protocol every sirlint check implements.

A rule participates in two passes:

* the **per-file pass**: :meth:`Rule.check` receives one
  :class:`~sirlint.model.ModuleInfo` and yields findings local to it;
* the **cross-file pass**: :meth:`Rule.collect` is called once per
  module to accumulate whole-repo state (import graphs, metric
  declarations, async symbol tables) and :meth:`Rule.finalize` yields
  the findings that only make sense over the full file set.

The engine instantiates each rule class fresh per run, so rules may
keep mutable accumulator state on ``self`` without bleeding between
runs (the very sin SIR002 exists to catch in the library).
"""

from __future__ import annotations

from typing import Iterable, List

from sirlint.model import Finding, ModuleInfo


class Rule:
    """Base class: a named, documented, two-pass analysis."""

    #: Stable rule identifier ("SIR001").
    id: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: The invariant's provenance (paper section / PR that bought it).
    rationale: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        """Per-file findings (default: none)."""
        return ()

    def collect(self, module: ModuleInfo) -> None:
        """Accumulate cross-file state (default: nothing)."""

    def finalize(self) -> Iterable[Finding]:
        """Cross-file findings once every module was collected."""
        return ()


def run_rules(
    rules: Iterable[Rule], modules: Iterable[ModuleInfo]
) -> List[Finding]:
    """Drive both passes over ``modules`` and gather every finding."""
    rules = list(rules)
    modules = list(modules)
    findings: List[Finding] = []
    for module in modules:
        for rule in rules:
            findings.extend(rule.check(module))
            rule.collect(module)
    for rule in rules:
        findings.extend(rule.finalize())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
