"""SIR009 — ring-slot lifetime: acquire/release balance on every path.

PR 8's zero-allocation fastpath hands out ``BufferRing`` slots and
``PacketView``s over them.  A slot leaked on an early return or
exception path silently shrinks the ring until the overflow
allocator re-introduces the very per-packet churn the ring exists to
kill; a view touched after ``release()`` reads memory the next
datagram is already overwriting.  This rule runs a forward dataflow
over each function's CFG with a per-variable ownership lattice —
the powerset of:

* ``H`` (held)      — owns a live slot,
* ``R`` (released)  — the slot was given back,
* ``E`` (escaped)   — ownership moved elsewhere (transferred to a
  callee, a container, the caller, or into a ``PacketView``).

Ownership follows *move semantics*: passing a tracked value to an
unknown call, returning it, or storing it in a container transfers
ownership and ends tracking (``E`` is absorbing — it suppresses
leak/use reports so correlated branches like ``send_view``'s
reliable-pin vs unreliable-release split stay quiet).  A small borrow
table (``len``, ``isinstance``, the in-place codec helpers…) lists
callees that inspect without consuming.

Findings:

* leak — ``H`` (without ``E``) reaches the exit or the raise-exit;
* use-after-release — a read while ``R`` (without ``E``);
* double-release — ``release`` while already ``R``;
* escape — the view/slot itself stored onto ``self`` without
  ``tobytes()`` (raw buffer memory outliving its dispatch scope).

Origins: ``<…ring…>.acquire()``, ``PacketView(...)`` /
``PacketView.of_slot(...)`` (which consumes the slot argument),
parameters annotated ``PacketView``, and iteration over parameters
annotated as containers of ``PacketView`` (batch loops).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from sirlint.dataflow import build_cfg, solve
from sirlint.dataflow.cfg import CFG, Node
from sirlint.model import Finding, ModuleInfo, dotted_name
from sirlint.rules.base import Rule

HELD = "H"
RELEASED = "R"
ESCAPED = "E"

_FRESH: FrozenSet[str] = frozenset((HELD,))

State = Dict[str, FrozenSet[str]]

#: Callees that inspect a view/slot without taking ownership.
BORROWING = {
    "len",
    "isinstance",
    "repr",
    "str",
    "bytes",
    "bool",
    "id",
    "print",
    "type",
    "format",
    "memoryview",
    # the in-place VIPER codec helpers mutate through the view and
    # hand it straight back (PR 8's hop fastpath)
    "decode_preamble",
    "parse_segment_view",
    "hop_move_into",
    "restamp_seq_into",
    "encode_preamble_into",
}

_RELEVANT_NAMES = {"acquire", "of_slot", "PacketView", "send_view"}


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""
    return text.replace("'", "").replace('"', "")


def _mentions_relevant(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _RELEVANT_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _RELEVANT_NAMES:
            return True
    return False


def _functions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """Every (qualname, def) in the module, classes flattened."""
    out: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child))
                visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out


class _Ownership:
    """The SIR009 transfer function over one function's CFG."""

    def __init__(self, module: ModuleInfo, qualname: str, func) -> None:
        self.module = module
        self.qualname = qualname
        self.func = func
        self.view_params: Set[str] = set()
        self.view_collections: Set[str] = set()
        self.origin_line: Dict[str, int] = {}
        self.sink: Optional[List[Finding]] = None
        self.seen: Set[Tuple[int, str, str]] = set()
        self._classify_params()

    def _classify_params(self) -> None:
        args = self.func.args
        params = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        )
        for arg in params:
            text = _annotation_text(arg.annotation)
            if "PacketView" not in text:
                continue
            if text == "PacketView" or text.endswith(".PacketView"):
                self.view_params.add(arg.arg)
            else:
                self.view_collections.add(arg.arg)

    # -- findings ------------------------------------------------------

    def _report(self, node: Node, var: str, kind: str, message: str) -> None:
        if self.sink is None:
            return
        key = (node.line, var, kind)
        if key in self.seen:
            return
        self.seen.add(key)
        self.sink.append(
            Finding(
                rule=RingSlotLifetimeRule.id,
                path=self.module.path,
                line=node.line,
                col=0,
                message=message,
                symbol=f"{self.qualname}.{var}:{kind}",
            )
        )

    def _report_boundary(
        self, var: str, kind: str, message: str
    ) -> None:
        if self.sink is None:
            return
        line = self.origin_line.get(var, self.func.lineno)
        key = (line, var, kind)
        if key in self.seen:
            return
        self.seen.add(key)
        self.sink.append(
            Finding(
                rule=RingSlotLifetimeRule.id,
                path=self.module.path,
                line=line,
                col=0,
                message=message,
                symbol=f"{self.qualname}.{var}:{kind}",
            )
        )

    # -- lattice helpers -----------------------------------------------

    def _check_use(self, var: str, state: State, node: Node) -> None:
        flags = state.get(var)
        if flags is None:
            return
        if RELEASED in flags and ESCAPED not in flags:
            qual = "" if flags == frozenset((RELEASED,)) else "on some paths "
            self._report(
                node,
                var,
                "use-after-release",
                f"'{var}' is used after its ring slot was released "
                f"{qual}— the buffer may already hold the next datagram",
            )

    def _consume(self, var: str, state: State, node: Node) -> None:
        flags = state.get(var)
        if flags is None:
            return
        if RELEASED in flags and ESCAPED not in flags:
            qual = "" if flags == frozenset((RELEASED,)) else "on some paths "
            self._report(
                node,
                var,
                "double-release",
                f"'{var}' is released twice {qual}— BufferRing.release "
                "raises on double release at runtime",
            )
        keep = frozenset((RELEASED,)) | (
            frozenset((ESCAPED,)) if ESCAPED in flags else frozenset()
        )
        state[var] = keep

    def _escape(self, var: str, state: State) -> None:
        flags = state.get(var)
        if flags is not None:
            state[var] = flags | frozenset((ESCAPED,))

    def _tracked_base(self, expr: ast.AST, state: State) -> Optional[str]:
        node = expr
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name) and node.id in state:
            return node.id
        return None

    # -- expression walk -----------------------------------------------

    def _scan(self, expr: ast.AST, state: State, node: Node) -> None:
        if isinstance(expr, ast.Call):
            self._eval_call(expr, state, node)
            return
        if isinstance(expr, ast.Name):
            if not isinstance(expr.ctx, ast.Store):
                self._check_use(expr.id, state, node)
            return
        if isinstance(
            expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return
        for child in ast.iter_child_nodes(expr):
            self._scan(child, state, node)

    def _eval(self, expr: ast.AST, state: State, node: Node):
        """Classify a value expression: 'fresh', ('move', var), or None."""
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, state, node)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state, node)
        if isinstance(expr, ast.Name):
            self._check_use(expr.id, state, node)
            if expr.id in state:
                return ("move", expr.id)
            return None
        self._scan(expr, state, node)
        return None

    def _eval_call(self, call: ast.Call, state: State, node: Node):
        callee = dotted_name(call.func) or ""
        parts = callee.split(".") if callee else []
        last = parts[-1] if parts else ""
        base = parts[0] if parts else ""
        method_base: Optional[str] = None
        if isinstance(call.func, ast.Attribute):
            inner = call.func.value
            if isinstance(inner, ast.Name) and inner.id in state:
                method_base = inner.id
            else:
                self._scan(inner, state, node)
        args = list(call.args) + [kw.value for kw in call.keywords]

        if last == "release":
            if method_base is not None:
                self._consume(method_base, state, node)
            for arg in args:
                if isinstance(arg, ast.Name) and arg.id in state:
                    self._consume(arg.id, state, node)
                else:
                    self._scan(arg, state, node)
            return None
        if method_base is not None:
            self._check_use(method_base, state, node)
        if last == "send_view":
            rest = args
            if args and isinstance(args[0], ast.Name) and args[0].id in state:
                self._consume(args[0].id, state, node)
                rest = args[1:]
            for arg in rest:
                self._scan(arg, state, node)
            return None
        if last == "acquire" and "ring" in callee.lower():
            for arg in args:
                self._scan(arg, state, node)
            return "fresh"
        if last in ("of_slot", "PacketView"):
            for arg in args:
                if isinstance(arg, ast.Name) and arg.id in state:
                    self._check_use(arg.id, state, node)
                    self._escape(arg.id, state)  # slot moves into the view
                else:
                    self._scan(arg, state, node)
            return "fresh"
        if last == "tobytes":
            for arg in args:
                self._scan(arg, state, node)
            return "copy"
        if base in BORROWING or last in BORROWING:
            for arg in args:
                if isinstance(arg, ast.Name):
                    self._check_use(arg.id, state, node)
                else:
                    self._scan(arg, state, node)
            return None
        # Unknown callee: tracked arguments move into it.
        for arg in args:
            tracked = self._tracked_base(arg, state)
            if tracked is not None:
                self._check_use(tracked, state, node)
                self._escape(tracked, state)
            else:
                self._scan(arg, state, node)
        return None

    # -- bindings ------------------------------------------------------

    def _bind(self, target: ast.AST, tag, state: State, node: Node) -> None:
        if isinstance(target, ast.Name):
            prior = state.get(target.id)
            if (
                prior is not None
                and HELD in prior
                and ESCAPED not in prior
                and not (tag and tag[0] == "move" and tag[1] == target.id)
            ):
                self._report(
                    node,
                    target.id,
                    "leak",
                    f"'{target.id}' is rebound while still holding a ring "
                    "slot — the previous slot leaks",
                )
            if tag == "fresh":
                state[target.id] = _FRESH
                self.origin_line[target.id] = node.line
            elif tag is not None and tag[0] == "move":
                src = tag[1]
                if src != target.id:
                    state[target.id] = state[src]
                    self._escape(src, state)
                    self.origin_line.setdefault(target.id, node.line)
            else:
                state.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elem in target.elts:
                self._bind(elem, None, state, node)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            onto_self = isinstance(root, ast.Name) and root.id == "self"
            if tag == "fresh" or (tag is not None and tag[0] == "move"):
                if onto_self:
                    var = tag[1] if tag != "fresh" else "<fresh>"
                    self._report(
                        node,
                        var,
                        "escape",
                        "a ring-backed view/slot is stored beyond its "
                        "dispatch scope — copy out with tobytes() or pin "
                        "via the pending-frame protocol",
                    )
                if tag != "fresh":
                    self._escape(tag[1], state)
            if isinstance(target, ast.Subscript):
                self._scan(target.slice, state, node)

    # -- the transfer function -----------------------------------------

    def transfer(self, node: Node, in_state: State) -> State:
        state: State = dict(in_state)
        if node.kind == "entry":
            for name in self.view_params:
                state[name] = _FRESH
                self.origin_line[name] = self.func.lineno
            return state
        if node.kind in ("exit", "raise", "handler", "aexit"):
            return state
        if node.kind == "loop-bind":
            self._bind_loop_target(node, state)
            return state
        stmt = node.stmt
        if node.kind == "branch":
            for expr in node.exprs:
                self._scan(expr, state, node)
            return state
        if isinstance(stmt, ast.Assign):
            tag = self._eval(stmt.value, state, node)
            for target in stmt.targets:
                self._bind(target, tag, state, node)
            return state
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tag = self._eval(stmt.value, state, node)
            self._bind(stmt.target, tag, state, node)
            return state
        if isinstance(stmt, ast.Expr):
            tag = self._eval(stmt.value, state, node)
            if tag == "fresh":
                self._report(
                    node,
                    "<discarded>",
                    "leak",
                    "acquire()/PacketView result is discarded — the slot "
                    "can never be released",
                )
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tag = self._eval(stmt.value, state, node)
                if tag is not None and tag != "fresh" and tag != "copy":
                    self._escape(tag[1], state)
            return state
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
                else:
                    self._scan(target, state, node)
            return state
        for expr in node.exprs:
            self._scan(expr, state, node)
        return state

    def _bind_loop_target(self, node: Node, state: State) -> None:
        stmt = node.stmt
        iter_expr = getattr(stmt, "iter", None)
        yields_views = (
            isinstance(iter_expr, ast.Name)
            and iter_expr.id in self.view_collections
        )
        target = getattr(stmt, "target", None)
        if target is None:
            return
        if not yields_views:
            self._bind(target, None, state, node)
            return
        if isinstance(target, ast.Name):
            self._bind(target, "fresh", state, node)
        elif isinstance(target, (ast.Tuple, ast.List)) and target.elts:
            first = target.elts[0]
            self._bind(first, "fresh", state, node)
            for elem in target.elts[1:]:
                self._bind(elem, None, state, node)


class RingSlotLifetimeRule(Rule):
    """SIR009: every acquired ring slot is released exactly once."""

    id = "SIR009"
    title = (
        "ring-slot lifetime: acquire/release balanced on every path, "
        "no use-after-release, no raw-view escapes"
    )
    rationale = (
        "PR 8's buffer-ring fastpath recycles datagram memory; a leaked "
        "slot degrades to heap churn, a released view is the next "
        "packet's bytes (ISSUE 9 tentpole)."
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not module.name.startswith("repro"):
            return []
        findings: List[Finding] = []
        for qualname, func in _functions(module.tree):
            analysis = _Ownership(module, qualname, func)
            if (
                not analysis.view_params
                and not analysis.view_collections
                and not _mentions_relevant(func)
            ):
                continue
            findings.extend(self._check_function(analysis))
        return findings

    def _check_function(self, analysis: _Ownership) -> List[Finding]:
        cfg: CFG = build_cfg(analysis.func)
        # Exception edges carry the *post*-state here: a statement's
        # ownership effects (release first and foremost) are assumed
        # complete before its exception propagates.  The alternative —
        # pre-state — shadows every release with its own failure path
        # and reports the slot as leaked by the very call that freed it.
        in_states = solve(
            cfg,
            init={},
            transfer=analysis.transfer,
            join=_join,
            exc_transfer=analysis.transfer,
        )
        sink: List[Finding] = []
        analysis.sink = sink
        for nid in sorted(in_states, key=lambda n: (cfg.nodes[n].line, n)):
            analysis.transfer(cfg.nodes[nid], in_states[nid])
        for exit_id, suffix in (
            (cfg.exit_id, "on some path"),
            (cfg.raise_id, "on an exception path"),
        ):
            boundary = in_states.get(exit_id)
            if not boundary:
                continue
            for var, flags in sorted(boundary.items()):
                if HELD in flags and ESCAPED not in flags:
                    analysis._report_boundary(
                        var,
                        "leak",
                        f"'{var}' still holds a ring slot {suffix} — "
                        "release() or transfer ownership before leaving "
                        "the dispatch scope",
                    )
        analysis.sink = None
        return sink


def _join(a: State, b: State) -> State:
    if a == b:
        return a
    out: State = dict(a)
    for var, flags in b.items():
        prior = out.get(var)
        out[var] = flags if prior is None else (prior | flags)
    return out


__all__ = ["RingSlotLifetimeRule"]
