"""SIR005 — wire-layout consistency in the codec modules.

Slick Packets and the path-validation literature agree on one thing:
source-routed designs live or die on header invariants being
*checkable*.  The VIPER codec (:mod:`repro.viper`) and the live overlay
framing (:mod:`repro.live.frames`) encode byte layouts by hand —
``int.to_bytes`` widths, flag masks, declared ``*_BYTES`` sizes — and
nothing ties those numbers together except discipline.  This rule makes
the discipline mechanical:

* **flag masks are disjoint single bits** — every module-level
  ``FLAG_*`` constant must be a power of two, and no two flags in one
  module may share a bit (a shared bit means one wire bit decodes as
  two meanings);
* **no magic field widths** — a ``x.to_bytes(<int literal>, ...)`` in a
  wire module hides layout in a call site; widths must reference a
  named ``*_BYTES`` constant so header-size arithmetic has one source
  of truth;
* **cross-file constant agreement** — a ``*_BYTES``/``FLAG_*`` constant
  defined in several wire modules must carry the same value everywhere
  (e.g. ``TRAILER_LENGTH_BYTES`` in the packet codec vs the live
  framing).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from sirlint.model import Finding, ModuleInfo, literal_int
from sirlint.rules.base import Rule

#: Modules whose byte layouts this rule audits.
WIRE_MODULES: Tuple[str, ...] = (
    "repro.viper.wire",
    "repro.viper.flags",
    "repro.viper.packet",
    "repro.viper.portinfo",
    "repro.live.frames",
    "repro.net.addresses",
)


def is_wire_module(name: str) -> bool:
    """True when ``name`` is one of the audited codec modules."""
    return name in WIRE_MODULES


def _module_int_constants(module: ModuleInfo) -> Dict[str, Tuple[int, int]]:
    """Module-level ``NAME = <int literal expr>`` -> (value, lineno)."""
    out: Dict[str, Tuple[int, int]] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = literal_int(node.value)
                if value is not None:
                    out[target.id] = (value, node.lineno)
    return out


class WireLayoutRule(Rule):
    """SIR005: flag masks disjoint, field widths named, constants agree."""

    id = "SIR005"
    title = "wire-layout consistency (flags disjoint, widths named)"
    rationale = (
        "VIPER Figure 1 / live preamble: byte layouts are hand-rolled; "
        "one source of truth per width, one meaning per bit."
    )

    def __init__(self) -> None:
        #: constant name -> [(value, module, line)] across wire modules.
        self._constants: Dict[str, List[Tuple[int, ModuleInfo, int]]] = {}

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        if not is_wire_module(module.name):
            return
        constants = _module_int_constants(module)

        # (a) flag masks: single bits, pairwise disjoint.
        flags = {
            name: value for name, (value, _) in constants.items()
            if name.startswith("FLAG_") or name.endswith("_FLAG")
        }
        for name, value in sorted(flags.items()):
            if value <= 0 or value & (value - 1):
                yield module.finding(
                    self.id, _const_node(module, name),
                    f"flag constant {name} = {value:#x} is not a single "
                    "bit — flags must be disjoint powers of two",
                    symbol=f"flag-bit:{name}",
                )
        names = sorted(flags)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if flags[a] > 0 and flags[b] > 0 and flags[a] & flags[b]:
                    yield module.finding(
                        self.id, _const_node(module, a),
                        f"flag constants {a} ({flags[a]:#x}) and {b} "
                        f"({flags[b]:#x}) share wire bits",
                        symbol=f"flag-overlap:{a}:{b}",
                    )

        # (b) to_bytes widths must be named constants, not magic ints.
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "to_bytes"
                and node.args
            ):
                width = node.args[0]
                if isinstance(width, ast.Constant) and isinstance(width.value, int):
                    yield module.finding(
                        self.id, node,
                        f"magic field width {width.value} in to_bytes() — "
                        "name it with a *_BYTES constant so the layout "
                        "has one source of truth",
                        symbol=f"magic-width:{width.value}:L{node.lineno}",
                    )

    def collect(self, module: ModuleInfo) -> None:
        if not is_wire_module(module.name):
            return
        for name, (value, lineno) in _module_int_constants(module).items():
            if name.startswith("FLAG_") or name.endswith("_BYTES"):
                self._constants.setdefault(name, []).append(
                    (value, module, lineno)
                )

    def finalize(self) -> Iterable[Finding]:
        for name, sites in sorted(self._constants.items()):
            values = sorted({value for value, _, _ in sites})
            if len(values) > 1:
                _, module0, line0 = sites[0]
                where = ", ".join(
                    f"{m.path}:{ln}={v}" for v, m, ln in sites
                )
                yield Finding(
                    rule=self.id,
                    path=module0.path,
                    line=line0,
                    col=0,
                    message=(
                        f"wire constant {name} disagrees across codec "
                        f"modules: {where}"
                    ),
                    symbol=f"const-conflict:{name}",
                )


def _const_node(module: ModuleInfo, name: str) -> ast.AST:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                return node
    return module.tree
