"""SARIF 2.1.0 rendering so findings annotate PR diffs.

GitHub code scanning ingests SARIF; one ``run`` object carries the
rule metadata (id, title, rationale) and one ``result`` per finding.
Stale-baseline entries and parse errors become tool-level
``notifications`` equivalents — reported as results against the
baseline/offending file so they are never silently dropped.
"""

from __future__ import annotations

from typing import Dict, List

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
INFO_URI = "https://github.com/sirpent-repro"


def render_sarif(result, rules, version: str) -> Dict[str, object]:
    """Build the SARIF payload for one :class:`~sirlint.engine.RunResult`."""
    rule_meta = [
        {
            "id": cls.id,
            "name": cls.__name__,
            "shortDescription": {"text": cls.title},
            "fullDescription": {"text": cls.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for cls in rules
    ]
    rule_meta.append(
        {
            "id": "SIR000",
            "name": "SuppressionAudit",
            "shortDescription": {
                "text": "suppression audit: reasons mandatory, no dead "
                "or unknown disables"
            },
            "fullDescription": {
                "text": "inline disables follow the baseline discipline: "
                "justified, real, and alive"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    rule_meta.append(
        {
            "id": "baseline",
            "name": "StaleBaseline",
            "shortDescription": {"text": "stale baseline entry"},
            "fullDescription": {
                "text": "the baselined finding no longer exists; the "
                "entry must be deleted"
            },
            "defaultConfiguration": {"level": "error"},
        }
    )
    known_ids = [meta["id"] for meta in rule_meta]

    results: List[Dict[str, object]] = []
    for finding in result.findings:
        entry: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": f"{finding.message}  [{finding.symbol}]"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 0) + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"sirlintKey/v1": finding.key},
        }
        if finding.rule in known_ids:
            entry["ruleIndex"] = known_ids.index(finding.rule)
        results.append(entry)
    for stale in result.stale_baseline:
        results.append(
            {
                "ruleId": "baseline",
                "ruleIndex": known_ids.index("baseline"),
                "level": "error",
                "message": {
                    "text": (
                        f"stale baseline entry {stale.key!r} — the finding "
                        "no longer exists; delete the line"
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": "tools/sirlint/baseline.txt",
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": max(stale.lineno, 1)},
                        }
                    }
                ],
            }
        )

    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sirlint",
                        "version": version,
                        "informationUri": INFO_URI,
                        "rules": rule_meta,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


__all__ = ["render_sarif"]
