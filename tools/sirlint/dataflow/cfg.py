"""Statement-granularity control-flow graphs over Python function ASTs.

One :class:`CFG` models one ``def``/``async def`` body.  Nodes are
statements (plus a handful of pseudo-nodes), edges carry a kind:

* ``"normal"`` — ordinary fall-through / branch flow;
* ``"exc"`` — flow taken only when an exception is raised.  Exception
  edges leave a statement with its *pre*-state (the statement's own
  effects may not have happened yet), which is exactly what the
  ring-slot lifetime rule needs on ``try``/``finally`` paths.

Pseudo-node kinds:

* ``"entry"`` / ``"exit"`` / ``"raise"`` — synthetic entry, normal
  exit, and uncaught-exception exit;
* ``"branch"`` — an ``if``/``while``/``for`` header; its ``exprs``
  cover only the header expression, never the body;
* ``"loop-bind"`` — the ``for`` target binding.  It sits on the body
  edge only, so the binding does not apply on the loop-exhausted edge;
* ``"handler"`` — an ``except`` clause entry (binds the exception);
* ``"aexit"`` — the awaiting ``__aexit__`` of an ``async with``.

``finally`` blocks are *duplicated per continuation kind* (normal /
exception / return / break / continue), the classic construction that
keeps ``try: return a`` / ``finally: return b`` precise: the override
return is the only path that reaches the exit.

Approximations, chosen for signal over soundness:

* implicit "anything can raise" edges are added only *inside* a
  ``try`` (there is a target to flow to); explicit ``raise`` always
  routes, to the nearest handlers or the raise-exit;
* a matching ``except`` is assumed to catch (no unmatched-type edge
  past a handler list);
* ``while True`` (constant-true test) has no loop-exhausted edge —
  only ``break`` leaves it;
* comprehensions and nested ``def``/``lambda`` stay inside a single
  node: their bodies run in another scope (or atomically, for
  comprehensions) and never interleave this frame's locals.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Edge kinds.
NORMAL = "normal"
EXC = "exc"


@dataclass
class Node:
    """One CFG node: a statement, header, or synthetic point."""

    nid: int
    kind: str
    stmt: Optional[ast.AST]
    line: int
    #: The expressions this node actually evaluates (header-only for
    #: compound statements) — what the rules scan for reads/writes.
    exprs: Tuple[ast.AST, ...] = ()
    #: True when evaluating this node can suspend the coroutine
    #: (contains ``await``, or is an ``async for``/``async with`` point).
    is_await: bool = False


class CFG:
    """A built control-flow graph for one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: Dict[int, Node] = {}
        self._succ: Dict[int, List[Tuple[int, str]]] = {}
        self.entry_id = -1
        self.exit_id = -1
        self.raise_id = -1

    def add_node(self, node: Node) -> None:
        self.nodes[node.nid] = node
        self._succ.setdefault(node.nid, [])

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        edge = (dst, kind)
        if edge not in self._succ[src]:
            self._succ[src].append(edge)

    def succ(self, nid: int) -> Sequence[Tuple[int, str]]:
        """Successors of ``nid`` as ``(node_id, edge_kind)`` pairs."""
        return self._succ[nid]

    def edges(self) -> Set[Tuple[int, int, str]]:
        """Every edge as ``(src_id, dst_id, kind)``."""
        out: Set[Tuple[int, int, str]] = set()
        for src, targets in self._succ.items():
            for dst, kind in targets:
                out.add((src, dst, kind))
        return out

    def label(self, nid: int):
        """A stable test-friendly label: line number or pseudo name."""
        node = self.nodes[nid]
        if node.kind in ("entry", "exit", "raise"):
            return node.kind
        if node.kind == "loop-bind":
            return f"{node.line}:bind"
        if node.kind == "handler":
            return f"{node.line}:handler"
        if node.kind == "aexit":
            return f"{node.line}:aexit"
        return node.line

    def line_edges(self) -> Set[Tuple[object, object, str]]:
        """The edge set with node ids replaced by :meth:`label`s."""
        return {
            (self.label(src), self.label(dst), kind)
            for src, dst, kind in self.edges()
        }


class _Loop:
    """Context-stack entry for an enclosing loop."""

    def __init__(self, header_id: int) -> None:
        self.header_id = header_id
        self.breaks: List[Tuple[int, str]] = []


class _Handlers:
    """Context-stack entry: the handler entries of an enclosing try."""

    def __init__(self, entries: List[int]) -> None:
        self.entries = entries


class _Finally:
    """Context-stack entry: the finalbody of an enclosing try."""

    def __init__(self, stmts: List[ast.stmt]) -> None:
        self.stmts = stmts


#: Dangling edges waiting for their destination: ``(src_id, kind)``.
Frontier = List[Tuple[int, str]]


def _contains_await(tree: ast.AST) -> bool:
    """True when ``tree`` awaits in *this* frame (nested defs excluded)."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Await,)):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _can_raise(exprs: Iterable[ast.AST]) -> bool:
    """Heuristic: anything beyond bare literals may raise."""
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(
                node,
                (
                    ast.Call,
                    ast.Attribute,
                    ast.Subscript,
                    ast.Name,
                    ast.BinOp,
                    ast.UnaryOp,
                    ast.Compare,
                    ast.Await,
                    ast.BoolOp,
                    ast.IfExp,
                ),
            ):
                return True
    return False


def _is_constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _is_wildcard_case(case: ast.AST) -> bool:
    """``case _:`` with no guard — the match always falls into a case."""
    pattern = case.pattern
    return (
        isinstance(pattern, ast.MatchAs)
        and pattern.pattern is None
        and case.guard is None
    )


class _Builder:
    """Single-use recursive CFG builder for one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        self._next_id = 0
        self._stack: List[object] = []

    # -- node plumbing -------------------------------------------------

    def _new(
        self,
        kind: str,
        stmt: Optional[ast.AST],
        exprs: Sequence[ast.AST] = (),
        is_await: bool = False,
        line: Optional[int] = None,
    ) -> int:
        nid = self._next_id
        self._next_id += 1
        if line is None:
            line = getattr(stmt, "lineno", 0) if stmt is not None else 0
        awaited = is_await or any(_contains_await(e) for e in exprs)
        node = Node(
            nid=nid,
            kind=kind,
            stmt=stmt,
            line=line,
            exprs=tuple(exprs),
            is_await=awaited,
        )
        self.cfg.add_node(node)
        return nid

    def _connect(self, frontier: Frontier, nid: int) -> None:
        for src, kind in frontier:
            self.cfg.add_edge(src, nid, kind)

    # -- abrupt-flow routing -------------------------------------------

    def _inline_finally(
        self, item: _Finally, depth: int, frontier: Frontier
    ) -> Frontier:
        """Build a fresh copy of ``item``'s finalbody below ``depth``.

        The copy runs with the context stack *outside* its try — a
        ``return``/``break`` written in the ``finally`` overrides the
        original continuation, which falls out naturally because the
        copy's own abrupt statements route through the truncated stack.
        """
        saved = self._stack
        self._stack = saved[:depth]
        try:
            out = self._build_block(item.stmts, frontier)
        finally:
            self._stack = saved
        return out

    def _route_return(self, frontier: Frontier) -> None:
        for depth in range(len(self._stack) - 1, -1, -1):
            item = self._stack[depth]
            if isinstance(item, _Finally):
                frontier = self._inline_finally(item, depth, frontier)
                if not frontier:
                    return  # the finally itself ended abruptly
        self._connect(frontier, self.cfg.exit_id)

    def _route_break(self, frontier: Frontier) -> None:
        for depth in range(len(self._stack) - 1, -1, -1):
            item = self._stack[depth]
            if isinstance(item, _Finally):
                frontier = self._inline_finally(item, depth, frontier)
                if not frontier:
                    return
            elif isinstance(item, _Loop):
                item.breaks.extend(frontier)
                return
        # break outside a loop is a syntax error; tolerate silently.

    def _route_continue(self, frontier: Frontier) -> None:
        for depth in range(len(self._stack) - 1, -1, -1):
            item = self._stack[depth]
            if isinstance(item, _Finally):
                frontier = self._inline_finally(item, depth, frontier)
                if not frontier:
                    return
            elif isinstance(item, _Loop):
                self._connect(frontier, item.header_id)
                return

    def _route_exception(self, nid: int, explicit: bool = False) -> None:
        """Wire the "this node raised" path from ``nid`` outward."""
        if not explicit and not any(
            isinstance(item, (_Finally, _Handlers)) for item in self._stack
        ):
            return
        frontier: Frontier = [(nid, EXC)]
        for depth in range(len(self._stack) - 1, -1, -1):
            item = self._stack[depth]
            if isinstance(item, _Handlers):
                for entry in item.entries:
                    self._connect(frontier, entry)
                return  # assume one of the handlers catches
            if isinstance(item, _Finally):
                frontier = self._inline_finally(item, depth, frontier)
                if not frontier:
                    return
                frontier = [(src, EXC) for src, _ in frontier]
        self._connect(frontier, self.cfg.raise_id)

    # -- statement dispatch --------------------------------------------

    def _build_block(
        self, stmts: Sequence[ast.stmt], frontier: Frontier
    ) -> Frontier:
        for stmt in stmts:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _simple(
        self,
        stmt: ast.stmt,
        frontier: Frontier,
        exprs: Sequence[ast.AST],
        raises: bool = True,
    ) -> Frontier:
        nid = self._new("stmt", stmt, exprs)
        self._connect(frontier, nid)
        if raises and _can_raise(exprs):
            self._route_exception(nid)
        return [(nid, NORMAL)]

    def _build_stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        trystar = getattr(ast, "TryStar", None)
        if trystar is not None and isinstance(stmt, trystar):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            return self._build_match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            exprs = (stmt.value,) if stmt.value is not None else ()
            nid = self._new("stmt", stmt, exprs)
            self._connect(frontier, nid)
            if _can_raise(exprs):
                self._route_exception(nid)
            self._route_return([(nid, NORMAL)])
            return []
        if isinstance(stmt, ast.Raise):
            exprs = tuple(
                e for e in (stmt.exc, stmt.cause) if e is not None
            )
            nid = self._new("stmt", stmt, exprs)
            self._connect(frontier, nid)
            self._route_exception(nid, explicit=True)
            return []
        if isinstance(stmt, ast.Break):
            nid = self._new("stmt", stmt, ())
            self._connect(frontier, nid)
            self._route_break([(nid, NORMAL)])
            return []
        if isinstance(stmt, ast.Continue):
            nid = self._new("stmt", stmt, ())
            self._connect(frontier, nid)
            self._route_continue([(nid, NORMAL)])
            return []
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # Nested scopes are opaque single nodes.
            return self._simple(stmt, frontier, (), raises=False)
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal)):
            return self._simple(stmt, frontier, (), raises=False)
        if isinstance(stmt, ast.Expr):
            return self._simple(stmt, frontier, (stmt.value,))
        if isinstance(stmt, ast.Assign):
            return self._simple(
                stmt, frontier, tuple(stmt.targets) + (stmt.value,)
            )
        if isinstance(stmt, ast.AugAssign):
            return self._simple(stmt, frontier, (stmt.target, stmt.value))
        if isinstance(stmt, ast.AnnAssign):
            exprs: Tuple[ast.AST, ...] = (stmt.target,)
            if stmt.value is not None:
                exprs += (stmt.value,)
            return self._simple(stmt, frontier, exprs)
        if isinstance(stmt, ast.Assert):
            exprs = (stmt.test,)
            if stmt.msg is not None:
                exprs += (stmt.msg,)
            return self._simple(stmt, frontier, exprs)
        if isinstance(stmt, ast.Delete):
            return self._simple(stmt, frontier, tuple(stmt.targets))
        # Import / anything new in future grammars: plain opaque node.
        return self._simple(stmt, frontier, (), raises=False)

    def _build_if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        nid = self._new("branch", stmt, (stmt.test,))
        self._connect(frontier, nid)
        if _can_raise((stmt.test,)):
            self._route_exception(nid)
        out = self._build_block(stmt.body, [(nid, NORMAL)])
        if stmt.orelse:
            out = out + self._build_block(stmt.orelse, [(nid, NORMAL)])
        else:
            out = out + [(nid, NORMAL)]
        return out

    def _build_while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        header = self._new("branch", stmt, (stmt.test,))
        self._connect(frontier, header)
        if _can_raise((stmt.test,)):
            self._route_exception(header)
        loop = _Loop(header)
        self._stack.append(loop)
        body_out = self._build_block(stmt.body, [(header, NORMAL)])
        self._connect(body_out, header)
        self._stack.pop()
        out: Frontier = []
        if not _is_constant_true(stmt.test):
            exhausted: Frontier = [(header, NORMAL)]
            if stmt.orelse:
                exhausted = self._build_block(stmt.orelse, exhausted)
            out.extend(exhausted)
        out.extend(loop.breaks)
        return out

    def _build_for(self, stmt, frontier: Frontier) -> Frontier:
        is_async = isinstance(stmt, ast.AsyncFor)
        header = self._new(
            "branch", stmt, (stmt.iter,), is_await=is_async
        )
        self._connect(frontier, header)
        if _can_raise((stmt.iter,)):
            self._route_exception(header)
        bind = self._new(
            "loop-bind", stmt, (stmt.target,), is_await=is_async
        )
        self.cfg.add_edge(header, bind, NORMAL)
        loop = _Loop(header)
        self._stack.append(loop)
        body_out = self._build_block(stmt.body, [(bind, NORMAL)])
        self._connect(body_out, header)
        self._stack.pop()
        exhausted: Frontier = [(header, NORMAL)]
        if stmt.orelse:
            exhausted = self._build_block(stmt.orelse, exhausted)
        return exhausted + loop.breaks

    def _build_try(self, stmt, frontier: Frontier) -> Frontier:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self._stack.append(_Finally(list(stmt.finalbody)))
        handler_entries: List[int] = []
        for handler in stmt.handlers:
            exprs = (handler.type,) if handler.type is not None else ()
            handler_entries.append(
                self._new("handler", handler, exprs)
            )
        if handler_entries:
            self._stack.append(_Handlers(handler_entries))
        body_out = self._build_block(stmt.body, frontier)
        if handler_entries:
            self._stack.pop()
        if stmt.orelse:
            body_out = self._build_block(stmt.orelse, body_out)
        out: Frontier = list(body_out)
        for entry, handler in zip(handler_entries, stmt.handlers):
            out.extend(self._build_block(handler.body, [(entry, NORMAL)]))
        if has_finally:
            item = self._stack.pop()
            if out:
                out = self._inline_finally(item, len(self._stack), out)
        return out

    def _build_with(self, stmt, frontier: Frontier) -> Frontier:
        is_async = isinstance(stmt, ast.AsyncWith)
        exprs: List[ast.AST] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        header = self._new("stmt", stmt, exprs, is_await=is_async)
        self._connect(frontier, header)
        if _can_raise(exprs):
            self._route_exception(header)
        body_out = self._build_block(stmt.body, [(header, NORMAL)])
        if is_async:
            aexit = self._new("aexit", stmt, (), is_await=True)
            self._connect(body_out, aexit)
            return [(aexit, NORMAL)]
        return body_out

    def _build_match(self, stmt, frontier: Frontier) -> Frontier:
        subject = self._new("branch", stmt, (stmt.subject,))
        self._connect(frontier, subject)
        if _can_raise((stmt.subject,)):
            self._route_exception(subject)
        out: Frontier = []
        saw_wildcard = False
        for case in stmt.cases:
            out.extend(self._build_block(case.body, [(subject, NORMAL)]))
            if _is_wildcard_case(case):
                saw_wildcard = True
        if not saw_wildcard:
            out.append((subject, NORMAL))
        return out

    # -- entry point ---------------------------------------------------

    def build(self) -> CFG:
        func = self.cfg.func
        self.cfg.entry_id = self._new(
            "entry", func, (), line=func.lineno
        )
        self.cfg.exit_id = self._new("exit", None, ())
        self.cfg.raise_id = self._new("raise", None, ())
        out = self._build_block(func.body, [(self.cfg.entry_id, NORMAL)])
        self._connect(out, self.cfg.exit_id)
        return self.cfg


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph for one function definition."""
    return _Builder(func).build()


__all__ = ["CFG", "Node", "build_cfg", "NORMAL", "EXC"]
