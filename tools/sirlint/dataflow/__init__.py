"""sirlint's dataflow layer: CFG construction + fixpoint solving.

The dataflow rules (SIR009/SIR010/SIR011) are built on two pieces:

* :mod:`sirlint.dataflow.cfg` — a statement-granularity control-flow
  graph over one function's AST, with explicit exception edges,
  ``finally`` duplication per continuation kind, and await-point
  marking (where the event loop may interleave other tasks);
* :mod:`sirlint.dataflow.solver` — a generic forward worklist solver
  parameterised by a join and a transfer function; any finite lattice
  terminates.
"""

from __future__ import annotations

from sirlint.dataflow.cfg import CFG, Node, build_cfg
from sirlint.dataflow.solver import solve

__all__ = ["CFG", "Node", "build_cfg", "solve"]
