"""A generic forward worklist fixpoint solver over a :class:`CFG`.

The solver is deliberately small: rules supply an initial state for
the entry node, a ``transfer(node, state)`` function producing the
post-state, and a ``join(a, b)`` merging predecessor states.  Along
``"exc"`` edges the solver propagates ``exc_transfer(node, state)``
(default: the *pre*-state — an exception may fire before the
statement's own effects), which is what makes ``try``/``finally``
lifetime analysis honest.

Termination: states must form a finite-height lattice under ``join``
(all sirlint lattices are small powersets / flat orders), and
``transfer`` must be monotone.  The solver iterates until no node's
input state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, TypeVar

from sirlint.dataflow.cfg import CFG, EXC, Node

State = TypeVar("State")


def solve(
    cfg: CFG,
    init: State,
    transfer: Callable[[Node, State], State],
    join: Callable[[State, State], State],
    exc_transfer: Optional[Callable[[Node, State], State]] = None,
) -> Dict[int, State]:
    """Run the forward analysis to fixpoint.

    Returns the map ``node_id -> input state`` for every *reachable*
    node; unreachable nodes (dead code) are simply absent.  Rules do a
    second reporting pass over this map, re-running ``transfer`` with
    a findings sink attached.
    """
    if exc_transfer is None:
        exc_transfer = lambda node, state: state  # noqa: E731

    in_states: Dict[int, State] = {cfg.entry_id: init}
    worklist = deque([cfg.entry_id])
    queued = {cfg.entry_id}
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        node = cfg.nodes[nid]
        state = in_states[nid]
        post_normal = transfer(node, state)
        post_exc = exc_transfer(node, state)
        for dst, kind in cfg.succ(nid):
            carried = post_exc if kind == EXC else post_normal
            if dst in in_states:
                merged = join(in_states[dst], carried)
                if merged == in_states[dst]:
                    continue
                in_states[dst] = merged
            else:
                in_states[dst] = carried
            if dst not in queued:
                queued.add(dst)
                worklist.append(dst)
    return in_states


__all__ = ["solve"]
