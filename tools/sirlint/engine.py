"""The sirlint engine: collect files, parse, run rules, apply filters.

The engine is IO-light by design: :func:`analyze_source` takes source
text and a module name so the tests can exercise every rule on inline
fixtures, while :func:`run` wraps it with file collection, inline
``# sirlint: disable=SIRxxx`` suppression comments and the committed
baseline.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from sirlint.baseline import BaselineEntry, apply_baseline, parse_baseline
from sirlint.model import Finding, ModuleInfo, module_name_for, parse_module
from sirlint.rules import ALL_RULES, Rule, run_rules

#: Inline suppression comment, reason mandatory:
#: ``# sirlint: disable=SIR001,SIR004 -- vendored shim``.
SUPPRESS_RE = re.compile(
    r"#\s*sirlint:\s*disable=([A-Z0-9][A-Z0-9,\s]*?)\s*(?:--\s*(.*))?$"
)

#: Synthetic rule id for suppression-audit findings (missing reason,
#: unused or unknown suppression).  Not suppressible itself.
AUDIT_RULE_ID = "SIR000"


@dataclass
class RunResult:
    """Everything one sirlint run produced."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    checked_files: int = 0
    elapsed: float = 0.0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return (
            not self.findings
            and not self.stale_baseline
            and not self.parse_errors
        )


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand ``paths`` (files or directories) into sorted .py files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    # De-duplicate while preserving the sort.
    seen = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def load_modules(
    files: Iterable[Path],
) -> Tuple[List[ModuleInfo], List[str]]:
    """Parse every file; syntax errors are reported, not fatal."""
    modules: List[ModuleInfo] = []
    errors: List[str] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:  # unreadable file
            errors.append(f"{path}: {exc}")
            continue
        try:
            modules.append(
                parse_module(str(path), source, module_name_for(str(path)))
            )
        except SyntaxError as exc:
            errors.append(f"{path}:{exc.lineno}: {exc.msg}")
    return modules, errors


def _parse_suppression(line: str) -> Optional[Tuple[List[str], str]]:
    """``(rule_ids, reason)`` for a disable comment, else None."""
    match = SUPPRESS_RE.search(line)
    if not match:
        return None
    ids = [p.strip() for p in match.group(1).split(",") if p.strip()]
    reason = (match.group(2) or "").strip()
    return ids, reason


def _suppressed_rules(line: str) -> List[str]:
    """Rule ids disabled (with a reason) by an inline comment."""
    parsed = _parse_suppression(line)
    if parsed is None or not parsed[1]:
        return []  # reasonless suppressions are not honoured
    return parsed[0]


def apply_suppressions(
    findings: Iterable[Finding],
    modules: Iterable[ModuleInfo],
    enforce_unused: bool = True,
) -> Tuple[List[Finding], int, List[Finding]]:
    """Apply inline disables and audit them.

    Returns ``(remaining, suppressed_count, audit_findings)``.  The
    audit enforces the same discipline as the baseline: a suppression
    must carry a ``-- reason`` suffix, must name a registered rule,
    and must actually suppress something (dead suppressions rot into
    lies) — each violation is a synthetic ``SIR000`` finding.
    ``enforce_unused=False`` skips the unused check, for ``--changed``
    runs where cross-file rules see only a partial universe.
    """
    from sirlint.rules import rule_by_id

    lines_by_path = {m.path: m.source_lines for m in modules}
    audit: List[Finding] = []
    # (path, lineno, rule) -> was it used to suppress a finding?
    live: Dict[Tuple[str, int, str], bool] = {}
    for module in modules:
        for lineno, line in enumerate(module.source_lines, start=1):
            parsed = _parse_suppression(line)
            if parsed is None:
                continue
            ids, reason = parsed
            if not reason:
                audit.append(Finding(
                    rule=AUDIT_RULE_ID, path=module.path, line=lineno,
                    col=0,
                    message=(
                        "suppression needs a reason: '# sirlint: "
                        "disable=SIRxxx -- <why>'"
                    ),
                    symbol=f"suppression-reason:{lineno}",
                ))
                continue
            for rule_id in ids:
                if rule_id == AUDIT_RULE_ID or rule_by_id(rule_id) is None:
                    audit.append(Finding(
                        rule=AUDIT_RULE_ID, path=module.path, line=lineno,
                        col=0,
                        message=(
                            f"suppression names unknown rule {rule_id!r}"
                        ),
                        symbol=f"unknown-suppression:{lineno}:{rule_id}",
                    ))
                else:
                    live[(module.path, lineno, rule_id)] = False

    remaining: List[Finding] = []
    suppressed = 0
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        if finding.rule in _suppressed_rules(line):
            suppressed += 1
            live[(finding.path, finding.line, finding.rule)] = True
        else:
            remaining.append(finding)

    if enforce_unused:
        for (path, lineno, rule_id), used in sorted(live.items()):
            if not used:
                audit.append(Finding(
                    rule=AUDIT_RULE_ID, path=path, line=lineno, col=0,
                    message=(
                        f"unused suppression of {rule_id} — the finding "
                        "no longer fires; delete the comment"
                    ),
                    symbol=f"unused-suppression:{lineno}:{rule_id}",
                ))
    return remaining, suppressed, audit


def analyze_modules(
    modules: Sequence[ModuleInfo],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run rules (fresh instances by default) over parsed modules."""
    active = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
    return run_rules(active, modules)


def analyze_source(
    source: str,
    module_name: str,
    path: str = "<fixture>",
    extra_modules: Sequence[Tuple[str, str, str]] = (),
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze inline source — the test fixture entry point.

    ``extra_modules`` is a sequence of ``(source, module_name, path)``
    triples analyzed together with the primary module, for the
    cross-file rules.  Inline suppressions are honoured so the
    suppression fixtures exercise the real mechanism.
    """
    modules = [parse_module(path, source, module_name)]
    for extra_source, extra_name, extra_path in extra_modules:
        modules.append(parse_module(extra_path, extra_source, extra_name))
    findings = analyze_modules(modules, rules=rules)
    remaining, _, audit = apply_suppressions(findings, modules)
    remaining.extend(audit)
    remaining.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return remaining


def run(
    paths: Sequence[str],
    baseline_text: str = "",
    rules: Optional[Sequence[Rule]] = None,
    enforce_unused: bool = True,
) -> RunResult:
    """The full pipeline: collect, parse, check, suppress, baseline.

    ``enforce_unused=False`` relaxes the unused-suppression audit —
    the ``--changed`` fast path analyzes a partial file set, so the
    cross-file rules a suppression answers may simply not have fired.
    """
    started = time.monotonic()
    result = RunResult()

    files = collect_files(paths)
    modules, parse_errors = load_modules(files)
    result.parse_errors = parse_errors
    result.checked_files = len(modules)

    findings = analyze_modules(modules, rules=rules)
    findings, result.suppressed, audit = apply_suppressions(
        findings, modules, enforce_unused=enforce_unused
    )
    findings.extend(audit)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    entries = parse_baseline(baseline_text) if baseline_text else []
    before = len(findings)
    findings, stale = apply_baseline(findings, entries)
    result.baselined = before - len(findings)
    result.findings = findings
    result.stale_baseline = stale

    result.elapsed = time.monotonic() - started
    return result
