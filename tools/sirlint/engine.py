"""The sirlint engine: collect files, parse, run rules, apply filters.

The engine is IO-light by design: :func:`analyze_source` takes source
text and a module name so the tests can exercise every rule on inline
fixtures, while :func:`run` wraps it with file collection, inline
``# sirlint: disable=SIRxxx`` suppression comments and the committed
baseline.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from sirlint.baseline import BaselineEntry, apply_baseline, parse_baseline
from sirlint.model import Finding, ModuleInfo, module_name_for, parse_module
from sirlint.rules import ALL_RULES, Rule, run_rules

#: Inline suppression comment: ``# sirlint: disable=SIR001,SIR004``.
SUPPRESS_RE = re.compile(r"#\s*sirlint:\s*disable=([A-Z0-9,\s]+)")


@dataclass
class RunResult:
    """Everything one sirlint run produced."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    checked_files: int = 0
    elapsed: float = 0.0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run should exit 0."""
        return (
            not self.findings
            and not self.stale_baseline
            and not self.parse_errors
        )


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand ``paths`` (files or directories) into sorted .py files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    # De-duplicate while preserving the sort.
    seen = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def load_modules(
    files: Iterable[Path],
) -> Tuple[List[ModuleInfo], List[str]]:
    """Parse every file; syntax errors are reported, not fatal."""
    modules: List[ModuleInfo] = []
    errors: List[str] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:  # unreadable file
            errors.append(f"{path}: {exc}")
            continue
        try:
            modules.append(
                parse_module(str(path), source, module_name_for(str(path)))
            )
        except SyntaxError as exc:
            errors.append(f"{path}:{exc.lineno}: {exc.msg}")
    return modules, errors


def _suppressed_rules(line: str) -> List[str]:
    """Rule ids disabled by an inline comment on ``line``."""
    match = SUPPRESS_RE.search(line)
    if not match:
        return []
    return [part.strip() for part in match.group(1).split(",") if part.strip()]


def apply_suppressions(
    findings: Iterable[Finding], modules: Iterable[ModuleInfo]
) -> Tuple[List[Finding], int]:
    """Drop findings whose source line carries a matching disable comment."""
    lines_by_path = {m.path: m.source_lines for m in modules}
    remaining: List[Finding] = []
    suppressed = 0
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        if finding.rule in _suppressed_rules(line):
            suppressed += 1
        else:
            remaining.append(finding)
    return remaining, suppressed


def analyze_modules(
    modules: Sequence[ModuleInfo],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run rules (fresh instances by default) over parsed modules."""
    active = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
    return run_rules(active, modules)


def analyze_source(
    source: str,
    module_name: str,
    path: str = "<fixture>",
    extra_modules: Sequence[Tuple[str, str, str]] = (),
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze inline source — the test fixture entry point.

    ``extra_modules`` is a sequence of ``(source, module_name, path)``
    triples analyzed together with the primary module, for the
    cross-file rules.  Inline suppressions are honoured so the
    suppression fixtures exercise the real mechanism.
    """
    modules = [parse_module(path, source, module_name)]
    for extra_source, extra_name, extra_path in extra_modules:
        modules.append(parse_module(extra_path, extra_source, extra_name))
    findings = analyze_modules(modules, rules=rules)
    remaining, _ = apply_suppressions(findings, modules)
    return remaining


def run(
    paths: Sequence[str],
    baseline_text: str = "",
    rules: Optional[Sequence[Rule]] = None,
) -> RunResult:
    """The full pipeline: collect, parse, check, suppress, baseline."""
    started = time.monotonic()
    result = RunResult()

    files = collect_files(paths)
    modules, parse_errors = load_modules(files)
    result.parse_errors = parse_errors
    result.checked_files = len(modules)

    findings = analyze_modules(modules, rules=rules)
    findings, result.suppressed = apply_suppressions(findings, modules)

    entries = parse_baseline(baseline_text) if baseline_text else []
    before = len(findings)
    findings, stale = apply_baseline(findings, entries)
    result.baselined = before - len(findings)
    result.findings = findings
    result.stale_baseline = stale

    result.elapsed = time.monotonic() - started
    return result
