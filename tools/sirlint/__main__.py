"""``python -m sirlint`` / ``python tools/sirlint`` entry point."""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):
    # Directory execution: ``python tools/sirlint ...`` puts the package
    # directory itself on sys.path; add its parent so ``import sirlint``
    # resolves, then re-dispatch through the package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from sirlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
