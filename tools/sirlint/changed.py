"""``--changed`` support: resolve the files touched vs a git ref.

The fast pre-push path: instead of walking all of ``src``, ask git
which ``.py`` files differ from a ref (default ``HEAD``), plus any
untracked ones, and analyze only those that fall under the requested
paths.  Cross-file rules see a partial universe in this mode, so the
engine relaxes the unused-suppression audit; the full run in CI stays
the source of truth.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Sequence


class ChangedError(RuntimeError):
    """git could not answer (not a repo, bad ref, missing binary)."""


def _git_lines(args: Sequence[str]) -> List[str]:
    try:
        proc = subprocess.run(
            ["git", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedError(f"git {' '.join(args)}: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise ChangedError(
            f"git {' '.join(args)} failed: "
            f"{detail[0] if detail else proc.returncode}"
        )
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_files(ref: str, paths: Sequence[str]) -> List[str]:
    """Changed-or-untracked ``.py`` files under ``paths``, sorted.

    Deleted files are skipped (nothing left to lint); paths come back
    repo-root-relative, matching how git reports them, so run sirlint
    from the repo root (the committed workflows and bench already do).
    """
    candidates = set(_git_lines(["diff", "--name-only", ref]))
    candidates.update(
        _git_lines(["ls-files", "--others", "--exclude-standard"])
    )
    prefixes = [Path(p) for p in paths]
    out: List[str] = []
    for raw in sorted(candidates):
        path = Path(raw)
        if path.suffix != ".py" or not path.exists():
            continue
        for prefix in prefixes:
            if path == prefix or prefix in path.parents:
                out.append(raw)
                break
    return out


__all__ = ["ChangedError", "changed_files"]
