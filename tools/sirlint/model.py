"""Core data model shared by the engine and every rule.

A :class:`ModuleInfo` is one parsed source file plus everything a rule
might want precomputed: the dotted module name (derived from the
``src/repro`` layout), the raw source lines (for suppression-comment
scanning) and a local-name -> dotted-target import table (for the
cross-file passes).

A :class:`Finding` is one violation.  Its ``key`` — ``rule module
symbol`` — deliberately excludes the line number so committed baseline
entries survive unrelated edits to the file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stable, line-free symbol naming the violating construct
    #: (function/class/import/metric name) — the baseline match key.
    symbol: str

    @property
    def key(self) -> str:
        """The baseline/suppression fingerprint: ``rule path symbol``."""
        return f"{self.rule} {self.path} {self.symbol}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "key": self.key,
        }


@dataclass
class ModuleInfo:
    """One parsed module and its precomputed lookup tables."""

    path: str
    name: str
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)
    #: Local name -> fully dotted target ("HeaderSegment" ->
    #: "repro.viper.wire.HeaderSegment", "time" -> "time").
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level dotted modules imported ("repro.viper.wire", "time").
    imported_modules: List[str] = field(default_factory=list)

    def finding(
        self, rule: str, node: ast.AST, message: str, symbol: str
    ) -> Finding:
        """Build a :class:`Finding` for an AST node in this module."""
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


def module_name_for(path: str) -> str:
    """Dotted module name from a file path (``src/repro`` layout aware)."""
    normalized = path.replace("\\", "/")
    parts = [p for p in normalized.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "sirlint"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<unknown>"


def build_import_table(tree: ast.Module) -> Dict[str, str]:
    """Map every locally bound import name to its dotted target."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this repo
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def imported_modules(tree: ast.Module) -> List[str]:
    """Dotted modules named by import statements, in order."""
    out: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and not node.level:
                out.append(node.module)
    return out


def parse_module(path: str, source: str, name: Optional[str] = None) -> ModuleInfo:
    """Parse ``source`` into a fully populated :class:`ModuleInfo`."""
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=path,
        name=name if name is not None else module_name_for(path),
        tree=tree,
        source_lines=source.splitlines(),
        imports=build_import_table(tree),
        imported_modules=imported_modules(tree),
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_int(node: ast.AST) -> Optional[int]:
    """Evaluate an int-valued constant expression (folds | << + - * ~)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        # bool is an int subclass but never a wire constant.
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.Invert, ast.USub)):
        inner = literal_int(node.operand)
        if inner is None:
            return None
        return ~inner if isinstance(node.op, ast.Invert) else -inner
    if isinstance(node, ast.BinOp):
        left = literal_int(node.left)
        right = literal_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.BitOr):
            return left | right
        if isinstance(node.op, ast.BitAnd):
            return left & right
        if isinstance(node.op, ast.LShift):
            return left << right
        if isinstance(node.op, ast.RShift):
            return left >> right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
    return None


def name_template(node: ast.AST) -> Optional[str]:
    """A metric-name template with interpolations collapsed to ``{}``.

    ``"forwarded"`` -> ``forwarded``; ``f"{name}.sent"`` -> ``{}.sent``;
    anything non-literal -> None (not statically checkable).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    return None
