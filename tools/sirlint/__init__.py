"""sirlint — the Sirpent repo's domain static-analysis pass.

Eleven rules encode the architectural invariants the papers and the
earlier PRs rely on.  SIR001–SIR008 are syntactic/structural: sans-IO
purity of the dataplane, no module-global mutable state, async hygiene
in the live overlay, metric naming discipline, wire-layout consistency,
the single-applicator drop discipline, recorder event hygiene, and
fastpath copy discipline.  SIR009–SIR011 are *dataflow* rules built on
the statement-level CFG + worklist solver in :mod:`sirlint.dataflow`:
ring-slot lifetime (acquire/release balance, use-after-release, view
escape), await-interleaving races (check-then-act on shared attributes
across a suspension point), and exception-safe effects (every failure
path records its fate).  See ``docs/ARCHITECTURE.md`` §10 for the
invariant table and §15 for the dataflow engine design.
"""

from __future__ import annotations

__version__ = "0.2.0"

__all__ = ["__version__"]
