"""sirlint — the Sirpent repo's domain static-analysis pass.

Six rules (SIR001–SIR006) encode the architectural invariants the
papers and the earlier PRs rely on: sans-IO purity of the dataplane,
no module-global mutable state, async hygiene in the live overlay,
metric naming discipline, wire-layout consistency, and the
single-applicator drop discipline.  See ``docs/ARCHITECTURE.md`` §10
for the invariant table and provenance.
"""

from __future__ import annotations

__version__ = "0.1.0"

__all__ = ["__version__"]
