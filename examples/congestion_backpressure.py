#!/usr/bin/env python3
"""Rate-based congestion control in action (§2.2).

Three senders behind access routers overload a shared bottleneck at
1.6x its capacity.  Watch the congested queue, the backpressure signals
flowing upstream, and the soft flow state that forms — then evaporates
when the load stops.

Run:  python examples/congestion_backpressure.py
"""

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_dumbbell
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import PoissonArrivals

N_PAIRS = 3
PACKET = 1000
OVERLOAD = 1.6
LOAD_SECONDS = 1.0


def main() -> None:
    scenario = build_sirpent_dumbbell(
        n_pairs=N_PAIRS, router_config=RouterConfig(congestion_enabled=True),
        access_routers=True,
    )
    sim = scenario.sim
    rngs = RngStreams(99)
    per_sender_pps = OVERLOAD * 10e6 / (PACKET * 8 * N_PAIRS)
    print(f"offering {OVERLOAD:.1f}x the bottleneck capacity "
          f"({per_sender_pps:.0f} pkt/s per sender) for {LOAD_SECONDS:.0f}s\n")
    for index in range(N_PAIRS):
        sender = scenario.hosts[f"sender{index + 1}"]
        route = scenario.routes(f"sender{index + 1}", f"receiver{index + 1}")[0]
        PoissonArrivals(
            sim, per_sender_pps,
            emit=lambda size, s=sender, r=route: s.send(r, b"x", size - 50),
            rng=rngs.stream(f"s{index}"),
            fixed_size=PACKET, stop_at=LOAD_SECONDS,
        )

    left = scenario.routers["rL"]
    bottleneck_port = next(
        pid for pid, att in left.ports.items()
        if att.peer_name_for(None) == "rR"
    )
    outport = left.output_ports[bottleneck_port]

    def report() -> None:
        held = sum(
            scenario.routers[f"a{i + 1}"].congestion.total_held()
            for i in range(N_PAIRS)
        )
        limits = sum(
            len(scenario.routers[f"a{i + 1}"].congestion.limits)
            for i in range(N_PAIRS)
        )
        print(f"t={sim.now:5.2f}s  bottleneck queue={outport.queue_depth:3d} "
              f"drops={outport.drops.count:3d}  "
              f"signals sent={left.congestion.signals_sent.count:4d}  "
              f"upstream held={held:3d}  soft flow-states={limits}")

    for tick in range(1, 15):
        sim.at(tick * 0.2, report)
    sim.run(until=3.0)

    delivered = sum(
        scenario.hosts[f"receiver{i + 1}"].received.count
        for i in range(N_PAIRS)
    )
    utilization = scenario.topology.links["bottleneck"].a_to_b \
        .utilization.utilization(sim.now)
    print(f"\ndelivered {delivered} packets; bottleneck utilization "
          f"{utilization:.0%} during the run; queue never grew past "
          f"{outport.queue_length.maximum:.0f} packets and only "
          f"{outport.drops.count} drops occurred —\nthe backlog lived as "
          "*soft state* at the access routers and evaporated when the "
          "load stopped (all flow-states now 0).")


if __name__ == "__main__":
    main()
