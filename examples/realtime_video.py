#!/usr/bin/env python3
"""Real-time video over Sirpent: preemptive priority + timestamp playout.

Combines §2.1's type-of-service machinery with the paper's §8 future-
work idea: a CBR stream crosses a trunk congested by bulk transfer; at
priority 7 it preempts its way through, and the receiver uses the VMTP
creation timestamps to recreate the original frame spacing exactly.

Run:  python examples/realtime_video.py
"""

from repro.core.router import RouterConfig
from repro.scenarios import build_sirpent_line
from repro.transport import RouteManager
from repro.transport.playout import PlayoutBuffer
from repro.transport.timestamps import HostClock, encode_timestamp_ms
from repro.viper.flags import PRIORITY_PREEMPT_HIGH
from repro.workloads.apps import FileTransferApp, JitterMeter

FRAME_INTERVAL = 2e-3
FRAME_BYTES = 800
DURATION = 0.5


def run(priority: int, label: str) -> None:
    scenario = build_sirpent_line(
        n_routers=2, extra_host_pairs=1,
        router_config=RouterConfig(congestion_enabled=False),
    )
    sim = scenario.sim
    clock = HostClock(sim)
    route = scenario.routes("src", "dst", dest_socket=0)[0]

    network = JitterMeter(expected_interval=FRAME_INTERVAL)
    playout = PlayoutBuffer(sim, lambda item: None, playout_delay=6e-3,
                            drop_late=True)

    def on_frame(delivered) -> None:
        network.on_delivery(delivered)
        _tag, stamp = delivered.payload
        playout.submit(delivered, stamp)

    scenario.hosts["dst"].bind(0, on_frame)

    def send_frame() -> None:
        if sim.now >= DURATION:
            return
        payload = ("frame", encode_timestamp_ms(clock.now_ms()))
        scenario.hosts["src"].send(route, payload, FRAME_BYTES,
                                   priority=priority)
        sim.after(FRAME_INTERVAL, send_frame)

    sim.after(0.0, send_frame)

    # Saturating bulk competition on the shared trunk.
    bulk_client = scenario.transport("src2")
    bulk_server = scenario.transport("dst2")
    entity = bulk_server.create_entity(lambda m: (b"", 1), hint="sink")
    manager = RouteManager(sim, scenario.vmtp_routes("src2", "dst2"))
    bulk = FileTransferApp(sim, bulk_client, manager, entity,
                           total_bytes=1_500_000, priority=0)
    sim.run(until=DURATION + 0.3)

    preemptions = sum(
        p.preemptions.count
        for r in scenario.routers.values()
        for p in r.output_ports.values()
    )
    print(f"{label}:")
    print(f"  network jitter p95 {network.jitter.quantile(0.95) * 1e3:6.3f} ms"
          f"   (preemptions: {preemptions})")
    print(f"  after playout      "
          f"{playout.stats.residual_jitter.quantile(0.95) * 1e3:6.3f} ms"
          f"   late-dropped: {playout.stats.dropped_late.count}"
          f"   mean buffering: {playout.stats.buffering_delay.mean * 1e3:.2f} ms")
    print(f"  bulk still moved {bulk.throughput_bps() / 1e6:.1f} Mb/s\n")


def main() -> None:
    print(f"CBR stream ({FRAME_BYTES}B every {FRAME_INTERVAL * 1e3:.0f} ms) "
          "vs saturating bulk on a shared trunk\n")
    run(0, "normal priority (queues behind bulk)")
    run(PRIORITY_PREEMPT_HIGH, "preemptive priority 7 (paper §2.1/§5)")
    print("Either way, the §8 playout buffer reconstructs the original\n"
          "frame spacing from the VMTP creation timestamps — priority\n"
          "decides how much budget (and loss) that costs.")


if __name__ == "__main__":
    main()
