#!/usr/bin/env python3
"""Client-side route rebinding under failure (§6.3).

A client holds two routes from the directory.  Mid-conversation the
primary path dies; the client's retransmission timer fires, the route
manager switches to the cached alternate, and the conversation
continues — faster than any distributed routing protocol could even
*detect* the failure, which is the paper's §6.3 argument.

Run:  python examples/failure_rebinding.py
"""

from repro.scenarios import build_sirpent_parallel
from repro.transport import RouteManager, TransportConfig


def main() -> None:
    scenario = build_sirpent_parallel(n_paths=2, path_delay_step=100e-6)
    sim = scenario.sim
    client = scenario.transport(
        "src", config=TransportConfig(base_timeout=5e-3, retries_per_route=1),
    )
    server = scenario.transport("dst")
    entity = server.create_entity(lambda m: (b"pong", 128), hint="server")

    routes = scenario.vmtp_routes("src", "dst", k=2)
    print("directory returned "
          f"{len(routes)} routes: "
          + ", ".join(
              f"[{r.hop_count} hops, {r.propagation_delay * 1e6:.0f}us prop]"
              for r in routes
          ))
    manager = RouteManager(sim, routes)

    log = []

    def transact(tag: str) -> None:
        def done(result) -> None:
            log.append((tag, result))
            print(f"  {tag}: ok={result.ok} rtt={result.rtt * 1e3:.2f}ms "
                  f"retries={result.retries} "
                  f"route_switches={result.route_switches}")

        client.transact(manager, entity, tag.encode(), 256, done)

    print("\nwarm-up on the primary path:")
    transact("before-failure")
    sim.run(until=0.2)

    print("\nfailing the primary path (rA--p1) ...")
    scenario.topology.fail_link("rA--p1")
    fail_time = sim.now
    transact("during-failure")
    sim.run(until=fail_time + 1.0)
    recovery = manager.last_switch_at - fail_time
    print(f"  -> client detected the loss and rebound in "
          f"{recovery * 1e3:.1f} ms (its own timer, no routing protocol)")

    print("\nconversation continues on the alternate:")
    transact("after-rebind")
    sim.run(until=sim.now + 0.5)
    assert all(result.ok for _tag, result in log)
    print(f"\nall {len(log)} transactions completed; "
          f"route switches: {manager.switches.count}")


if __name__ == "__main__":
    main()
