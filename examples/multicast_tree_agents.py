#!/usr/bin/env python3
"""Combined multicast: tree segments + multicast agents (§2).

The paper: "A combination of these approaches can be used.  For
example, the tree approach might be used for a source to route a packet
to several wide-area broadcast networks which then deliver the packet
simultaneously to a number of multicast agents, which in turn then
handle local delivery."

Topology: one source, a WAN hub, two regional routers.  A single
tree-structured packet forks at the hub toward both regions; each
region hosts a multicast agent that explodes the payload to its three
local subscribers.  One packet leaves the source; six subscribers
receive it.

Run:  python examples/multicast_tree_agents.py
"""

from repro.core.host import SirpentHost
from repro.core.multicast import (
    MulticastAgent,
    TREE_PORT,
    TreeBranch,
    encode_tree_info,
)
from repro.core.router import SirpentRouter
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.viper.wire import HeaderSegment


class Route:
    def __init__(self, segments, first_hop_port, first_hop_mac=None):
        self.segments = segments
        self.first_hop_port = first_hop_port
        self.first_hop_mac = first_hop_mac


def build_region(sim, topo, hub, region):
    """A regional router, its agent host, and three subscribers."""
    router = topo.add_node(SirpentRouter(sim, f"{region}-router"))
    _, hub_port, _ = topo.connect(hub, router)
    agent_host = topo.add_node(SirpentHost(sim, f"{region}-agent"))
    _, agent_hub_port, agent_host_port = topo.connect(router, agent_host)
    subscribers = []
    for index in range(3):
        subscriber = topo.add_node(SirpentHost(sim, f"{region}-sub{index}"))
        _, router_port, _ = topo.connect(router, subscriber)
        inbox = []
        subscriber.bind(0, inbox.append)
        subscribers.append((subscriber, router_port, inbox))

    agent = MulticastAgent(
        lambda route, payload, size: agent_host.send(route, payload, size),
        name=f"{region}-exploder",
    )
    for _sub, router_port, _inbox in subscribers:
        agent.add_member(Route(
            [HeaderSegment(port=router_port), HeaderSegment(port=0)],
            agent_host_port,
        ))
    AGENT_SOCKET = 9
    agent_host.bind(
        AGENT_SOCKET,
        lambda d: agent.on_payload(d.payload, d.payload_size),
    )
    # The branch segments: hub -> regional router -> agent host socket.
    branch = TreeBranch([
        HeaderSegment(port=hub_port),
        HeaderSegment(port=agent_hub_port),
        HeaderSegment(port=AGENT_SOCKET),
    ])
    return branch, agent, subscribers


def main() -> None:
    sim = Simulator()
    topo = Topology(sim)
    hub = topo.add_node(SirpentRouter(sim, "wan-hub"))
    source = topo.add_node(SirpentHost(sim, "source"))
    _, src_port, _ = topo.connect(source, hub)

    regions = {}
    branches = []
    for region in ("west", "east"):
        branch, agent, subscribers = build_region(sim, topo, hub, region)
        branches.append(branch)
        regions[region] = (agent, subscribers)

    tree_route = Route(
        [HeaderSegment(port=TREE_PORT,
                       portinfo=encode_tree_info(branches))],
        src_port,
    )
    print("sending ONE 700-byte packet with a 2-branch tree header "
          f"({tree_route.segments[0].wire_size()}B of routing)...\n")
    source.send(tree_route, b"market data tick", 700)
    sim.run(until=1.0)

    total = 0
    for region, (agent, subscribers) in regions.items():
        delivered = sum(len(inbox) for _s, _p, inbox in subscribers)
        total += delivered
        arrival = [inbox[0].arrived_at for _s, _p, inbox in subscribers
                   if inbox]
        print(f"{region}: agent exploded x{agent.exploded}, "
              f"{delivered}/3 subscribers, "
              f"arrivals {min(arrival) * 1e3:.2f}–{max(arrival) * 1e3:.2f} ms")
    copies = hub.stats.multicast_copies.count
    print(f"\nhub made {copies} tree copies; total deliveries: {total}/6")
    print("one source transmission -> wide-area fork at the tree point ->")
    print("local explosion at each region's agent, exactly §2's combined "
          "scheme.")


if __name__ == "__main__":
    main()
