#!/usr/bin/env python3
"""Policy-based routing, tokens and accounting (§2.2, §3).

A small internetwork with three qualitatively different paths between
two hosts:

* a fast path through a commercial carrier (cheap on delay, expensive
  and insecure),
* a government-approved secure path (slower, secure links only),
* a budget path (cheap, slow).

The client asks the directory for routes under different objectives,
obtains port tokens that authorize exactly the granted path, and the
carriers' ledgers show who got billed.  A forged token goes nowhere.

Run:  python examples/policy_routing.py
"""

from repro.core.host import SirpentHost
from repro.core.router import RouterConfig, SirpentRouter
from repro.core.congestion import ControlPlane
from repro.directory import DirectoryService, RegionServer, RouteQuery
from repro.directory.pathfind import PathObjective
from repro.net.topology import Topology
from repro.sim.engine import Simulator


def build() -> tuple:
    sim = Simulator()
    topo = Topology(sim)
    plane = ControlPlane(sim, topo)
    config = RouterConfig(require_tokens=True)

    client = topo.add_node(SirpentHost(sim, "client", control_plane=plane))
    server = topo.add_node(SirpentHost(sim, "server", control_plane=plane))
    carriers = {}
    for name in ("commercial", "gov-secure", "budget"):
        carriers[name] = topo.add_node(
            SirpentRouter(sim, name, config=config, control_plane=plane)
        )
    # Commercial: fast but insecure and pricey.
    topo.connect(client, carriers["commercial"], propagation_delay=0.5e-3,
                 cost=10.0, secure=False)
    topo.connect(carriers["commercial"], server, propagation_delay=0.5e-3,
                 cost=10.0, secure=False)
    # Government: secure, moderate delay.
    topo.connect(client, carriers["gov-secure"], propagation_delay=2e-3,
                 cost=5.0, secure=True)
    topo.connect(carriers["gov-secure"], server, propagation_delay=2e-3,
                 cost=5.0, secure=True)
    # Budget: slow and cheap.
    topo.connect(client, carriers["budget"], propagation_delay=8e-3,
                 cost=1.0, secure=True)
    topo.connect(carriers["budget"], server, propagation_delay=8e-3,
                 cost=1.0, secure=True)

    directory = DirectoryService(sim, topo, root_server=RegionServer(sim))
    directory.register_host("client", "client.corp.example")
    directory.register_host("server", "server.corp.example")
    return sim, topo, directory, client, server, carriers


def main() -> None:
    sim, topo, directory, client, server, carriers = build()
    received = []
    server.bind(0, received.append)

    objectives = {
        "low delay": PathObjective.LOW_DELAY,
        "secure": PathObjective.SECURE,
        "low cost": PathObjective.LOW_COST,
    }
    accounts = {"low delay": 100, "secure": 200, "low cost": 300}

    for label, objective in objectives.items():
        routes = directory.query("client", RouteQuery(
            "server.corp.example", objective=objective,
            with_tokens=True, account=accounts[label],
        ))
        route = routes[0]
        carrier = [n for n in ("commercial", "gov-secure", "budget")
                   if any(n in str(e) for e in [route])] or ["?"]
        print(f"{label:9s} -> via propagation {route.propagation_delay * 1e3:4.1f} ms, "
              f"cost {route.cost:4.1f}, secure={route.secure}")
        client.send(route, f"{label} packet".encode(), 400)
    sim.run(until=0.5)
    print(f"\nserver received {len(received)} packets:")
    for delivered in received:
        print(f"  {delivered.payload!r:24} via {delivered.packet.hop_log} "
              f"after {delivered.one_way_delay * 1e3:.2f} ms")

    print("\ncarrier ledgers (who billed which account):")
    for name, router in carriers.items():
        ledger = router.token_cache.ledger
        entries = {acct: ledger.usage(acct).bytes for acct in ledger.accounts()}
        print(f"  {name:11s}: {entries or 'no traffic'}")

    # A forged token: flip one byte of a real one and try the fast path.
    routes = directory.query("client", RouteQuery(
        "server.corp.example", with_tokens=True, account=666,
    ))
    segments = [
        s.copy(token=(bytes([s.token[0] ^ 0xFF]) + s.token[1:]) if s.token else b"")
        for s in routes[0].segments
    ]

    class Forged:
        pass

    Forged.segments = segments
    Forged.first_hop_port = routes[0].first_hop_port
    Forged.first_hop_mac = routes[0].first_hop_mac
    before = len(received)
    client.send(Forged, b"forged!", 400)
    client.send(Forged, b"forged again!", 400)  # past the optimistic window
    sim.run(until=1.0)
    rejected = sum(r.stats.dropped_token.count for r in carriers.values())
    print(f"\nforged tokens: {len(received) - before} delivered past the "
          f"optimistic window, {rejected} rejected at carriers")


if __name__ == "__main__":
    main()
