#!/usr/bin/env python3
"""Quickstart: a Sirpent internetwork in ~40 lines.

Builds the paper's running example — two Ethernets joined by a WAN link
— asks the routing directory for a source route, sends a VIPER packet,
and answers along the *reversed trailer route* with no routing lookup at
the server.

Run:  python examples/quickstart.py
"""

from repro.scenarios import build_sirpent_campus


def main() -> None:
    scenario = build_sirpent_campus()
    sim = scenario.sim

    # 1. Ask the directory for a route by character-string name (§3).
    from repro.directory import RouteQuery

    routes = scenario.directory.query(
        "venus", RouteQuery("milo.lcs.mit.edu")
    )
    route = routes[0]
    print(f"route to milo: {route.hop_count} hops, "
          f"MTU {route.mtu}B, bottleneck {route.bottleneck_bps / 1e6:.0f} Mb/s, "
          f"propagation {route.propagation_delay * 1e3:.1f} ms")
    print(f"predicted one-way delay for 1 KB: "
          f"{route.expected_one_way(1024) * 1e3:.2f} ms  "
          "(the client knows this before sending — §3)")

    # 2. Receive at milo and reply along the trailer.
    venus, milo = scenario.hosts["venus"], scenario.hosts["milo"]
    replies = []

    def on_request(delivered) -> None:
        print(f"milo got {delivered.payload!r} after "
              f"{delivered.one_way_delay * 1e3:.2f} ms via "
              f"{delivered.packet.hop_log}")
        # The return route came for free in the packet trailer (§2).
        milo.send_return(delivered, b"hello stanford", 256)

    milo.bind(0, on_request)
    venus.bind(0, replies.append)

    # 3. Send.
    venus.send(route, b"hello mit", 512)
    sim.run(until=1.0)

    reply = replies[0]
    print(f"venus got {reply.payload!r} after "
          f"{reply.one_way_delay * 1e3:.2f} ms — no directory query, "
          "no addresses, just the reversed source route")


if __name__ == "__main__":
    main()
